"""Table 2: benchmark characteristics (instruction counts, branch and return prediction rates) on the base machine.

Regenerates the rows of the paper's Table 2; the timed kernel is a short
simulation in this experiment's headline configuration.
"""

from repro.experiments import table2
from repro.experiments.configs import (  # noqa: F401
    BASE,
    IR_EARLY,
    IR_LATE,
    vp_lvp,
    vp_magic,
)


def test_table2_benchmarks(benchmark, runner, emit, sim_kernel):
    report = table2.run(runner)
    emit(report, "table2_benchmarks")
    benchmark.pedantic(
        lambda: sim_kernel("go", BASE),
        rounds=2, iterations=1)
