"""Figure 10: fraction of program redundancy capturable by operand-based reuse.

Regenerates the rows of the paper's Figure 10; the timed kernel is the
functional-simulation limit study over one workload window.
"""

from repro.experiments import figure10


def test_figure10_reusable(benchmark, runner, emit):
    report = figure10.run(runner)
    emit(report, "figure10_reusable")
    benchmark.pedantic(
        lambda: runner.run_redundancy("m88ksim", warmup=2_000, window=5_000),
        rounds=2, iterations=1)
