"""Core-throughput micro-benchmark and perf regression gate.

Measures simulated-instructions-per-wallclock-second for the timing core
over a fixed kernel (the same warm-skip + budget recipe the golden
corpus uses) and records the result to ``BENCH_core.json`` at the repo
root.  The committed file carries two numbers:

* ``seed_ips`` — throughput of the original scan-driven core, measured
  once on the machine that produced the file (the pre-optimisation
  baseline the acceptance criterion is judged against);
* ``current_ips`` — throughput of the core as of the last benchmark run.

Every measurement takes ≥3 timed repetitions: the **median** is what
gets recorded (a robust central value for the committed file and the
history trend), while the **best-of-N** is what the gate compares —
wallclock noise only ever slows a run down, so the fastest repetition
is the closest estimate of the true cost, and a best-of-N still >5%
below the committed median means the hot path genuinely slowed down.
The file lives in ``benchmarks/`` (outside the tier-1 ``testpaths``)
and runs as its own CI job, so a perf regression fails the
*performance* leg without ever masking a correctness failure.
Intentional slowdowns are accepted by committing the rewritten
``BENCH_core.json`` together with the change.

When the mypyc-built kernel extension is present the compiled leg runs
too, recording ``current_ips_compiled`` (plus its own history) under
``REPRO_BACKEND=compiled`` with the same median/best-of-N discipline,
warning below the 3x-vs-interpreted target and hard-failing on a >5%
regression against its own committed number.  Without the extension
the leg skips — the interpreted gate is unaffected.
"""

import json
import statistics
import tempfile
import time
import warnings
from pathlib import Path

import pytest

from repro.backend import available_backends, use
from repro.experiments.runner import ExperimentRunner
from repro.metrics.bench_report import (
    bounded_history,
    normalize_core_history,
)
from repro.uarch.config import (
    PredictorKind,
    base_config,
    hybrid_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore
from repro.workloads import get_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILE = REPO_ROOT / "BENCH_core.json"


def zoo_select_config():
    """The predictor-zoo hybrid selector (stride/LVP/FCM arbitration):
    the most state-heavy realistic predictor, so its wallclock cost is
    the one worth tracking."""
    return vp_config(PredictorKind.HYBRID_SELECT)


# The timed kernel: enough work that interpreter warm-up is amortised,
# small enough that the whole gate stays in seconds.
KERNEL = [
    ("compress", base_config, 20_000),
    ("go", base_config, 20_000),
    ("compress", hybrid_config, 10_000),
    ("compress", zoo_select_config, 10_000),
]
REGRESSION_TOLERANCE = 0.05  # FAIL when >5% below the committed number
# History length is bounded by the shared helper in
# repro.metrics.bench_report (HISTORY_LIMIT), the same bound
# BENCH_sweep.json uses — repro-bench-report renders both.


#: Telemetry-on runs must stay within this factor of telemetry-off
#: wallclock (the observability promise in docs/telemetry.md).  The
#: span/progress tracing layer shares the budget.
TELEMETRY_OVERHEAD_LIMIT = 1.5


def _run_kernel(telemetry: bool = False):
    """Simulate the kernel; returns (instructions, seconds)."""
    total_instructions = 0
    total_seconds = 0.0
    for workload, factory, budget in KERNEL:
        spec = get_workload(workload)
        core = OutOfOrderCore(factory(), spec.program("ref"))
        if telemetry:
            core.enable_telemetry(interval=500, events=True)
        core.skip(spec.skip_instructions)
        start = time.perf_counter()
        stats = core.run(max_cycles=2_000_000, max_instructions=budget)
        total_seconds += time.perf_counter() - start
        total_instructions += stats.committed
    return total_instructions, total_seconds


#: Target multiple of the committed interpreted throughput for the
#: compiled (mypyc) kernel leg; a miss warns, a regression against the
#: leg's own committed number fails.
COMPILED_TARGET = 3.0


def measure_ips(repeats: int = 3):
    """(median, best) simulated instructions/second over ≥3 repetitions.

    The median is the recorded value (robust against one noisy rep);
    the best is what the regression gate compares, since contention
    only ever makes a repetition slower.
    """
    samples = []
    for _ in range(max(repeats, 3)):
        instructions, seconds = _run_kernel()
        samples.append(instructions / seconds)
    return statistics.median(samples), max(samples)


def test_core_throughput_gate():
    ips, best = measure_ips()
    committed = {}
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    seed = committed.get("seed_ips", ips)

    # Each run *appends* to ``history`` (bounded) rather than
    # overwriting, so regressions show up as a trend across runs.
    # Every entry carries the same keys as the committed top level.
    entry = {
        "current_ips": round(ips, 1),
        "speedup_vs_seed": round(ips / seed, 2),
    }
    history = bounded_history(committed.get("history"), entry)
    record = {
        "kernel": [[w, f.__name__, n] for w, f, n in KERNEL],
        "seed_ips": seed,
        "current_ips": round(ips, 1),
        "speedup_vs_seed": round(ips / seed, 2),
        "history": history,
    }
    # Keys owned by the other benchmark legs ride along unchanged.
    for key in ("telemetry_overhead", "tracing_overhead",
                "current_ips_compiled", "compiled_speedup",
                "history_compiled"):
        if key in committed:
            record[key] = committed[key]
    # One schema for every history entry: older entries carried only
    # current_ips; speedup_vs_seed is backfilled from the (fixed)
    # seed_ips denominator.
    record = normalize_core_history(record)
    BENCH_FILE.write_text(json.dumps(record, indent=1) + "\n")

    # Hard gate: best-of-N against the committed number absorbs normal
    # scheduler jitter, so a >5% drop means the hot path really slowed
    # down.  To accept an intentional slowdown, commit the regenerated
    # BENCH_core.json (this test just rewrote it) alongside the change.
    reference = committed.get("current_ips")
    if reference:
        floor = reference * (1 - REGRESSION_TOLERANCE)
        assert best >= floor, (
            f"core throughput regressed: best {best:.0f} inst/s vs "
            f"committed {reference:.0f} inst/s "
            f"({100 * (1 - best / reference):.0f}% drop, limit "
            f"{100 * REGRESSION_TOLERANCE:.0f}%); if intentional, commit "
            f"the rewritten BENCH_core.json")
    assert ips > 0


def test_core_throughput_gate_compiled():
    """The compiled-kernel leg: only runs where the extension is built.

    Records ``current_ips_compiled`` (median) and its own history into
    ``BENCH_core.json``; warns when the speedup over the committed
    interpreted ``current_ips`` misses the ``COMPILED_TARGET``; fails
    on a >5% best-of-N regression against the leg's committed number.
    """
    if "compiled" not in available_backends():
        pytest.skip("compiled kernel extension not built "
                    "(REPRO_BUILD_COMPILED=1 pip install -e .[compiled])")
    with use("compiled"):
        ips, best = measure_ips()

    committed = {}
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    interpreted = committed.get("current_ips", 0.0)
    reference = committed.get("current_ips_compiled")
    speedup = round(ips / interpreted, 2) if interpreted else None
    entry = {"current_ips_compiled": round(ips, 1),
             "compiled_speedup": speedup}
    committed["current_ips_compiled"] = round(ips, 1)
    committed["compiled_speedup"] = speedup
    committed["history_compiled"] = bounded_history(
        committed.get("history_compiled"), entry)
    BENCH_FILE.write_text(json.dumps(committed, indent=1) + "\n")

    if interpreted and ips < COMPILED_TARGET * interpreted:
        warnings.warn(
            f"compiled kernel at {ips / interpreted:.2f}x the committed "
            f"interpreted throughput, below the {COMPILED_TARGET}x "
            f"target", stacklevel=1)
    if reference:
        floor = reference * (1 - REGRESSION_TOLERANCE)
        assert best >= floor, (
            f"compiled throughput regressed: best {best:.0f} inst/s vs "
            f"committed {reference:.0f} inst/s; if intentional, commit "
            f"the rewritten BENCH_core.json")
    assert ips > 0


def test_telemetry_overhead_gate():
    """A fully-instrumented run (interval sampling + event ring buffer)
    must cost at most ``TELEMETRY_OVERHEAD_LIMIT``x plain wallclock.

    Warns rather than fails — like the throughput gate, wallclock noise
    on shared CI machines must not break the build — and records the
    measured ratio into ``BENCH_core.json`` so the trend is visible.
    """
    best_ratio = float("inf")
    for _ in range(3):
        _, plain = _run_kernel(telemetry=False)
        _, traced = _run_kernel(telemetry=True)
        best_ratio = min(best_ratio, traced / plain)

    committed = {}
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    committed["telemetry_overhead"] = round(best_ratio, 3)
    BENCH_FILE.write_text(json.dumps(committed, indent=1) + "\n")

    if best_ratio > TELEMETRY_OVERHEAD_LIMIT:
        warnings.warn(
            f"telemetry overhead {best_ratio:.2f}x exceeds the "
            f"{TELEMETRY_OVERHEAD_LIMIT}x budget",
            stacklevel=1)
    assert best_ratio > 0


#: The sweep slice timed by the tracing-overhead gate: a cold jobs=1
#: fan-out, plain vs fully observed (--telemetry-dir semantics:
#: interval series + span tracing + live progress).
TRACING_PAIRS = [("compress", base_config), ("compress", hybrid_config),
                 ("ijpeg", base_config), ("ijpeg", hybrid_config)]
TRACING_INSTRUCTIONS = 4_000
TRACING_MAX_CYCLES = 200_000


def _run_sweep(tmp: Path, traced: bool) -> float:
    """One cold sweep over TRACING_PAIRS; returns wallclock seconds."""
    settings = {
        "max_instructions": TRACING_INSTRUCTIONS,
        "max_cycles": TRACING_MAX_CYCLES,
        "cache_dir": tmp / "results",
        "quiet": True,
        "jobs": 1,
        "manifests": False,
    }
    if traced:
        settings["telemetry_dir"] = tmp / "results" / "telemetry"
    runner = ExperimentRunner(**settings)
    pairs = [(workload, factory())
             for workload, factory in TRACING_PAIRS]
    start = time.perf_counter()
    runner.run_many(pairs)
    return time.perf_counter() - start


def test_tracing_overhead_gate():
    """A fully observed sweep (interval series + spans + progress) must
    stay within the same ``TELEMETRY_OVERHEAD_LIMIT`` budget as the
    per-run telemetry gate.  Records ``tracing_overhead`` into
    ``BENCH_core.json``; warns (never fails) on a budget miss, exactly
    like the other wallclock legs."""
    best_ratio = float("inf")
    for _ in range(3):
        with tempfile.TemporaryDirectory() as plain_tmp:
            plain = _run_sweep(Path(plain_tmp), traced=False)
        with tempfile.TemporaryDirectory() as traced_tmp:
            traced = _run_sweep(Path(traced_tmp), traced=True)
        best_ratio = min(best_ratio, traced / plain)

    committed = {}
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    committed["tracing_overhead"] = round(best_ratio, 3)
    BENCH_FILE.write_text(json.dumps(committed, indent=1) + "\n")

    if best_ratio > TELEMETRY_OVERHEAD_LIMIT:
        warnings.warn(
            f"sweep tracing overhead {best_ratio:.2f}x exceeds the "
            f"{TELEMETRY_OVERHEAD_LIMIT}x budget",
            stacklevel=1)
    assert best_ratio > 0


if __name__ == "__main__":
    instructions, seconds = _run_kernel()
    print(f"{instructions} instructions in {seconds:.2f}s "
          f"= {instructions / seconds:.0f} inst/s")
