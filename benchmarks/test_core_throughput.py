"""Core-throughput micro-benchmark and perf regression gate.

Measures simulated-instructions-per-wallclock-second for the timing core
over a fixed kernel (the same warm-skip + budget recipe the golden
corpus uses) and records the result to ``BENCH_core.json`` at the repo
root.  The committed file carries two numbers:

* ``seed_ips`` — throughput of the original scan-driven core, measured
  once on the machine that produced the file (the pre-optimisation
  baseline the acceptance criterion is judged against);
* ``current_ips`` — throughput of the core as of the last benchmark run.

The gate **fails** when the best-of-N run is >5% below the committed
``current_ips``.  Best-of-N sampling absorbs ordinary scheduler jitter;
a drop past the tolerance means the hot path genuinely slowed down.
The file still lives in ``benchmarks/`` (outside the tier-1
``testpaths``) and runs as its own CI job, so a perf regression fails
the *performance* leg without ever masking a correctness failure.
Intentional slowdowns are accepted by committing the rewritten
``BENCH_core.json`` together with the change.
"""

import json
import time
import warnings
from pathlib import Path

import pytest

from repro.uarch.config import (
    PredictorKind,
    base_config,
    hybrid_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore
from repro.workloads import get_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILE = REPO_ROOT / "BENCH_core.json"


def zoo_select_config():
    """The predictor-zoo hybrid selector (stride/LVP/FCM arbitration):
    the most state-heavy realistic predictor, so its wallclock cost is
    the one worth tracking."""
    return vp_config(PredictorKind.HYBRID_SELECT)


# The timed kernel: enough work that interpreter warm-up is amortised,
# small enough that the whole gate stays in seconds.
KERNEL = [
    ("compress", base_config, 20_000),
    ("go", base_config, 20_000),
    ("compress", hybrid_config, 10_000),
    ("compress", zoo_select_config, 10_000),
]
REGRESSION_TOLERANCE = 0.05  # FAIL when >5% below the committed number
HISTORY_LIMIT = 20  # benchmark runs kept in the ``history`` list


#: Telemetry-on runs must stay within this factor of telemetry-off
#: wallclock (the observability promise in docs/telemetry.md).
TELEMETRY_OVERHEAD_LIMIT = 1.5


def _run_kernel(telemetry: bool = False):
    """Simulate the kernel; returns (instructions, seconds)."""
    total_instructions = 0
    total_seconds = 0.0
    for workload, factory, budget in KERNEL:
        spec = get_workload(workload)
        core = OutOfOrderCore(factory(), spec.program("ref"))
        if telemetry:
            core.enable_telemetry(interval=500, events=True)
        core.skip(spec.skip_instructions)
        start = time.perf_counter()
        stats = core.run(max_cycles=2_000_000, max_instructions=budget)
        total_seconds += time.perf_counter() - start
        total_instructions += stats.committed
    return total_instructions, total_seconds


def measure_ips(repeats: int = 3) -> float:
    """Best-of-N simulated instructions per wallclock second."""
    best = 0.0
    for _ in range(repeats):
        instructions, seconds = _run_kernel()
        best = max(best, instructions / seconds)
    return best


def test_core_throughput_gate():
    ips = measure_ips()
    committed = {}
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())

    # Each run *appends* to ``history`` (bounded) rather than
    # overwriting, so regressions show up as a trend across runs.
    entry = {"current_ips": round(ips, 1)}
    history = (committed.get("history", []) + [entry])[-HISTORY_LIMIT:]
    record = {
        "kernel": [[w, f.__name__, n] for w, f, n in KERNEL],
        "seed_ips": committed.get("seed_ips", ips),
        "current_ips": round(ips, 1),
        "speedup_vs_seed": round(
            ips / committed.get("seed_ips", ips), 2),
        "history": history,
    }
    if "telemetry_overhead" in committed:
        record["telemetry_overhead"] = committed["telemetry_overhead"]
    BENCH_FILE.write_text(json.dumps(record, indent=1) + "\n")

    # Hard gate: best-of-N against the committed number absorbs normal
    # scheduler jitter, so a >5% drop means the hot path really slowed
    # down.  To accept an intentional slowdown, commit the regenerated
    # BENCH_core.json (this test just rewrote it) alongside the change.
    reference = committed.get("current_ips")
    if reference:
        floor = reference * (1 - REGRESSION_TOLERANCE)
        assert ips >= floor, (
            f"core throughput regressed: {ips:.0f} inst/s vs committed "
            f"{reference:.0f} inst/s "
            f"({100 * (1 - ips / reference):.0f}% drop, limit "
            f"{100 * REGRESSION_TOLERANCE:.0f}%); if intentional, commit "
            f"the rewritten BENCH_core.json")
    assert ips > 0


def test_telemetry_overhead_gate():
    """A fully-instrumented run (interval sampling + event ring buffer)
    must cost at most ``TELEMETRY_OVERHEAD_LIMIT``x plain wallclock.

    Warns rather than fails — like the throughput gate, wallclock noise
    on shared CI machines must not break the build — and records the
    measured ratio into ``BENCH_core.json`` so the trend is visible.
    """
    best_ratio = float("inf")
    for _ in range(3):
        _, plain = _run_kernel(telemetry=False)
        _, traced = _run_kernel(telemetry=True)
        best_ratio = min(best_ratio, traced / plain)

    committed = {}
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    committed["telemetry_overhead"] = round(best_ratio, 3)
    BENCH_FILE.write_text(json.dumps(committed, indent=1) + "\n")

    if best_ratio > TELEMETRY_OVERHEAD_LIMIT:
        warnings.warn(
            f"telemetry overhead {best_ratio:.2f}x exceeds the "
            f"{TELEMETRY_OVERHEAD_LIMIT}x budget",
            stacklevel=1)
    assert best_ratio > 0


if __name__ == "__main__":
    instructions, seconds = _run_kernel()
    print(f"{instructions} instructions in {seconds:.2f}s "
          f"= {instructions / seconds:.0f} inst/s")
