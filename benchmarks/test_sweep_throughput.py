"""Sweep-cost benchmark: the interactivity gate for the full harness.

Times a representative slice of the experiment sweep — timing runs
across all four technique configurations plus functional limit-study
runs — through :class:`~repro.experiments.runner.ExperimentRunner` at
``jobs=1``, twice:

* **cold**: empty result cache *and* empty checkpoint store (the first
  sweep on a fresh checkout);
* **warm**: empty result cache but a populated warm-state checkpoint
  store (every later sweep: the common case this PR optimises, since
  the store is keyed on program content and survives cache-version
  bumps, budget changes and CI cache restores).

Results go to ``BENCH_sweep.json`` at the repo root.  The committed
``baseline_seconds`` is the same kernel measured once on the
pre-optimisation harness (generic ``execute`` dispatch, no checkpoint
store) on the machine that produced the file; ``history`` accumulates
one entry per benchmark run instead of overwriting, so a regression
shows up as a trend, not a mystery.

Like the core-throughput gate, this *warns* (never fails): wallclock
noise across CI machines must not fail a correctness job, which is why
this file lives in ``benchmarks/`` outside the tier-1 ``testpaths``.
"""

import json
import tempfile
import time
import warnings
from pathlib import Path

from repro.experiments.runner import ExperimentRunner
from repro.metrics.bench_report import bounded_history
from repro.uarch.config import (
    base_config,
    hybrid_config,
    ir_config,
    vp_config,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_FILE = REPO_ROOT / "BENCH_sweep.json"

CONFIG_FACTORIES = {
    "base": base_config,
    "vp": vp_config,
    "ir": ir_config,
    "hybrid": hybrid_config,
}

# The timed kernel: two workloads through every technique configuration
# (the golden-corpus budgets) plus the limit study at three producer
# distances — the same mix `repro-experiment all` is made of, scaled to
# keep the gate in seconds.
TIMING_KERNEL = [(workload, key) for workload in ("compress", "ijpeg")
                 for key in sorted(CONFIG_FACTORIES)]
LIMIT_KERNEL = [(workload, pd) for workload in ("compress", "ijpeg")
                for pd in (25, 50, 100)]
INSTRUCTIONS = 4_000
MAX_CYCLES = 200_000
WARMUP = 60_000
WINDOW = 20_000

REPEATS = 2
TARGET_SPEEDUP = 3.0  # the acceptance bar for cold vs baseline
# History is bounded by repro.metrics.bench_report.bounded_history —
# the single helper both BENCH files share.


def _run_kernel(cache_dir: Path, checkpoint_dir: Path) -> float:
    """One jobs=1 sweep of the kernel; returns wallclock seconds."""
    runner = ExperimentRunner(max_instructions=INSTRUCTIONS,
                              max_cycles=MAX_CYCLES,
                              cache_dir=cache_dir,
                              checkpoint_dir=checkpoint_dir,
                              quiet=True, jobs=1)
    start = time.perf_counter()
    for workload, key in TIMING_KERNEL:
        runner.run(workload, CONFIG_FACTORIES[key]())
    for workload, producer_distance in LIMIT_KERNEL:
        runner.run_redundancy(workload, warmup=WARMUP, window=WINDOW,
                              producer_distance=producer_distance)
    return time.perf_counter() - start


def measure() -> dict:
    """Best-of-N cold and warm sweep times, in seconds."""
    cold = warm = float("inf")
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "checkpoints"  # persists across warm repeats
        for repeat in range(REPEATS):
            cold_base = Path(tmp) / f"cold{repeat}"
            cold = min(cold, _run_kernel(cold_base / "results",
                                         cold_base / "checkpoints"))
            warm_results = Path(tmp) / f"warm{repeat}" / "results"
            seconds = _run_kernel(warm_results, store)
            if repeat:  # repeat 0 populated the store: that one was cold
                warm = min(warm, seconds)
    return {"cold_seconds": round(cold, 3),
            "warm_seconds": round(warm, 3)}


def test_sweep_throughput_gate():
    measured = measure()
    committed = {}
    if BENCH_FILE.exists():
        committed = json.loads(BENCH_FILE.read_text())
    baseline = committed.get("baseline_seconds")

    entry = dict(measured)
    if baseline:
        entry["speedup_vs_baseline"] = round(
            baseline / measured["cold_seconds"], 2)
        entry["warm_speedup_vs_baseline"] = round(
            baseline / measured["warm_seconds"], 2)
    history = bounded_history(committed.get("history"), entry)

    record = {
        "kernel": {
            "timing": [list(pair) for pair in TIMING_KERNEL],
            "limit": [list(pair) for pair in LIMIT_KERNEL],
            "instructions": INSTRUCTIONS,
            "max_cycles": MAX_CYCLES,
            "warmup": WARMUP,
            "window": WINDOW,
            "jobs": 1,
        },
        "baseline_seconds": baseline,
        **entry,
        "history": history,
    }
    BENCH_FILE.write_text(json.dumps(record, indent=1) + "\n")

    if baseline:
        speedup = baseline / measured["cold_seconds"]
        if speedup < TARGET_SPEEDUP:
            warnings.warn(
                f"cold sweep {measured['cold_seconds']:.3f}s is only "
                f"{speedup:.2f}x the {baseline:.3f}s baseline "
                f"(target {TARGET_SPEEDUP:.1f}x)", stacklevel=1)
    assert measured["cold_seconds"] > 0
    assert measured["warm_seconds"] > 0


if __name__ == "__main__":
    print(json.dumps(measure(), indent=1))
