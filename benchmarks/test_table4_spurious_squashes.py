"""Table 4: increase in branch squashes from spurious (value-speculative) branch resolutions under SB.

Regenerates the rows of the paper's Table 4; the timed kernel is a short
simulation in this experiment's headline configuration.
"""

from repro.experiments import table4
from repro.experiments.configs import (  # noqa: F401
    BASE,
    IR_EARLY,
    IR_LATE,
    vp_lvp,
    vp_magic,
)


def test_table4_spurious_squashes(benchmark, runner, emit, sim_kernel):
    report = table4.run(runner)
    emit(report, "table4_spurious_squashes")
    benchmark.pedantic(
        lambda: sim_kernel("vortex", vp_lvp()),
        rounds=2, iterations=1)
