"""Table 3: IR reuse rates and VP_Magic/VP_LVP prediction rates.

Regenerates the rows of the paper's Table 3; the timed kernel is a short
simulation in this experiment's headline configuration.
"""

from repro.experiments import table3
from repro.experiments.configs import (  # noqa: F401
    BASE,
    IR_EARLY,
    IR_LATE,
    vp_lvp,
    vp_magic,
)


def test_table3_rates(benchmark, runner, emit, sim_kernel):
    report = table3.run(runner)
    emit(report, "table3_rates")
    benchmark.pedantic(
        lambda: sim_kernel("m88ksim", IR_EARLY),
        rounds=2, iterations=1)
