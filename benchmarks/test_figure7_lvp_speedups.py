"""Figure 7: net speedups of VP_LVP (ME/NME x SB/NSB).

Regenerates parts (a) and (b).  The expected shape: SB configurations
degrade below 1.0 (spurious squashes outweigh the lower prediction
accuracy) and NSB beats SB — the reverse of VP_Magic's ordering.  The
timed kernel runs VP_LVP ME-SB, the configuration that degrades most.
"""

from repro.experiments import figure7
from repro.experiments.configs import vp_lvp


def test_figure7_lvp_speedups(benchmark, runner, emit, sim_kernel):
    for part, report in enumerate(figure7.run_both(runner)):
        emit(report, f"figure7{'ab'[part]}")
    benchmark.pedantic(lambda: sim_kernel("vortex", vp_lvp()),
                       rounds=2, iterations=1)
