"""Figure 9: input readiness of repeated instructions (producer reused / >=50 ahead / <50 ahead).

Regenerates the rows of the paper's Figure 9; the timed kernel is the
functional-simulation limit study over one workload window.
"""

from repro.experiments import figure9


def test_figure9_readiness(benchmark, runner, emit):
    report = figure9.run(runner)
    emit(report, "figure9_readiness")
    benchmark.pedantic(
        lambda: runner.run_redundancy("m88ksim", warmup=2_000, window=5_000),
        rounds=2, iterations=1)
