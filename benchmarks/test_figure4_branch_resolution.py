"""Figure 4: branch resolution latency normalised to base.

Regenerates both parts — (a) 0-cycle and (b) 1-cycle VP-verification
latency — with the four VP_Magic configurations plus the reuse scheme.
The timed kernel runs the NSB configuration, the one whose resolution
latency is most sensitive to verification delay.
"""

from repro.experiments import figure4
from repro.uarch.config import BranchPolicy
from repro.experiments.configs import vp_config, PredictorKind, ReexecPolicy


def test_figure4_branch_resolution(benchmark, runner, emit, sim_kernel):
    for part, report in enumerate(figure4.run_both(runner)):
        emit(report, f"figure4{'ab'[part]}")
    nsb = vp_config(PredictorKind.MAGIC, ReexecPolicy.MULTIPLE,
                    BranchPolicy.NON_SPECULATIVE, 1)
    benchmark.pedantic(lambda: sim_kernel("perl", nsb),
                       rounds=2, iterations=1)
