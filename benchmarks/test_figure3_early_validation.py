"""Figure 3: speedup from early vs late validation of reused results.

Regenerates the rows of the paper's Figure 3; the timed kernel is a short
simulation in this experiment's headline configuration.
"""

from repro.experiments import figure3
from repro.experiments.configs import (  # noqa: F401
    BASE,
    IR_EARLY,
    IR_LATE,
    vp_lvp,
    vp_magic,
)


def test_figure3_early_validation(benchmark, runner, emit, sim_kernel):
    report = figure3.run(runner)
    emit(report, "figure3_early_validation")
    benchmark.pedantic(
        lambda: sim_kernel("vortex", IR_LATE),
        rounds=2, iterations=1)
