"""Shared fixtures for the table/figure benchmark harness.

Each benchmark file regenerates one table or figure of the paper: the
(workload x configuration) sweep behind it runs through a shared
:class:`ExperimentRunner` whose disk cache lives in ``results/bench`` —
so the full sweep is computed once per source revision and shared by all
benchmarks — and the rendered table is written to ``benchmarks/output/``
and echoed to stdout (visible with ``pytest -s``).

The timed portion of each benchmark is a representative simulation
kernel for that experiment (a short run of one workload in the
experiment's headline configuration), so ``--benchmark-only`` also
reports how expensive each experiment's simulations are.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

from repro.experiments.runner import ExperimentRunner  # noqa: E402
from repro.uarch.core import OutOfOrderCore  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

BENCH_INSTRUCTIONS = 4_000
BENCH_MAX_CYCLES = 150_000


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner(
        max_instructions=BENCH_INSTRUCTIONS,
        max_cycles=BENCH_MAX_CYCLES,
        cache_dir=REPO_ROOT / "results" / "bench",
        quiet=True,
    )


@pytest.fixture(scope="session")
def emit():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(report, name):
        text = report.render() if hasattr(report, "render") else str(report)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _emit


@pytest.fixture
def sim_kernel():
    """A timed kernel: simulate `instructions` of `workload` in `config`."""

    def _kernel(workload, config, instructions=1_000):
        spec = get_workload(workload)
        core = OutOfOrderCore(config, spec.program())
        core.skip(spec.skip_instructions)
        stats = core.run(max_instructions=instructions,
                         max_cycles=BENCH_MAX_CYCLES)
        assert stats.committed > 0
        return stats

    return _kernel
