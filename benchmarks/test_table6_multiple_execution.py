"""Table 6: dynamic instructions executed once/twice/thrice under VP_Magic ME-SB with 1-cycle verification.

Regenerates the rows of the paper's Table 6; the timed kernel is a short
simulation in this experiment's headline configuration.
"""

from repro.experiments import table6
from repro.experiments.configs import (  # noqa: F401
    BASE,
    IR_EARLY,
    IR_LATE,
    vp_lvp,
    vp_magic,
)


def test_table6_multiple_execution(benchmark, runner, emit, sim_kernel):
    report = table6.run(runner)
    emit(report, "table6_multiple_execution")
    benchmark.pedantic(
        lambda: sim_kernel("gcc", vp_magic(verify_latency=1)),
        rounds=2, iterations=1)
