"""Table 5: wrong-path executed work squashed by mispredictions and the fraction IR recovers from the reuse buffer.

Regenerates the rows of the paper's Table 5; the timed kernel is a short
simulation in this experiment's headline configuration.
"""

from repro.experiments import table5
from repro.experiments.configs import (  # noqa: F401
    BASE,
    IR_EARLY,
    IR_LATE,
    vp_lvp,
    vp_magic,
)


def test_table5_squash_recovery(benchmark, runner, emit, sim_kernel):
    report = table5.run(runner)
    emit(report, "table5_squash_recovery")
    benchmark.pedantic(
        lambda: sim_kernel("go", IR_EARLY),
        rounds=2, iterations=1)
