"""Figure 5: resource contention (FU + cache-port denials per request) normalised to base.

Regenerates the rows of the paper's Figure 5; the timed kernel is a short
simulation in this experiment's headline configuration.
"""

from repro.experiments import figure5
from repro.experiments.configs import (  # noqa: F401
    BASE,
    IR_EARLY,
    IR_LATE,
    vp_lvp,
    vp_magic,
)


def test_figure5_contention(benchmark, runner, emit, sim_kernel):
    report = figure5.run(runner)
    emit(report, "figure5_contention")
    benchmark.pedantic(
        lambda: sim_kernel("compress", vp_magic()),
        rounds=2, iterations=1)
