"""Figure 6: net speedups of VP_Magic (ME/NME x SB/NSB) and IR.

Regenerates parts (a) and (b) — 0- and 1-cycle VP-verification latency —
including the harmonic-mean row.  The timed kernel runs VP_Magic ME-SB,
the paper's headline VP configuration.
"""

from repro.experiments import figure6
from repro.experiments.configs import vp_magic


def test_figure6_speedups(benchmark, runner, emit, sim_kernel):
    for part, report in enumerate(figure6.run_both(runner)):
        emit(report, f"figure6{'ab'[part]}")
    benchmark.pedantic(lambda: sim_kernel("m88ksim", vp_magic()),
                       rounds=2, iterations=1)
