"""Ablations: hybrid VP+IR, structure capacity, instances per instruction.

Extensions beyond the paper's own tables: the hybrid machine its
conclusion motivates, plus sensitivity sweeps over the two structure
parameters Section 4.1.3 fixes (total storage and 4-way instancing).
"""

from repro.experiments import ablations
from repro.uarch.config import hybrid_config


def test_ablations(benchmark, runner, emit, sim_kernel):
    for report, name in zip(ablations.run(runner),
                            ("ablation_hybrid", "ablation_storage",
                             "ablation_instances")):
        emit(report, name)
    benchmark.pedantic(lambda: sim_kernel("m88ksim", hybrid_config()),
                       rounds=2, iterations=1)
