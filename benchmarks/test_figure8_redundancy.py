"""Figure 8: unique/repeated/derivable/unaccounted classification of instruction results (functional limit study).

Regenerates the rows of the paper's Figure 8; the timed kernel is the
functional-simulation limit study over one workload window.
"""

from repro.experiments import figure8


def test_figure8_redundancy(benchmark, runner, emit):
    report = figure8.run(runner)
    emit(report, "figure8_redundancy")
    benchmark.pedantic(
        lambda: runner.run_redundancy("m88ksim", warmup=2_000, window=5_000),
        rounds=2, iterations=1)
