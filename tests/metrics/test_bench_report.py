"""Unit tests for the bench-history analyzer (repro-bench-report).

Pins the shared history hygiene both perf gates import
(:func:`bounded_history`, :func:`normalize_core_entry`), the
rolling-median flag semantics, and the CLI (tables, --html, --strict).
"""

import json

import pytest

from repro.metrics.bench_report import (
    HISTORY_LIMIT,
    bench_reports,
    bounded_history,
    classify,
    core_trend,
    latest_flags,
    main,
    normalize_core_entry,
    normalize_core_history,
    sweep_trend,
    trend_flag,
)


class TestHistoryHygiene:
    def test_bounded_history_appends_and_truncates(self):
        history = [{"current_ips": float(i)} for i in range(HISTORY_LIMIT)]
        entry = {"current_ips": 99.0}
        bounded = bounded_history(history, entry)
        assert len(bounded) == HISTORY_LIMIT
        assert bounded[-1] is entry
        assert bounded[0] == {"current_ips": 1.0}  # oldest dropped
        assert len(history) == HISTORY_LIMIT  # input untouched

    def test_bounded_history_from_none(self):
        assert bounded_history(None, {"x": 1}) == [{"x": 1}]

    def test_normalize_backfills_speedup(self):
        entry = normalize_core_entry({"current_ips": 30.0}, seed_ips=20.0)
        assert entry == {"current_ips": 30.0, "speedup_vs_seed": 1.5}
        # No seed: entry passes through unchanged.
        assert "speedup_vs_seed" not in \
            normalize_core_entry({"current_ips": 30.0}, seed_ips=0.0)

    def test_normalize_core_history_covers_both_legs(self):
        record = normalize_core_history({
            "seed_ips": 10.0,
            "history": [{"current_ips": 15.0}],
            "history_compiled": [{"current_ips": 40.0}],
        })
        assert record["history"][0]["speedup_vs_seed"] == 1.5
        assert record["history_compiled"][0]["speedup_vs_seed"] == 4.0


class TestTrendFlag:
    def test_no_history_is_dash(self):
        assert trend_flag(10.0, []) == (None, "-")
        assert trend_flag(None, [10.0]) == (None, "-")

    def test_band_semantics_higher_is_better(self):
        previous = [100.0, 100.0, 100.0]
        assert trend_flag(100.0, previous) == (100.0, "ok")
        assert trend_flag(96.0, previous)[1] == "ok"  # inside 5%
        assert trend_flag(90.0, previous)[1] == "regress"
        assert trend_flag(110.0, previous)[1] == "improve"

    def test_lower_is_better_inverts(self):
        previous = [2.0, 2.0]
        assert trend_flag(2.5, previous,
                          higher_is_better=False)[1] == "regress"
        assert trend_flag(1.5, previous,
                          higher_is_better=False)[1] == "improve"

    def test_window_limits_the_median(self):
        previous = [1.0] * 10 + [100.0] * 5
        median, _ = trend_flag(100.0, previous, window=5)
        assert median == 100.0  # the old 1.0 era is outside the window


CORE_RECORD = {
    "seed_ips": 100.0,
    "current_ips": 150.0,
    "speedup_vs_seed": 1.5,
    "telemetry_overhead": 1.14,
    "tracing_overhead": 1.1,
    "history": [{"current_ips": 140.0}, {"current_ips": 145.0},
                {"current_ips": 148.0, "speedup_vs_seed": 1.48}],
}

SWEEP_RECORD = {
    "baseline_seconds": 4.0,
    "cold_seconds": 2.0,
    "warm_seconds": 1.5,
    "history": [
        {"cold_seconds": 2.0, "warm_seconds": 1.5,
         "speedup_vs_baseline": 2.0, "warm_speedup_vs_baseline": 2.67},
        {"cold_seconds": 2.5, "warm_seconds": 1.9,
         "speedup_vs_baseline": 1.6, "warm_speedup_vs_baseline": 2.11},
    ],
}


class TestTables:
    def test_core_trend_normalizes_and_annotates(self):
        table, = core_trend(CORE_RECORD)
        assert len(table.rows) == 3
        # Backfilled speedup for the entries that predate the field.
        assert table.rows[0][2] == 1.4
        assert table.rows[0][-1] == "-"  # first entry has no history
        assert table.rows[-1][-1] == "ok"
        notes = " ".join(table.notes)
        assert "telemetry_overhead 1.14x" in notes
        assert "tracing_overhead 1.1x" in notes

    def test_core_trend_compiled_leg(self):
        record = dict(CORE_RECORD)
        record["history_compiled"] = [
            {"current_ips": 450.0, "compiled_speedup": 3.0}]
        interp, compiled = core_trend(record)
        assert "compiled" in compiled.title
        assert compiled.rows[0][3] == 3.0  # x interpreted column

    def test_sweep_trend_flags_second_increase(self):
        table, = sweep_trend(SWEEP_RECORD)
        assert table.rows[0][-1] == "-"
        # Entry 1: cold 2.0 -> 2.5 s is a >5% increase on a
        # lower-is-better leg, so the combined verdict regresses.
        assert table.rows[1][-1] == "regress"
        assert latest_flags(table) == ["regress"]

    def test_classify(self):
        assert classify(CORE_RECORD) == "core"
        assert classify(SWEEP_RECORD) == "sweep"
        with pytest.raises(ValueError, match="not a BENCH"):
            classify({"something": 1})


class TestCli:
    def _write(self, tmp_path):
        core = tmp_path / "BENCH_core.json"
        sweep = tmp_path / "BENCH_sweep.json"
        core.write_text(json.dumps(CORE_RECORD))
        sweep.write_text(json.dumps(SWEEP_RECORD))
        return core, sweep

    def test_reports_tag_their_source_file(self, tmp_path):
        core, sweep = self._write(tmp_path)
        reports = bench_reports([core, sweep])
        assert [r.title for r in reports] == [
            "Core throughput history (interpreted) [BENCH_core.json]",
            "Sweep throughput history [BENCH_sweep.json]"]

    def test_main_renders_both_tables(self, tmp_path, capsys):
        core, sweep = self._write(tmp_path)
        assert main([str(core), str(sweep)]) == 0
        out = capsys.readouterr().out
        assert "Core throughput history" in out
        assert "Sweep throughput history" in out

    def test_main_missing_files_exit_1(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json")]) == 1
        assert "no BENCH records" in capsys.readouterr().out

    def test_strict_exits_2_on_fresh_regression(self, tmp_path, capsys):
        _, sweep = self._write(tmp_path)
        assert main([str(sweep)]) == 0  # default: report only
        assert main([str(sweep), "--strict"]) == 2
        capsys.readouterr()

    def test_html_output(self, tmp_path, capsys):
        core, _ = self._write(tmp_path)
        html = tmp_path / "trends.html"
        assert main([str(core), "--html", str(html)]) == 0
        assert "Core throughput history" in html.read_text()
        capsys.readouterr()

    def test_committed_bench_files_parse_clean(self, capsys):
        """The repo's own BENCH files must stay renderable (and free of
        'regress' on their newest entries would be machine-dependent —
        only parseability is pinned here)."""
        repo = __import__("pathlib").Path(__file__).resolve().parents[2]
        core = repo / "BENCH_core.json"
        sweep = repo / "BENCH_sweep.json"
        assert main([str(core), str(sweep)]) == 0
        capsys.readouterr()
