"""Unit tests for ASCII chart rendering."""

from repro.metrics.charts import bar, bar_chart, report_to_chart
from repro.metrics.report import Report


class TestBar:
    def test_full_bar(self):
        assert bar(10, 10, width=8) == "=" * 8

    def test_half_bar(self):
        assert bar(5, 10, width=8) == "=" * 4 + " " * 4

    def test_zero_value(self):
        assert bar(0, 10, width=8) == " " * 8

    def test_zero_maximum_is_safe(self):
        assert bar(5, 0, width=8) == " " * 8

    def test_clamps_overflow(self):
        assert bar(20, 10, width=8) == "=" * 8


class TestBarChart:
    def make(self, reference=None):
        return bar_chart(
            "Demo chart",
            {"go": {"VP": 1.3, "IR": 1.2}, "perl": {"VP": 0.9, "IR": 1.0}},
            reference=reference, width=20)

    def test_contains_all_labels(self):
        text = self.make()
        for label in ("go", "perl", "VP", "IR"):
            assert label in text

    def test_values_printed(self):
        assert "1.30" in self.make()

    def test_group_label_only_on_first_row(self):
        lines = [line for line in self.make().splitlines() if "|" in line]
        assert lines[0].startswith("go")
        assert lines[1].startswith(" ")

    def test_reference_marker_drawn(self):
        text = self.make(reference=1.0)
        assert any("|" in line[8:-8] for line in text.splitlines()
                   if "0.90" in line)

    def test_empty_data(self):
        assert "(no data)" in bar_chart("x", {})


class TestReportToChart:
    def test_converts_numeric_report(self):
        report = Report("Speedups", ["bench", "VP", "IR"])
        report.add_row("go", 1.3, 1.2)
        report.add_row("perl", 0.9, 1.0)
        text = report_to_chart(report, reference=1.0)
        assert "Speedups" in text
        assert "go" in text and "1.30" in text

    def test_skips_non_numeric_cells(self):
        report = Report("Mixed", ["bench", "value", "note"])
        report.add_row("go", 2.0, "hello")
        text = report_to_chart(report)
        assert "hello" not in text
        assert "2.00" in text
