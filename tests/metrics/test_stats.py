"""Unit tests for statistics and derived metrics."""

import json

import pytest

from repro.metrics import SimStats, harmonic_mean, speedup


class TestDerivedMetrics:
    def test_ipc(self):
        stats = SimStats(cycles=100, committed=250)
        assert stats.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_branch_prediction_rate(self):
        stats = SimStats(cond_branches=100, cond_branch_correct=90)
        assert stats.branch_prediction_rate == 0.9

    def test_branch_rate_with_no_branches(self):
        assert SimStats().branch_prediction_rate == 1.0

    def test_resource_contention(self):
        stats = SimStats(resource_requests=200, resource_denials=20)
        assert stats.resource_contention == 0.1

    def test_vp_rates(self):
        stats = SimStats(committed=1000, vp_result_predicted=400,
                         vp_result_correct=350)
        assert stats.vp_result_rate == 0.35
        assert stats.vp_result_misp_rate == 0.05

    def test_ir_rates(self):
        stats = SimStats(committed=1000, memory_ops=200,
                         ir_result_reused=100, ir_addr_reused=50)
        assert stats.ir_result_rate == 0.1
        assert stats.ir_addr_rate == 0.25

    def test_squash_recovery_fractions(self):
        stats = SimStats(executed_instructions=1000, squashed_executed=100,
                         squashed_recovered=30)
        assert stats.squashed_executed_fraction == 0.1
        assert stats.recovered_fraction == 0.3

    def test_resolution_latency_mean(self):
        stats = SimStats(branch_resolution_cycles=30,
                         branch_resolution_count=10)
        assert stats.mean_branch_resolution_latency == 3.0


class TestHistogram:
    def test_record_and_fraction(self):
        stats = SimStats()
        for times in (1, 1, 1, 2):
            stats.record_exec_histogram(times)
        assert stats.exec_count_fraction(1) == 0.75
        assert stats.exec_count_fraction(2) == 0.25
        assert stats.exec_count_fraction(3) == 0.0

    def test_empty_histogram(self):
        assert SimStats().exec_count_fraction(1) == 0.0


class TestSerialisation:
    def test_round_trip(self):
        stats = SimStats(config_name="base", cycles=10, committed=20)
        stats.record_exec_histogram(1)
        stats.record_exec_histogram(2)
        clone = SimStats.from_dict(stats.as_dict())
        assert clone.config_name == "base"
        assert clone.cycles == 10
        assert clone.exec_count_histogram == {1: 1, 2: 1}

    def test_from_dict_ignores_unknown_keys(self):
        stats = SimStats.from_dict({"cycles": 5, "not_a_field": 1})
        assert stats.cycles == 5

    def test_from_dict_ignores_derived_property_keys(self):
        # A newer writer may serialize derived metrics alongside the raw
        # counters.  Property names pass hasattr() but reject setattr();
        # from_dict must skip them rather than crash (forward-compat).
        stats = SimStats.from_dict({"cycles": 100, "committed": 250,
                                    "ipc": 2.5, "branch_prediction_rate": 1.0})
        assert stats.cycles == 100
        assert stats.ipc == 2.5  # recomputed, not assigned

    def test_from_dict_tolerates_future_schema(self):
        payload = SimStats(cycles=10, committed=20).as_dict()
        payload["telemetry_format"] = "repro-interval-v9"
        payload["new_counter_block"] = {"a": 1}
        clone = SimStats.from_dict(payload)
        assert clone.cycles == 10 and clone.committed == 20


class TestCanonicalJson:
    """canonical_json() is a byte contract: explicit key-order checks."""

    def test_keys_are_sorted(self):
        stats = SimStats(config_name="base", cycles=10, committed=20)
        payload = json.loads(stats.canonical_json())
        assert list(payload) == sorted(payload)

    def test_bytes_independent_of_insertion_order(self):
        forward, backward = SimStats(), SimStats()
        forward.record_exec_histogram(2)
        forward.record_exec_histogram(10)
        backward.record_exec_histogram(10)
        backward.record_exec_histogram(2)
        assert forward.canonical_json() == backward.canonical_json()

    def test_histogram_int_keys_sort_numerically(self):
        # int keys sort 2 < 10; stringified keys would sort "10" < "2"
        # and silently reorder every cache/golden byte stream.  The
        # numeric order is pinned here as part of the byte format.
        stats = SimStats()
        stats.record_exec_histogram(10)
        stats.record_exec_histogram(2)
        text = stats.canonical_json()
        assert text.index('"2"') < text.index('"10"')

    def test_matches_plain_sorted_dumps(self):
        # The validating serializer must not change a single byte
        # relative to the historical format (cache compatibility).
        stats = SimStats(cycles=7, committed=9)
        stats.record_exec_histogram(3)
        assert stats.canonical_json() == json.dumps(
            stats.as_dict(), indent=1, sort_keys=True)

    def test_rejects_unsortable_payload(self):
        # A refactor that mixes key types in any serialized dict now
        # fails at the writer instead of corrupting byte identity.
        stats = SimStats()
        stats.exec_count_histogram[1] = 1
        stats.exec_count_histogram["1"] = 1
        with pytest.raises(ValueError, match="mixed str/int"):
            stats.canonical_json()


class TestAggregation:
    def test_speedup(self):
        base = SimStats(cycles=100, committed=100)
        fast = SimStats(cycles=50, committed=100)
        assert speedup(fast, base) == pytest.approx(2.0)

    def test_speedup_zero_base(self):
        assert speedup(SimStats(cycles=1, committed=1), SimStats()) == 0.0

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([2.0, 4.0]) == pytest.approx(8.0 / 3.0)

    def test_harmonic_mean_dominated_by_slowest(self):
        assert harmonic_mean([1.0, 100.0]) < 2.0

    def test_harmonic_mean_empty(self):
        assert harmonic_mean([]) == 0.0
        assert harmonic_mean([0.0]) == 0.0
