"""Unit tests for the plain-text report renderer."""

from repro.metrics.report import Report


class TestRendering:
    def make(self):
        report = Report("Demo", ["name", "value", "pct"])
        report.add_row("alpha", 1, 12.345)
        report.add_row("beta", None, 0.5)
        return report

    def test_title_and_rule(self):
        text = self.make().render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "=" * 4

    def test_header_present(self):
        assert "name" in self.make().render()

    def test_float_formatting(self):
        assert "12.35" in self.make().render()

    def test_none_renders_dash(self):
        assert "-" in self.make().render()

    def test_notes_appended(self):
        report = self.make()
        report.add_note("hello world")
        assert report.render().endswith("note: hello world")

    def test_columns_aligned(self):
        text = self.make().render()
        lines = text.splitlines()
        header = lines[2]
        row = lines[4]
        assert len(header) == len(row)

    def test_str_equals_render(self):
        report = self.make()
        assert str(report) == report.render()
