"""Unit tests for the plain-text report renderer and the
``repro-report`` manifest/telemetry dashboard."""

from repro.metrics.report import (
    Report,
    main,
    render_dashboard_html,
    telemetry_dashboard,
)


class TestRendering:
    def make(self):
        report = Report("Demo", ["name", "value", "pct"])
        report.add_row("alpha", 1, 12.345)
        report.add_row("beta", None, 0.5)
        return report

    def test_title_and_rule(self):
        text = self.make().render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "=" * 4

    def test_header_present(self):
        assert "name" in self.make().render()

    def test_float_formatting(self):
        assert "12.35" in self.make().render()

    def test_none_renders_dash(self):
        assert "-" in self.make().render()

    def test_notes_appended(self):
        report = self.make()
        report.add_note("hello world")
        assert report.render().endswith("note: hello world")

    def test_columns_aligned(self):
        text = self.make().render()
        lines = text.splitlines()
        header = lines[2]
        row = lines[4]
        assert len(header) == len(row)

    def test_str_equals_render(self):
        report = self.make()
        assert str(report) == report.render()


class TestHtmlRendering:
    def test_table_structure(self):
        report = Report("Demo", ["name", "value"])
        report.add_row("alpha", 1.5)
        report.add_note("a note")
        html = report.render_html()
        assert "<h2>Demo</h2>" in html
        assert "<th>name</th>" in html
        assert "<td>1.50</td>" in html
        assert "note: a note" in html

    def test_cells_are_escaped(self):
        report = Report("<Demo>", ["name"])
        report.add_row("<script>alert(1)</script>")
        html = report.render_html()
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_page_wraps_all_reports(self):
        a = Report("First", ["x"])
        a.add_row(1)
        b = Report("Second", ["y"])
        b.add_row(2)
        page = render_dashboard_html([a, b], title="Sweep & co")
        assert page.startswith("<!DOCTYPE html>")
        assert "Sweep &amp; co" in page
        assert "First" in page and "Second" in page


def seed_artifacts(root):
    """A tiny but *real* results directory: one run manifest, one sweep
    manifest, one interval time-series."""
    from repro.telemetry import (
        IntervalSeries,
        run_manifest,
        sweep_manifest,
        write_manifest,
    )
    from repro.telemetry.interval import INTERVAL_COLUMNS
    from repro.uarch.config import base_config

    class FakeStats:
        cycles, committed, ipc = 1000, 2500, 2.5

    key = "v4-compress-base-i1000-c0-abcdefabcdef"
    write_manifest(root / "manifests" / f"{key}.json", run_manifest(
        cache_key=key, workload="compress", config=base_config(),
        program_digest="d" * 16, source_sha12="a" * 12,
        max_instructions=1000, max_cycles=0, cache_hit=False,
        checkpoint="captured", wallclock_seconds=0.5, stats=FakeStats()))
    write_manifest(root / "manifests" / "sweep-abc.json", sweep_manifest(
        run_keys=[key], simulated=1, cached=0, jobs=2,
        wallclock_seconds=0.6))

    series = IntervalSeries(interval=500)
    row = {name: 0 for name in INTERVAL_COLUMNS}
    row.update(cycle=500, cycles=500, committed=1200, ipc=2.4,
               rob_occupancy=17, squashes=3, reuse_hits=40)
    series.append(row)
    series.context.update(workload="compress", config="base")
    telemetry = root / "telemetry"
    telemetry.mkdir(parents=True)
    series.write(telemetry / f"{key}.jsonl")
    return key


class TestTelemetryDashboard:
    def test_joins_manifests_and_timeseries(self, tmp_path):
        key = seed_artifacts(tmp_path)
        reports = telemetry_dashboard(tmp_path)
        titles = [report.title for report in reports]
        assert titles == ["Run manifests", "Sweep manifests",
                          "Interval time-series"]
        text = "\n".join(report.render() for report in reports)
        assert key in text and "compress" in text

    def test_empty_directory_yields_nothing(self, tmp_path):
        assert telemetry_dashboard(tmp_path) == []

    def test_unreadable_timeseries_skipped(self, tmp_path):
        seed_artifacts(tmp_path)
        (tmp_path / "telemetry" / "junk.jsonl").write_text("{broken")
        reports = telemetry_dashboard(tmp_path)
        series = [r for r in reports
                  if r.title == "Interval time-series"][0]
        assert len(series.rows) == 1


class TestReportCli:
    def test_renders_real_artifacts(self, tmp_path, capsys):
        seed_artifacts(tmp_path)
        html_out = tmp_path / "dash.html"
        assert main([str(tmp_path), "--html", str(html_out)]) == 0
        out = capsys.readouterr().out
        assert "Run manifests" in out and "Interval time-series" in out
        assert html_out.read_text().startswith("<!DOCTYPE html>")

    def test_exit_1_when_nothing_found(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1
        assert "no manifests" in capsys.readouterr().out
