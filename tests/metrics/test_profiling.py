"""Tests for the opt-in per-phase wallclock profile."""

import inspect
import re

from repro.isa import assemble
from repro.metrics.profiling import PHASES, CoreProfile
from repro.uarch.config import base_config
from repro.uarch.core import OutOfOrderCore

SOURCE = """
main:   li $s0, 20
loop:   add $t1, $s0, $s0
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


def profiled_run():
    core = OutOfOrderCore(base_config(), assemble(SOURCE))
    profile = core.enable_profiling()
    core.run(max_cycles=20_000)
    return core, profile


class TestPhasesStayInSync:
    """PHASES must mirror the pipeline phases `step()` actually runs.

    If someone adds a phase to the core without teaching the profiler
    (or vice versa) the profile silently lies; this pins the mapping.
    """

    # Phase label -> the call `step()` makes for it.
    EXPECTED = {
        "commit": "self._commit()",
        "events": "self._process_events()",
        "issue": "self._issue()",
        "dispatch": "self._dispatch()",
        "fetch": "fetch.step(self.cycle)",
    }

    def test_phases_tuple_matches_expected_order(self):
        assert PHASES == tuple(self.EXPECTED)

    def test_plain_step_runs_each_phase_in_order(self):
        source = inspect.getsource(OutOfOrderCore.step)
        positions = [source.index(call) for call in self.EXPECTED.values()]
        assert positions == sorted(positions)

    def test_profiled_step_times_exactly_the_phases(self):
        source = inspect.getsource(OutOfOrderCore._step_profiled)
        timed = re.findall(r'time_phase\("(\w+)"', source)
        assert tuple(timed) == PHASES


class TestAccounting:
    def test_run_populates_every_phase(self):
        core, profile = profiled_run()
        assert profile.cycles_stepped > 0
        assert all(profile.phase_seconds[name] >= 0 for name in PHASES)
        assert profile.events_processed > 0

    def test_stats_unchanged_by_profiling(self):
        plain = OutOfOrderCore(base_config(), assemble(SOURCE))
        plain.run(max_cycles=20_000)
        core, _ = profiled_run()
        assert core.stats.canonical_json() == plain.stats.canonical_json()


class TestReportShape:
    def test_as_dict_keys(self):
        _, profile = profiled_run()
        payload = profile.as_dict()
        assert set(payload["phase_seconds"]) == set(PHASES)
        assert set(payload["phase_share"]) == set(PHASES)
        shares = payload["phase_share"].values()
        assert all(0.0 <= share <= 1.0 for share in shares)
        assert payload["events_per_stepped_cycle"] >= 0
        assert payload["scans_per_stepped_cycle"] >= 0

    def test_report_has_wall_and_per_cycle_columns(self):
        _, profile = profiled_run()
        text = profile.report()
        header = text.splitlines()[0]
        for column in ("seconds", "share", "%wall", "us/cycle"):
            assert column in header
        for name in PHASES:
            assert name in text
        assert "/stepped cycle" in text

    def test_empty_profile_reports_without_dividing_by_zero(self):
        profile = CoreProfile()
        assert "%wall" in profile.report()
        assert profile.as_dict()["events_per_stepped_cycle"] == 0
