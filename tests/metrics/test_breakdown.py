"""Tests for the per-class capture breakdown."""

import dataclasses

from repro.isa import assemble
from repro.metrics.breakdown import CLASSES, ClassBreakdown, classify
from repro.uarch.config import base_config, ir_config, vp_config
from repro.uarch.core import OutOfOrderCore

SOURCE = """
.data
tbl: .word 2, 4, 6, 8
.text
main:   li $s0, 120
loop:   li $t0, 8
        lw $t1, tbl($t0)
        mul $t2, $t1, $t1
        sw $t2, tbl+16
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


def run_with_breakdown(config):
    config = dataclasses.replace(config, verify_commits=True)
    core = OutOfOrderCore(config, assemble(SOURCE))
    breakdown = ClassBreakdown(core)
    core.run(max_cycles=100_000)
    return breakdown


class TestClassify:
    def test_classes(self):
        program = assemble("""
        main: add $t0, $t1, $t2
              lw $t3, 0($t0)
              sw $t3, 4($t0)
              beq $t0, $t3, main
              j main
              mult $t0, $t1
              mflo $t2
              halt
        """)
        insts = program.instruction_list()
        expected = ["alu", "load", "store", "branch", "jump",
                    "mult/div", "mult/div", "alu"]
        assert [classify(i) for i in insts] == expected


class TestAccumulation:
    def test_committed_counts_match_total(self):
        breakdown = run_with_breakdown(base_config())
        total = sum(c.committed for c in breakdown.counts.values())
        assert total == breakdown.core.stats.committed

    def test_mix_percentages_sum_to_100(self):
        breakdown = run_with_breakdown(base_config())
        report = breakdown.report()
        mix_column = [row[2] for row in report.rows]
        assert abs(sum(mix_column) - 100.0) < 1e-6

    def test_reuse_attributed_to_classes(self):
        breakdown = run_with_breakdown(ir_config())
        assert breakdown.counts["alu"].reused > 0
        assert breakdown.counts["load"].reused > 0

    def test_store_reuse_is_address_only(self):
        breakdown = run_with_breakdown(ir_config())
        stores = breakdown.counts["store"]
        assert stores.reused == 0
        assert stores.addr_reused > 0

    def test_prediction_attributed(self):
        breakdown = run_with_breakdown(vp_config())
        assert breakdown.counts["alu"].predicted_correct > 0

    def test_reused_ops_do_not_execute(self):
        breakdown = run_with_breakdown(ir_config())
        alu = breakdown.counts["alu"]
        assert alu.executions < alu.committed  # most ALU ops reused

    def test_detach(self):
        core = OutOfOrderCore(base_config(), assemble(SOURCE))
        breakdown = ClassBreakdown(core)
        breakdown.detach()
        assert core.on_commit is None

    def test_report_renders(self):
        text = run_with_breakdown(ir_config()).report().render()
        assert "load" in text and "mult/div" in text
