"""Property-style round-trip: assemble -> disassemble -> reassemble.

``disassemble_source`` renders a :class:`Program` as reassemblable
text.  The property: reassembling that text reproduces the program
exactly (instructions, data image, label addresses, entry point), and a
second disassembly is byte-identical to the first — a fixpoint.  Run
over every workload analog (both input variants), the random-program
generator, and hand-written corner cases.
"""

import pytest

from repro.isa import assemble
from repro.isa.disassembler import disassemble_source
from repro.isa.program import DATA_BASE, TEXT_BASE
from repro.uarch.config import base_config
from repro.uarch.core import OutOfOrderCore
from repro.uarch.decode import DecodeTable
from repro.workloads import all_workloads, get_workload, workload_names
from repro.workloads.random_program import random_program


def assert_roundtrip(program):
    text = disassemble_source(program)
    reassembled = assemble(text)

    assert reassembled.num_instructions == program.num_instructions
    for first, second in zip(program.instruction_list(),
                             reassembled.instruction_list()):
        assert first.pc == second.pc
        assert first.opcode.name == second.opcode.name
        assert (first.rd, first.rs, first.rt) \
            == (second.rd, second.rs, second.rt)
        assert first.imm == second.imm
        assert first.target == second.target
    assert reassembled.data == program.data
    assert reassembled.entry_point == program.entry_point

    assert disassemble_source(reassembled) == text, "not a fixpoint"
    return reassembled


class TestWorkloadRoundTrip:
    @pytest.mark.parametrize("name", workload_names())
    def test_ref_variant(self, name):
        assert_roundtrip(get_workload(name).program())

    @pytest.mark.parametrize("name", workload_names())
    def test_train_variant(self, name):
        spec = get_workload(name)
        if "train" not in spec.variants:
            pytest.skip(f"{name} has no train input")
        assert_roundtrip(spec.program("train"))

    def test_roundtripped_workload_simulates_identically(self):
        """The reassembled program is behaviorally the same program."""
        from repro.functional import FunctionalSimulator
        program = get_workload("compress").program()
        clone = assemble(disassemble_source(program))
        sim_a, sim_b = FunctionalSimulator(program), \
            FunctionalSimulator(clone)
        sim_a.run(max_instructions=5_000)
        sim_b.run(max_instructions=5_000)
        assert sim_a.state.regs == sim_b.state.regs
        assert sim_a.instructions_retired == sim_b.instructions_retired


class TestGeneratedRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_programs(self, seed):
        assert_roundtrip(assemble(random_program(seed, size=60)))


class TestCornerCases:
    def test_sparse_data_with_space_gaps(self):
        assert_roundtrip(assemble("""
        .data
        a: .byte 1, 2, 3
        gap: .space 37
        b: .word 0xdeadbeef, 7
        tail: .space 5
        .text
        main: la $t0, b
              lw $t1, 0($t0)
              halt
        """))

    def test_adjacent_data_labels_keep_addresses(self):
        program = assert_roundtrip(assemble("""
        .data
        x: .word 1
        y: .word 2
        z: .byte 3
        .text
        main: halt
        """))
        assert program.symbols["y"] == program.symbols["x"] + 4
        assert program.symbols["z"] == program.symbols["y"] + 4

    def test_strings_and_alignment(self):
        assert_roundtrip(assemble("""
        .data
        msg: .asciiz "hello, world"
        .align 2
        val: .word 99
        .text
        main: la $a0, msg
              lw $t0, val($zero)
              halt
        """))

    def test_text_only_program(self):
        assert_roundtrip(assemble("""
        main: li $t0, 3
        loop: addi $t0, $t0, -1
              bnez $t0, loop
              halt
        """))

    def test_decode_table_excludes_gaps_and_dead_code(self):
        """Audit of the pre-decoded static metadata table.

        The timing core's :class:`DecodeTable` is populated lazily on
        first fetch; the latent bug class this guards against is a
        stale/garbage :class:`StaticOp` materialising for a PC that
        holds no instruction (a ``.space``-reserved data gap, an
        address off the program) or for text no execution ever reaches.
        """
        program = assemble("""
        .data
        before: .word 1, 2
        gap:    .space 32
        after:  .word 3
        .text
        main: li $t0, 3
              la $s0, before
        loop: lw $t1, 0($s0)
              addi $t0, $t0, -1
              bnez $t0, loop
              j done
        dead: add $t2, $t2, $t2
              sub $t3, $t3, $t2
        done: halt
        """)
        core = OutOfOrderCore(base_config(), program)
        core.run(max_cycles=10_000)
        assert core.halted
        table = core.decode.table

        # Every table entry is a real instruction of this program, and
        # wraps exactly the Instruction object the program holds.
        for pc, static_op in table.items():
            assert pc in program.instructions
            assert static_op.inst is program.instructions[pc]

        # The dead block behind the unconditional jump was never
        # fetched, so it never entered the table.
        dead = range(program.symbols["dead"], program.symbols["done"], 4)
        assert len(dead) == 2
        for pc in dead:
            assert pc in program.instructions  # assembled, but...
            assert pc not in table  # ...never decoded

        # .space-reserved data addresses hold no instruction: lookups
        # there (and at any other non-text address) return None.
        gap_pc = program.symbols["gap"]
        assert DATA_BASE <= gap_pc
        for pc in (gap_pc, gap_pc + 4, DATA_BASE, TEXT_BASE - 4):
            assert core.decode.lookup(pc) is None

    def test_decode_table_never_caches_invalid_pcs(self):
        """A miss must not be memoised: the table stays instructions-only."""
        program = assemble("""
        .data
        buf: .space 16
        .text
        main: halt
        """)
        decode = DecodeTable(program)
        decode.lookup(TEXT_BASE)  # the only instruction
        populated = len(decode)
        for bad_pc in (program.symbols["buf"], TEXT_BASE + 4,
                       TEXT_BASE - 4, 0, 0xFFFF_FFFC):
            assert decode.lookup(bad_pc) is None
            assert decode.lookup(bad_pc) is None  # idempotent
        assert len(decode) == populated == 1
        assert decode.decoded_pcs() == [TEXT_BASE]

    def test_control_flow_targets_survive(self):
        program = assemble("""
        main:  jal helper
               beq $v0, $zero, done
               j main
        done:  halt
        helper: ori $v0, $zero, 1
               jr $ra
        """)
        clone = assert_roundtrip(program)
        for first, second in zip(program.instruction_list(),
                                 clone.instruction_list()):
            if first.opcode.is_control and not first.opcode.is_indirect:
                assert first.target == second.target
