"""Property-based assembler robustness tests."""

from hypothesis import given, settings, strategies as st

from repro.isa import AssemblyError, assemble, disassemble
from repro.workloads import random_program


class TestRobustness:
    @settings(max_examples=60, deadline=None)
    @given(junk=st.text(min_size=1, max_size=120))
    def test_junk_raises_assembly_error_or_assembles(self, junk):
        """Arbitrary text either assembles or raises AssemblyError /
        ValueError-family — never an internal exception type."""
        try:
            assemble(junk)
        except (AssemblyError, ValueError):
            pass

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generated_programs_disassemble(self, seed):
        program = assemble(random_program(seed, size=40))
        listing = disassemble(program)
        assert listing.count("\n") >= program.num_instructions

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_assembly_is_deterministic(self, seed):
        source = random_program(seed, size=30)
        first = assemble(source)
        second = assemble(source)
        assert first.instructions.keys() == second.instructions.keys()
        for pc in first.instructions:
            assert str(first.instructions[pc]) == str(second.instructions[pc])
        assert first.data == second.data
