"""Tests for the single-precision floating-point extension (Table 1 FP)."""

import math
import struct

import pytest

from repro.functional import FunctionalSimulator
from repro.isa import assemble, lookup
from repro.isa.opcodes import (
    NUM_FPRS,
    OpClass,
    REG_F0,
    REG_FCC,
    bits_to_float,
    float_to_bits,
    parse_register,
)


def run(source):
    sim = FunctionalSimulator(assemble(source))
    sim.run(max_instructions=100_000)
    assert sim.halted
    return sim


def fpr(sim, index):
    return bits_to_float(sim.state.regs[REG_F0 + index])


class TestBitConversions:
    @pytest.mark.parametrize("value", [0.0, 1.0, -1.5, 0.1, 3.14159e10,
                                       -2.0**-20])
    def test_round_trip(self, value):
        single = struct.unpack("<f", struct.pack("<f", value))[0]
        assert bits_to_float(float_to_bits(value)) == single

    def test_overflow_to_infinity(self):
        assert bits_to_float(float_to_bits(1e300)) == float("inf")
        assert bits_to_float(float_to_bits(-1e300)) == float("-inf")

    def test_register_parsing(self):
        assert parse_register("$f0") == REG_F0
        assert parse_register("$f31") == REG_F0 + 31
        assert parse_register("$fcc") == REG_FCC


class TestTable1Latencies:
    def test_fp_latencies(self):
        assert (lookup("add.s").latency, lookup("add.s").issue_interval) \
            == (2, 1)
        assert (lookup("mul.s").latency, lookup("mul.s").issue_interval) \
            == (4, 1)
        assert (lookup("div.s").latency, lookup("div.s").issue_interval) \
            == (12, 12)
        assert (lookup("sqrt.s").latency,
                lookup("sqrt.s").issue_interval) == (24, 24)

    def test_fu_classes(self):
        assert lookup("add.s").op_class == OpClass.FP_ADD
        assert lookup("mul.s").op_class == OpClass.FP_MUL_DIV
        assert lookup("sqrt.s").op_class == OpClass.FP_MUL_DIV


class TestArithmetic:
    def test_add_sub(self):
        sim = run("""
        main: li.s $f1, 1.5
              li.s $f2, 2.25
              add.s $f3, $f1, $f2
              sub.s $f4, $f1, $f2
              halt
        """)
        assert fpr(sim, 3) == 3.75
        assert fpr(sim, 4) == -0.75

    def test_mul_div(self):
        sim = run("""
        main: li.s $f1, 3.0
              li.s $f2, 0.5
              mul.s $f3, $f1, $f2
              div.s $f4, $f1, $f2
              halt
        """)
        assert fpr(sim, 3) == 1.5
        assert fpr(sim, 4) == 6.0

    def test_div_by_zero_gives_infinity(self):
        sim = run("""
        main: li.s $f1, 2.0
              li.s $f2, 0.0
              div.s $f3, $f1, $f2
              halt
        """)
        assert fpr(sim, 3) == float("inf")

    def test_sqrt(self):
        sim = run("main: li.s $f1, 2.0\n sqrt.s $f2, $f1\n halt")
        assert abs(fpr(sim, 2) - math.sqrt(2)) < 1e-6

    def test_sqrt_negative_is_nan(self):
        sim = run("main: li.s $f1, -4.0\n sqrt.s $f2, $f1\n halt")
        assert math.isnan(fpr(sim, 2))

    def test_abs_neg_mov(self):
        sim = run("""
        main: li.s $f1, -2.5
              abs.s $f2, $f1
              neg.s $f3, $f2
              mov.s $f4, $f3
              halt
        """)
        assert fpr(sim, 2) == 2.5
        assert fpr(sim, 3) == -2.5
        assert fpr(sim, 4) == -2.5

    def test_single_precision_rounding(self):
        """Results round through 32-bit singles, not doubles."""
        sim = run("""
        main: li.s $f1, 0.1
              li.s $f2, 0.2
              add.s $f3, $f1, $f2
              halt
        """)
        expected = struct.unpack("<f", struct.pack(
            "<f", struct.unpack("<f", struct.pack("<f", 0.1))[0]
            + struct.unpack("<f", struct.pack("<f", 0.2))[0]))[0]
        assert fpr(sim, 3) == expected


class TestConversionsAndMoves:
    def test_cvt_round_trip(self):
        sim = run("""
        main: li $t0, -7
              mtc1 $f1, $t0
              cvt.s.w $f2, $f1
              cvt.w.s $f3, $f2
              mfc1 $t1, $f3
              halt
        """)
        assert fpr(sim, 2) == -7.0
        assert sim.state.regs[9] == 0xFFFFFFF9  # -7 back as an int

    def test_mtc1_mfc1_move_bits(self):
        sim = run("""
        main: li $t0, 0x3F800000
              mtc1 $f1, $t0
              mfc1 $t1, $f1
              halt
        """)
        assert fpr(sim, 1) == 1.0
        assert sim.state.regs[9] == 0x3F800000


class TestMemoryAndBranches:
    def test_float_directive_and_loads(self):
        sim = run("""
        .data
        vec: .float 1.0, -2.0, 0.5
        .text
        main: la $t0, vec
              lwc1 $f1, 4($t0)
              swc1 $f1, 12($t0)
              lwc1 $f2, 12($t0)
              halt
        """)
        assert fpr(sim, 2) == -2.0

    def test_compare_and_branch(self):
        sim = run("""
        main: li.s $f1, 1.0
              li.s $f2, 2.0
              c.lt.s $f1, $f2
              bc1t less
              li $s0, 0
              j done
        less: li $s0, 1
        done: c.eq.s $f1, $f2
              bc1f noteq
              li $s1, 0
              j out
        noteq: li $s1, 1
        out:  halt
        """)
        assert sim.state.regs[16] == 1
        assert sim.state.regs[17] == 1

    def test_fcc_is_architectural(self):
        sim = run("""
        main: li.s $f1, 5.0
              li.s $f2, 5.0
              c.le.s $f1, $f2
              halt
        """)
        assert sim.state.regs[REG_FCC] == 1


class TestFpLoop:
    def test_dot_product(self):
        sim = run("""
        .data
        a: .float 1.0, 2.0, 3.0, 4.0
        b: .float 0.5, 0.5, 0.5, 0.5
        .text
        main: li $t0, 0
              li.s $f0, 0.0
        loop: sll $t1, $t0, 2
              lwc1 $f1, a($t1)
              lwc1 $f2, b($t1)
              mul.s $f3, $f1, $f2
              add.s $f0, $f0, $f3
              addi $t0, $t0, 1
              slti $t2, $t0, 4
              bnez $t2, loop
              halt
        """)
        assert fpr(sim, 0) == 5.0
