"""Tests for the program-listing disassembler."""

from repro.isa import assemble, disassemble, instruction_histogram
from repro.isa.disassembler import disassemble_instruction

SOURCE = """
.data
tbl: .word 1, 2
msg: .asciiz "hi"
.text
main:  li $t0, 5
loop:  addi $t0, $t0, -1
       bnez $t0, loop
       jal fn
       halt
fn:    jr $ra
"""


class TestListing:
    def test_labels_reconstructed(self):
        text = disassemble(assemble(SOURCE))
        for label in ("main:", "loop:", "fn:"):
            assert label in text

    def test_branch_targets_annotated(self):
        text = disassemble(assemble(SOURCE))
        assert "<loop>" in text
        assert "<fn>" in text

    def test_addresses_present(self):
        text = disassemble(assemble(SOURCE))
        assert "0x00001000" in text

    def test_data_summary(self):
        text = disassemble(assemble(SOURCE))
        assert ".data" in text
        assert "<tbl>" in text

    def test_data_omittable(self):
        text = disassemble(assemble(SOURCE), with_data=False)
        assert ".data" not in text

    def test_single_instruction(self):
        program = assemble("main: add $t0, $t1, $t2")
        line = disassemble_instruction(program.instruction_list()[0])
        assert "add" in line and "0x00001000" in line


class TestHistogram:
    def test_counts(self):
        histogram = instruction_histogram(assemble(SOURCE))
        assert histogram["addi"] == 1
        assert histogram["ori"] == 1  # li expands to ori
        assert histogram["jr"] == 1

    def test_total_matches_program(self):
        program = assemble(SOURCE)
        assert sum(instruction_histogram(program).values()) \
            == program.num_instructions
