"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import (
    AssemblyError,
    DATA_BASE,
    INSTRUCTION_BYTES,
    TEXT_BASE,
    assemble,
    format_instruction,
)


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("add $t0, $t1, $t2")
        inst = program.fetch(TEXT_BASE)
        assert inst.opcode.name == "add"
        assert (inst.rd, inst.rs, inst.rt) == (8, 9, 10)

    def test_sequential_pcs(self):
        program = assemble("nop\nnop\nnop")
        pcs = sorted(program.instructions)
        assert pcs == [TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]

    def test_comments_and_blank_lines(self):
        program = assemble("""
            # leading comment
            add $t0, $t1, $t2   # trailing
            ; alt comment style
            nop
        """)
        assert program.num_instructions == 2

    def test_labels_resolve_forward_and_backward(self):
        program = assemble("""
        top:  addi $t0, $t0, 1
              bne $t0, $t1, top
              beq $t0, $t1, done
              nop
        done: halt
        """)
        branch_back = program.fetch(TEXT_BASE + 4)
        branch_fwd = program.fetch(TEXT_BASE + 8)
        assert branch_back.target == TEXT_BASE
        assert branch_fwd.target == TEXT_BASE + 16

    def test_inline_label(self):
        program = assemble("start: nop")
        assert program.symbols["start"] == TEXT_BASE

    def test_main_label_sets_entry_point(self):
        program = assemble("""
        helper: jr $ra
        main:   halt
        """)
        assert program.entry_point == TEXT_BASE + 4

    def test_memory_operand(self):
        program = assemble("lw $t0, -8($sp)")
        inst = program.fetch(TEXT_BASE)
        assert (inst.rd, inst.rs, inst.imm) == (8, 29, -8)

    def test_bare_label_memory_operand(self):
        program = assemble("""
        .data
        var: .word 42
        .text
        lw $t0, var
        """)
        inst = program.fetch(TEXT_BASE)
        assert inst.rs == 0
        assert inst.imm == DATA_BASE

    def test_hex_and_char_literals(self):
        program = assemble("addi $t0, $zero, 0x10\naddi $t1, $zero, 'A'")
        assert program.fetch(TEXT_BASE).imm == 16
        assert program.fetch(TEXT_BASE + 4).imm == 65


class TestPseudoInstructions:
    def test_li_and_la(self):
        program = assemble("""
        .data
        buf: .space 16
        .text
        li $t0, 1234
        la $t1, buf
        """)
        li = program.fetch(TEXT_BASE)
        la = program.fetch(TEXT_BASE + 4)
        assert li.opcode.name == "ori" and li.imm == 1234
        assert la.imm == DATA_BASE

    def test_move(self):
        inst = assemble("move $t0, $t1").fetch(TEXT_BASE)
        assert inst.opcode.name == "addu"
        assert (inst.rd, inst.rs, inst.rt) == (8, 9, 0)

    def test_beqz_bnez_b(self):
        program = assemble("""
        top: beqz $t0, top
             bnez $t0, top
             b top
        """)
        assert program.fetch(TEXT_BASE).opcode.name == "beq"
        assert program.fetch(TEXT_BASE + 4).opcode.name == "bne"
        assert program.fetch(TEXT_BASE + 8).opcode.name == "beq"

    def test_mul_expands_to_two_instructions(self):
        program = assemble("mul $t0, $t1, $t2\nhalt")
        assert program.fetch(TEXT_BASE).opcode.name == "mult"
        assert program.fetch(TEXT_BASE + 4).opcode.name == "mflo"
        assert program.fetch(TEXT_BASE + 8).opcode.name == "halt"

    def test_rem_uses_mfhi(self):
        program = assemble("rem $t0, $t1, $t2")
        assert program.fetch(TEXT_BASE + 4).opcode.name == "mfhi"

    def test_three_operand_div(self):
        program = assemble("div $t0, $t1, $t2")
        assert program.fetch(TEXT_BASE).opcode.name == "div"
        assert program.fetch(TEXT_BASE + 4).opcode.name == "mflo"

    def test_two_operand_div_is_not_expanded(self):
        program = assemble("div $t1, $t2")
        assert program.num_instructions == 1


class TestDataDirectives:
    def test_word_layout(self):
        program = assemble("""
        .data
        vals: .word 1, 2, 0xFF
        """)
        assert program.data[DATA_BASE] == 1
        assert program.data[DATA_BASE + 4] == 2
        assert program.data[DATA_BASE + 8] == 0xFF

    def test_word_with_label_reference(self):
        program = assemble("""
        .data
        a: .word 7
        p: .word a
        """)
        addr = program.symbols["p"]
        value = sum(program.data.get(addr + i, 0) << (8 * i) for i in range(4))
        assert value == program.symbols["a"]

    def test_byte_half_space(self):
        program = assemble("""
        .data
        b: .byte 1, 2
        h: .half 0x1234
        s: .space 8
        end: .word 9
        """)
        assert program.symbols["h"] == DATA_BASE + 2
        assert program.symbols["s"] == DATA_BASE + 4
        assert program.symbols["end"] == DATA_BASE + 12

    def test_align(self):
        program = assemble("""
        .data
        b: .byte 1
        .align 2
        w: .word 5
        """)
        assert program.symbols["w"] == DATA_BASE + 4

    def test_asciiz(self):
        program = assemble("""
        .data
        msg: .asciiz "hi"
        """)
        assert program.data[DATA_BASE] == ord("h")
        assert program.data[DATA_BASE + 2] == 0

    def test_custom_section_origins(self):
        program = assemble("""
        .data 0x20000000
        v: .word 1
        .text 0x4000
        main: halt
        """)
        assert program.symbols["v"] == 0x20000000
        assert program.entry_point == 0x4000


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate $t0")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError, match="undefined symbol"):
            assemble("j nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("x: nop\nx: nop")

    def test_bad_operand_count(self):
        with pytest.raises(AssemblyError, match="bad operand count"):
            assemble("add $t0, $t1")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("add $t0, $t1, $qq")


class TestRoundTrip:
    def test_format_instruction_is_stable(self):
        source = """
        .data
        buf: .word 1
        .text
        main: lw $t0, 0($sp)
              add $t1, $t0, $t0
              sw $t1, 4($sp)
              beq $t1, $zero, main
              jal main
              jr $ra
              halt
        """
        program = assemble(source)
        for inst in program.instruction_list():
            text = format_instruction(inst)
            assert inst.opcode.name in text
