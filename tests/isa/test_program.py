"""Tests for the Program image container."""

import pytest

from repro.isa import INSTRUCTION_BYTES, TEXT_BASE, assemble
from repro.isa.program import Program


class TestProgram:
    def test_fetch_valid_and_invalid(self):
        program = assemble("main: nop\n halt")
        assert program.fetch(TEXT_BASE).opcode.name == "nop"
        assert program.fetch(TEXT_BASE + 0x1000) is None

    def test_instruction_list_sorted(self):
        program = assemble("main: nop\n nop\n halt")
        pcs = [inst.pc for inst in program.instruction_list()]
        assert pcs == sorted(pcs)

    def test_symbol_lookup(self):
        program = assemble("main: nop\nend: halt")
        assert program.symbol("end") == TEXT_BASE + INSTRUCTION_BYTES
        with pytest.raises(KeyError):
            program.symbol("missing")

    def test_end_pc(self):
        program = assemble("main: nop\n halt")
        assert program.end_pc() == TEXT_BASE + 2 * INSTRUCTION_BYTES

    def test_end_pc_empty(self):
        program = Program(entry_point=0x4000)
        assert program.end_pc() == 0x4000

    def test_num_instructions(self):
        assert assemble("main: nop\n nop\n halt").num_instructions == 3

    def test_source_retained(self):
        source = "main: halt"
        assert assemble(source).source == source
