"""Unit tests for opcode semantics and register parsing."""

import pytest

from repro.isa import opcodes as op
from repro.isa.opcodes import (
    OpClass,
    all_opcodes,
    div_hi_lo,
    lookup,
    mult_hi_lo,
    parse_register,
    s32,
    u32,
)


class TestWrapHelpers:
    def test_u32_wraps_negative(self):
        assert u32(-1) == 0xFFFFFFFF

    def test_u32_wraps_overflow(self):
        assert u32(0x1_0000_0005) == 5

    def test_s32_round_trip_negative(self):
        assert s32(0xFFFFFFFF) == -1

    def test_s32_positive_unchanged(self):
        assert s32(0x7FFFFFFF) == 0x7FFFFFFF

    def test_s32_min_value(self):
        assert s32(0x80000000) == -(2**31)


class TestAluSemantics:
    def _eval(self, name, a, b=0, imm=0):
        return lookup(name).eval_fn(u32(a), u32(b), imm)

    def test_add_wraps(self):
        assert self._eval("add", 0xFFFFFFFF, 1) == 0

    def test_sub(self):
        assert self._eval("sub", 5, 7) == u32(-2)

    def test_slt_signed(self):
        assert self._eval("slt", -1 & 0xFFFFFFFF, 1) == 1

    def test_sltu_unsigned(self):
        assert self._eval("sltu", -1 & 0xFFFFFFFF, 1) == 0

    def test_sra_sign_extends(self):
        assert self._eval("sra", 0x80000000, imm=4) == 0xF8000000

    def test_srl_zero_extends(self):
        assert self._eval("srl", 0x80000000, imm=4) == 0x08000000

    def test_sllv_uses_low_five_bits(self):
        assert self._eval("sllv", 1, 33) == 2

    def test_nor(self):
        assert self._eval("nor", 0, 0) == 0xFFFFFFFF

    def test_lui(self):
        assert self._eval("lui", 0, imm=0x1234) == 0x12340000

    def test_andi_ori_xori(self):
        assert self._eval("andi", 0xFF, imm=0x0F) == 0x0F
        assert self._eval("ori", 0xF0, imm=0x0F) == 0xFF
        assert self._eval("xori", 0xFF, imm=0x0F) == 0xF0


class TestMultDiv:
    def test_mult_hi_lo_positive(self):
        hi, lo = mult_hi_lo(0x10000, 0x10000)
        assert (hi, lo) == (1, 0)

    def test_mult_hi_lo_negative(self):
        hi, lo = mult_hi_lo(u32(-2), 3)
        assert s32(lo) == -6
        assert s32(hi) == -1  # sign extension of the product

    def test_div_quotient_truncates_toward_zero(self):
        hi, lo = div_hi_lo(u32(-7), 2)
        assert s32(lo) == -3
        assert s32(hi) == -1  # remainder keeps dividend sign

    def test_div_by_zero_is_defined(self):
        assert div_hi_lo(5, 0) == (0, 0)


class TestBranchSemantics:
    def _taken(self, name, a, b=0):
        return bool(lookup(name).eval_fn(u32(a), u32(b), 0))

    def test_beq_bne(self):
        assert self._taken("beq", 3, 3)
        assert not self._taken("beq", 3, 4)
        assert self._taken("bne", 3, 4)

    def test_signed_compares(self):
        assert self._taken("blt", -5, 3)
        assert self._taken("bge", 3, 3)
        assert self._taken("blez", 0)
        assert self._taken("bgtz", 1)
        assert self._taken("bltz", -1)
        assert self._taken("bgez", 0)
        assert not self._taken("bltz", 0)


class TestOpcodeTable:
    def test_all_opcodes_have_classes(self):
        for opcode in all_opcodes().values():
            assert isinstance(opcode.op_class, OpClass)

    def test_paper_latencies(self):
        """FU latencies match Table 1 of the paper."""
        assert lookup("add").latency == 1
        assert lookup("mult").latency == 3
        assert lookup("div").latency == 20
        assert lookup("div").issue_interval == 19
        assert lookup("lw").latency == 1

    def test_memory_flags(self):
        assert lookup("lw").is_load and lookup("lw").mem_bytes == 4
        assert lookup("sb").is_store and lookup("sb").mem_bytes == 1
        assert lookup("lbu").mem_signed is False

    def test_control_flags(self):
        assert lookup("beq").is_branch
        assert lookup("j").is_jump and not lookup("j").is_indirect
        assert lookup("jr").is_indirect
        assert lookup("jal").is_call

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup("bogus")


class TestRegisterParsing:
    @pytest.mark.parametrize("token,expected", [
        ("$t0", 8), ("t0", 8), ("$8", 8), ("$zero", 0), ("$sp", 29),
        ("$ra", 31), ("$hi", op.REG_HI), ("$lo", op.REG_LO), ("$r5", 5),
    ])
    def test_accepted_forms(self, token, expected):
        assert parse_register(token) == expected

    @pytest.mark.parametrize("token", ["$x9", "$32", "$-1", "bogus"])
    def test_rejected_forms(self, token):
        with pytest.raises(ValueError):
            parse_register(token)


class TestFormatEnum:
    def test_no_aliased_formats(self):
        """Enum members with equal values silently alias; every Format
        must be distinct (regression: RR2/RR and BRANCH0/JUMP)."""
        from repro.isa.opcodes import Format
        values = [member.value for member in Format]
        assert len(values) == len(set(values))
