"""Unit tests for decoded-instruction register semantics."""

import pytest

from repro.isa import REG_HI, REG_LO, REG_RA, assemble, lookup
from repro.isa.instruction import Instruction


def decode(source):
    program = assemble(source)
    return program.instruction_list()[0]


class TestSourceRegisters:
    @pytest.mark.parametrize("source,expected", [
        ("add $t0, $t1, $t2", (9, 10)),
        ("addi $t0, $t1, 4", (9,)),
        ("lui $t0, 4", ()),
        ("lw $t0, 0($t1)", (9,)),
        ("sw $t0, 0($t1)", (9, 8)),  # base, then data
        ("beq $t0, $t1, 0x1000", (8, 9)),
        ("blez $t0, 0x1000", (8,)),
        ("jr $t1", (9,)),
        ("mult $t0, $t1", (8, 9)),
        ("mfhi $t0", (REG_HI,)),
        ("mflo $t0", (REG_LO,)),
        ("nop", ()),
        ("j 0x1000", ()),
    ])
    def test_src_regs(self, source, expected):
        assert decode(source).src_regs == expected

    def test_zero_register_excluded(self):
        assert decode("add $t0, $zero, $zero").src_regs == ()


class TestDestRegisters:
    @pytest.mark.parametrize("source,expected", [
        ("add $t0, $t1, $t2", (8,)),
        ("lw $t0, 0($t1)", (8,)),
        ("sw $t0, 0($t1)", ()),
        ("beq $t0, $t1, 0x1000", ()),
        ("j 0x1000", ()),
        ("jal 0x1000", (REG_RA,)),
        ("jalr $t1", (REG_RA,)),
        ("mult $t0, $t1", (REG_HI, REG_LO)),
        ("div $t0, $t1", (REG_HI, REG_LO)),
        ("mfhi $t0", (8,)),
        ("nop", ()),
        ("halt", ()),
    ])
    def test_dest_regs(self, source, expected):
        assert decode(source).dest_regs == expected

    def test_write_to_zero_discarded(self):
        assert decode("add $zero, $t1, $t2").dest_regs == ()


class TestHelpers:
    def test_is_return(self):
        assert decode("jr $ra").is_return
        assert not decode("jr $t0").is_return
        assert not decode("jalr $ra").is_return

    def test_writes_value(self):
        assert decode("add $t0, $t1, $t2").writes_value
        assert not decode("sw $t0, 0($t1)").writes_value

    def test_next_pc(self):
        inst = decode("nop")
        assert inst.next_pc == inst.pc + 4

    def test_operand_values_alu(self):
        inst = decode("add $t0, $t1, $t2")
        regs = {9: 5, 10: 7}
        a, b = inst.operand_values(lambda r: regs.get(r, 0))
        assert (a, b) == (5, 7)

    def test_operand_values_store_data(self):
        inst = decode("sw $t0, 0($t1)")
        regs = {8: 42, 9: 0x1000}
        a, b = inst.operand_values(lambda r: regs.get(r, 0))
        assert (a, b) == (0x1000, 42)

    def test_operand_values_mfhi(self):
        inst = decode("mfhi $t0")
        a, b = inst.operand_values(lambda r: 99 if r == REG_HI else 0)
        assert (a, b) == (99, 0)

    def test_str_contains_pc_and_mnemonic(self):
        text = str(decode("add $t0, $t1, $t2"))
        assert "0x1000" in text and "add" in text
