"""Acceptance tests for sweep run manifests and sweep telemetry.

The provenance layer must satisfy two contracts at once:

* every simulated pair of a ``jobs=2`` sweep gets a valid run manifest
  whose content digests (config, program, workload source) match the
  cache key of the result it describes, and
* nothing about manifests or telemetry may violate the determinism
  contract — the top-level result cache stays exactly as a
  manifest-less sweep would leave it, and capturing telemetry never
  invalidates cached results.
"""

from repro.experiments import ExperimentRunner
from repro.experiments.configs import BASE, IR_EARLY
from repro.telemetry import config_digest, load_manifests, load_timeseries
from repro.workloads import get_workload

INSTRUCTIONS = 1_000
MAX_CYCLES = 60_000

PAIRS = [("m88ksim", BASE), ("m88ksim", IR_EARLY), ("compress", BASE)]


def make_runner(cache_dir, **overrides):
    settings = {"max_instructions": INSTRUCTIONS, "max_cycles": MAX_CYCLES,
                "cache_dir": cache_dir, "quiet": True}
    settings.update(overrides)
    return ExperimentRunner(**settings)


def run_manifests(cache_dir):
    return [m for m in load_manifests(cache_dir / "manifests")
            if m["kind"] == "run"]


def sweep_manifests(cache_dir):
    return [m for m in load_manifests(cache_dir / "manifests")
            if m["kind"] == "sweep"]


class TestRunManifests:
    def test_parallel_sweep_writes_valid_manifest_per_run(self, tmp_path):
        runner = make_runner(tmp_path, jobs=2)
        results = runner.run_many(PAIRS)
        manifests = {m["cache_key"]: m for m in run_manifests(tmp_path)}
        assert len(manifests) == len(PAIRS)
        for workload, config in PAIRS:
            key = runner._key(get_workload(workload), config)
            manifest = manifests[key]
            # The content digests must describe exactly what the cache
            # key addresses.
            assert manifest["config_digest"] == config_digest(config)
            assert manifest["program_digest"] == \
                runner._program(get_workload(workload)).canonical_digest()
            assert key.endswith(manifest["source_sha12"])
            assert manifest["workload"] == workload
            assert manifest["config_name"] == config.name
            assert manifest["max_instructions"] == INSTRUCTIONS
            assert manifest["cache_hit"] is False
            assert manifest["checkpoint"] in ("captured", "disk", "memo")
            stats = results[(workload, config.name)]
            assert manifest["stats"]["committed"] == stats.committed
            assert manifest["stats"]["cycles"] == stats.cycles
            assert (tmp_path / f"{key}.json").is_file()

    def test_manifests_stay_out_of_the_result_cache(self, tmp_path):
        """The determinism contract covers top-level *.json bytes; the
        host/wallclock-bearing manifests must live below it."""
        plain_dir = tmp_path / "plain"
        manifest_dir = tmp_path / "with"
        make_runner(plain_dir, jobs=1, manifests=False).run_many(PAIRS)
        make_runner(manifest_dir, jobs=2).run_many(PAIRS)
        assert sorted(p.name for p in plain_dir.glob("*.json")) \
            == sorted(p.name for p in manifest_dir.glob("*.json"))
        assert not (plain_dir / "manifests").exists()

    def test_cached_runs_backfilled_as_cache_hits(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        for manifest in run_manifests(tmp_path):
            (tmp_path / "manifests"
             / f"{manifest['cache_key']}.json").unlink()
        # Fresh runner, warm cache: nothing simulates, but provenance is
        # reconstructed for the cache hits.
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        manifests = run_manifests(tmp_path)
        assert len(manifests) == len(PAIRS)
        assert all(m["cache_hit"] is True for m in manifests)
        assert all(m["checkpoint"] == "cached" for m in manifests)
        assert all(m["wallclock_seconds"] is None for m in manifests)

    def test_existing_manifests_not_rewritten_on_cache_hit(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        stamps = {m["cache_key"]: m["created_unix"]
                  for m in run_manifests(tmp_path)}
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        assert {m["cache_key"]: m["created_unix"]
                for m in run_manifests(tmp_path)} == stamps

    def test_no_manifests_opt_out(self, tmp_path):
        make_runner(tmp_path, jobs=2, manifests=False).run_many(PAIRS)
        assert not (tmp_path / "manifests").exists()


class TestSweepManifests:
    def test_sweep_manifest_summarises_the_fanout(self, tmp_path):
        runner = make_runner(tmp_path, jobs=2)
        runner.run_many(PAIRS)
        [sweep] = sweep_manifests(tmp_path)
        keys = {runner._key(get_workload(w), c) for w, c in PAIRS}
        assert set(sweep["runs"]) == keys
        assert sweep["total_runs"] == len(PAIRS)
        assert sweep["simulated"] == len(PAIRS)
        assert sweep["cached"] == 0
        assert sweep["jobs"] == 2
        assert sweep["wallclock_seconds"] > 0

    def test_all_cached_sweep_records_zero_simulated(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        [sweep] = sweep_manifests(tmp_path)  # same run set, same digest
        assert sweep["simulated"] == 0
        assert sweep["cached"] == len(PAIRS)


class TestSweepTelemetry:
    def test_telemetry_captured_per_simulated_run(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        runner = make_runner(tmp_path, jobs=2, telemetry_dir=telemetry,
                             telemetry_interval=200)
        results = runner.run_many(PAIRS)
        for workload, config in PAIRS:
            key = runner._key(get_workload(workload), config)
            series = load_timeseries(telemetry / f"{key}.jsonl")
            assert series.context["cache_key"] == key
            assert series.context["workload"] == workload
            assert series.context["config"] == config.name
            assert sum(series.column("committed")) \
                == results[(workload, config.name)].committed

    def test_telemetry_capture_does_not_invalidate_cache(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        stamps = {p.name: p.stat().st_mtime_ns
                  for p in tmp_path.glob("*.json")}
        telemetry = tmp_path / "telemetry"
        make_runner(tmp_path, jobs=2,
                    telemetry_dir=telemetry).run_many(PAIRS)
        # Cache keys are unchanged by telemetry: everything was already
        # cached, so nothing re-simulated and no time-series appeared.
        # (Sweep observability still records the cache-served cells:
        # only spans/progress files may exist, never interval series.)
        assert {p.name: p.stat().st_mtime_ns
                for p in tmp_path.glob("*.json")} == stamps
        assert {p.name for p in telemetry.iterdir()} \
            <= {"spans.jsonl", "progress.jsonl"}

    def test_telemetry_off_by_default(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        assert not (tmp_path / "telemetry").exists()
