"""Integration tests for the experiment runner, caching, and reports.

These run tiny windows (2K instructions) on a subset of workloads so the
whole file stays fast while covering every experiment module end to end.
"""

import json

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.cli import EXPERIMENTS, build_parser, main
from repro.experiments.configs import BASE, IR_EARLY, vp_magic
from repro.metrics.report import Report
from repro.workloads import workload_names


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    cache = tmp_path_factory.mktemp("results")
    return ExperimentRunner(max_instructions=2_000, max_cycles=80_000,
                            cache_dir=cache, quiet=True)


class TestRunnerCaching:
    def test_run_produces_stats(self, runner):
        stats = runner.run("m88ksim", BASE)
        assert stats.committed > 0
        assert stats.workload_name == "m88ksim"

    def test_disk_cache_round_trip(self, runner):
        first = runner.run("m88ksim", BASE)
        runner._memory_cache.clear()
        second = runner.run("m88ksim", BASE)
        assert first.cycles == second.cycles

    def test_cache_files_written(self, runner):
        runner.run("m88ksim", BASE)
        files = list(runner.cache_dir.glob("*.json"))
        assert files
        payload = json.loads(files[0].read_text())
        assert "cycles" in payload

    def test_distinct_configs_distinct_results(self, runner):
        base = runner.run("m88ksim", BASE)
        reuse = runner.run("m88ksim", IR_EARLY)
        assert reuse.config_name != base.config_name

    def test_redundancy_run(self, runner):
        analyzer = runner.run_redundancy("m88ksim", warmup=2_000,
                                         window=5_000)
        assert analyzer.classifier.counts.producing > 0


ALL_MODULES = [table2, table3, table4, table5, table6,
               figure3, figure5, figure8, figure9, figure10]


class TestExperimentModules:
    @pytest.mark.parametrize("module", ALL_MODULES,
                             ids=lambda m: m.__name__.split(".")[-1])
    def test_module_produces_full_report(self, runner, module):
        report = module.run(runner)
        assert isinstance(report, Report)
        assert len(report.rows) >= len(workload_names())
        text = report.render()
        for name in workload_names():
            assert name in text

    def test_figure4_both_parts(self, runner):
        reports = figure4.run_both(runner)
        assert len(reports) == 2
        assert "0-cycle" in reports[0].title
        assert "1-cycle" in reports[1].title

    def test_figure6_has_hm_row(self, runner):
        report = figure6.run(runner, 0)
        assert report.rows[-1][0] == "HM"

    def test_figure7_omits_ir_column(self, runner):
        report = figure7.run(runner, 0)
        assert "reuse-n+d" not in report.headers

    def test_speedups_are_positive(self, runner):
        report = figure6.run(runner, 0)
        for row in report.rows:
            for value in row[1:]:
                assert value > 0


class TestCli:
    def test_parser_accepts_all_experiments(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_main_runs_figure8(self, tmp_path, capsys, monkeypatch):
        # figure8 uses only the functional simulator: fast enough for CI
        monkeypatch.setattr(
            "repro.experiments.cli.default_runner",
            lambda **kw: ExperimentRunner(max_instructions=1_000,
                                          cache_dir=tmp_path, quiet=True))
        assert main(["figure8"]) == 0
        output = capsys.readouterr().out
        assert "Figure 8" in output


class TestAblations:
    def test_hybrid_report(self, runner):
        from repro.experiments import ablations
        report = ablations.hybrid(runner, workloads=["m88ksim"])
        assert report.rows[-1][0] == "HM"
        assert "hybrid speedup" in report.headers

    def test_storage_sweep(self, runner):
        from repro.experiments import ablations
        report = ablations.storage(runner, workloads=["m88ksim"],
                                   scales=(1, 16))
        assert len(report.rows) == 1
        for value in report.rows[0][1:]:
            assert value > 0

    def test_instances_sweep(self, runner):
        from repro.experiments import ablations
        report = ablations.instances(runner, workloads=["m88ksim"],
                                     ways=(1, 4))
        assert len(report.rows) == 1

    def test_cli_knows_ablations(self):
        from repro.experiments.cli import EXPERIMENTS
        assert "ablations" in EXPERIMENTS

    def test_upper_bound_report(self, runner):
        from repro.experiments import ablations
        report = ablations.upper_bound(runner, workloads=["m88ksim"])
        magic, perfect = report.rows[0][1], report.rows[0][2]
        assert perfect >= magic * 0.98  # oracle bounds realistic schemes

    def test_confidence_sweep(self, runner):
        from repro.experiments import ablations
        report = ablations.confidence(runner, workloads=["m88ksim"],
                                      thresholds=(1, 3))
        assert len(report.rows) == 1

    def test_sensitivity_report(self, runner):
        from repro.experiments import sensitivity
        report = sensitivity.run(runner, windows=(1_000, 2_000),
                                 workloads=["m88ksim"])
        assert len(report.rows) == 1
        drift = report.rows[0][-1]
        assert drift >= 0.0

    def test_sensitivity_in_cli(self):
        from repro.experiments.cli import EXPERIMENTS
        assert "sensitivity" in EXPERIMENTS

    def test_breakdown_experiment(self, runner):
        from repro.experiments import breakdown_experiment
        report = breakdown_experiment.run(runner, workloads=["m88ksim"])
        assert len(report.rows) == 1
        assert "branch IR/VP" in report.headers

    def test_breakdown_in_cli(self):
        from repro.experiments.cli import EXPERIMENTS
        assert "breakdown" in EXPERIMENTS
