"""Qualitative paper-shape assertions on small windows.

These encode the paper's *findings* (not its absolute numbers) as tests,
on a reduced window so the suite stays tractable.  Thresholds are
deliberately loose: the goal is to catch regressions that flip a
conclusion, not to pin noisy values.
"""

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.configs import (
    BASE,
    IR_EARLY,
    IR_LATE,
    vp_lvp,
    vp_magic,
)
from repro.metrics.stats import harmonic_mean, speedup
from repro.uarch.config import BranchPolicy, ReexecPolicy
from repro.workloads import workload_names

WORKLOADS = ["go", "m88ksim", "perl", "vortex", "compress"]


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(max_instructions=4_000, max_cycles=200_000,
                            cache_dir=tmp_path_factory.mktemp("shapes"),
                            quiet=True)


def _speedups(runner, config):
    return [speedup(runner.run(name, config), runner.run(name, BASE))
            for name in WORKLOADS]


class TestHeadlineFindings:
    def test_both_techniques_help_at_the_mean(self, runner):
        assert harmonic_mean(_speedups(runner, vp_magic())) > 1.05
        assert harmonic_mean(_speedups(runner, IR_EARLY)) > 1.05

    def test_early_validation_beats_late(self, runner):
        """Figure 3's finding, at the harmonic mean."""
        early = harmonic_mean(_speedups(runner, IR_EARLY))
        late = harmonic_mean(_speedups(runner, IR_LATE))
        assert early > late

    def test_magic_beats_lvp(self, runner):
        """Table 3/Figures 6-7: the richer predictor wins overall."""
        magic = harmonic_mean(_speedups(runner, vp_magic()))
        lvp = harmonic_mean(_speedups(runner, vp_lvp()))
        assert magic >= lvp

    def test_lvp_prefers_nsb(self, runner):
        """Figure 7: with low accuracy, delaying branch resolution wins."""
        sb = harmonic_mean(_speedups(runner, vp_lvp()))
        nsb = harmonic_mean(_speedups(
            runner, vp_lvp(branches=BranchPolicy.NON_SPECULATIVE)))
        assert nsb >= sb - 0.02

    def test_me_nme_is_a_wash(self, runner):
        """Table 6's implication: restricting re-execution changes little."""
        me = harmonic_mean(_speedups(runner, vp_magic(ReexecPolicy.MULTIPLE)))
        nme = harmonic_mean(_speedups(runner, vp_magic(ReexecPolicy.SINGLE)))
        assert abs(me - nme) < 0.05


class TestMechanismFindings:
    def test_sb_inflates_squashes_for_lvp(self, runner):
        """Table 4: spurious squashes, much worse for VP_LVP."""
        inflations = []
        for name in WORKLOADS:
            base = runner.run(name, BASE).branch_squashes or 1
            lvp = runner.run(name, vp_lvp()).branch_squashes
            inflations.append(lvp / base)
        assert max(inflations) > 1.2

    def test_ir_recovers_squashed_work(self, runner):
        """Table 5: recovery happens on every benchmark with squashes."""
        for name in WORKLOADS:
            stats = runner.run(name, IR_EARLY)
            if stats.squashed_executed > 50:
                assert stats.squashed_recovered > 0, name

    def test_ir_resolution_latency_below_base(self, runner):
        """Figure 4: reused branches cut resolution latency."""
        better = 0
        for name in WORKLOADS:
            base = runner.run(name, BASE).mean_branch_resolution_latency
            reuse = runner.run(name, IR_EARLY).mean_branch_resolution_latency
            better += reuse <= base
        assert better >= len(WORKLOADS) - 1

    def test_compress_addr_over_result(self, runner):
        """Table 3's compress signature."""
        stats = runner.run("compress", IR_EARLY)
        assert stats.ir_addr_rate > stats.ir_result_rate

    def test_vp_executes_more_than_ir(self, runner):
        """Section 3.2: VP re-executes, IR removes executions."""
        for name in WORKLOADS:
            vp = runner.run(name, vp_magic())
            ir = runner.run(name, IR_EARLY)
            assert vp.execution_attempts > ir.execution_attempts, name
