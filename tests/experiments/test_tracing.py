"""Acceptance tests for sweep observability (spans + progress).

The observatory must satisfy two contracts at once:

* a traced ``jobs=2`` sweep covers every cell with a properly nested
  sweep -> job -> phase span tree whose ids round-trip through the run
  manifests, plus a progress stream a tailing ``repro-top`` can render;
* observation changes nothing — the result cache and ``SimStats`` of a
  traced sweep are byte-identical to an untraced one, span identity
  lines are byte-stable across runs, and an untraced runner writes no
  span or progress files at all.
"""

from repro.experiments import ExperimentRunner
from repro.experiments.configs import BASE, IR_EARLY
from repro.telemetry import load_manifests
from repro.telemetry.progress import (
    PROGRESS_FILE,
    SweepSnapshot,
    read_progress,
    render_snapshot,
)
from repro.telemetry.spans import (
    identity_lines,
    load_spans,
    span_id,
    sweep_digest,
)
from repro.workloads import get_workload

INSTRUCTIONS = 1_000
MAX_CYCLES = 60_000

PAIRS = [("m88ksim", BASE), ("m88ksim", IR_EARLY), ("compress", BASE)]


def make_runner(cache_dir, **overrides):
    settings = {"max_instructions": INSTRUCTIONS, "max_cycles": MAX_CYCLES,
                "cache_dir": cache_dir, "quiet": True,
                "telemetry_dir": cache_dir / "telemetry"}
    settings.update(overrides)
    return ExperimentRunner(**settings)


def run_keys(runner):
    return {runner._key(get_workload(w), c): (w, c.name)
            for w, c in PAIRS}


def spans_by_kind(records):
    by_kind = {"sweep": [], "job": [], "phase": []}
    for record in records:
        by_kind[record["kind"]].append(record)
    return by_kind


class TestSpanTree:
    def test_parallel_sweep_covers_every_cell(self, tmp_path):
        runner = make_runner(tmp_path, jobs=2)
        runner.run_many(PAIRS)
        records = load_spans(tmp_path / "telemetry" / "spans.jsonl")
        by_kind = spans_by_kind(records)
        keys = run_keys(runner)

        [sweep] = by_kind["sweep"]
        assert sweep["key"] == sweep_digest(list(keys))
        assert sweep["span"] == sweep["trace"] \
            == span_id("sweep", sweep["key"])
        assert sweep["attrs"]["total"] == len(PAIRS)
        assert sweep["attrs"]["simulated"] == len(PAIRS)
        assert sweep["duration_s"] > 0

        assert {j["key"] for j in by_kind["job"]} == set(keys)
        for job in by_kind["job"]:
            assert job["span"] == span_id("job", job["key"])
            assert job["parent"] == sweep["span"]
            assert job["trace"] == sweep["trace"]
            assert job["attrs"]["cache_hit"] is False
            assert job["attrs"]["committed"] >= INSTRUCTIONS
            # Resource accounting rides on simulated job spans.
            assert job["attrs"]["rss_peak_kb"] > 0
            assert job["attrs"]["cpu_user_s"] >= 0

        for key in keys:
            names = sorted(p["name"] for p in by_kind["phase"]
                           if p["key"] == key)
            assert names == ["cache-write", "decode", "simulate",
                             "warm-restore"]
        for phase in by_kind["phase"]:
            assert phase["parent"] == span_id("job", phase["key"])
            assert phase["trace"] == sweep["trace"]

    def test_cache_served_sweep_emits_hit_points(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        hit_dir = tmp_path / "hit"
        runner = make_runner(tmp_path, jobs=2,
                             telemetry_dir=hit_dir).run_many(PAIRS)
        records = load_spans(hit_dir / "spans.jsonl")
        by_kind = spans_by_kind(records)
        assert by_kind["phase"] == []  # nothing simulated
        assert by_kind["sweep"][0]["attrs"]["simulated"] == 0
        assert len(by_kind["job"]) == len(PAIRS)
        for job in by_kind["job"]:
            assert job["attrs"]["cache_hit"] is True
            assert job["duration_s"] == 0.0

    def test_manifest_span_ids_round_trip(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        records = load_spans(tmp_path / "telemetry" / "spans.jsonl")
        spans = {r["span"] for r in records}
        manifests = load_manifests(tmp_path / "manifests")
        assert manifests
        for manifest in manifests:
            # Every manifest names the span of the work it describes,
            # derived from content — so it appears in the span file.
            assert manifest["span_id"] in spans
            if manifest["kind"] == "run":
                assert manifest["span_id"] == span_id(
                    "job", manifest["cache_key"])
            else:
                assert manifest["span_id"] == span_id(
                    "sweep", manifest["sweep_digest"])


class TestProgressStream:
    def test_traced_sweep_streams_progress(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        records = read_progress(tmp_path / "telemetry" / PROGRESS_FILE)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_done"
        assert kinds.count("job_start") == len(PAIRS)
        assert kinds.count("job_done") == len(PAIRS)
        snap = SweepSnapshot.from_records(records)
        assert snap.done == snap.total == len(PAIRS)
        assert snap.finished is not None
        assert f"{len(PAIRS)}/{len(PAIRS)} cells" in \
            render_snapshot(snap)

    def test_repro_top_once_exits_zero(self, tmp_path, capsys):
        from repro.telemetry.progress import main as top_main
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        assert top_main([str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert f"{len(PAIRS)}/{len(PAIRS)} cells" in out

    def test_report_renders_phase_breakdown(self, tmp_path, capsys):
        from repro.metrics.report import telemetry_dashboard
        make_runner(tmp_path, jobs=2).run_many(PAIRS)
        reports = telemetry_dashboard(tmp_path)
        rendered = "\n".join(r.render() for r in reports)
        assert "Where did the time go" in rendered
        assert "simulate" in rendered
        assert "Per-cell resources" in rendered


def cache_bytes(cache_dir):
    return {p.name: p.read_bytes()
            for p in cache_dir.glob("*.json")}


class TestObservationOnly:
    def test_traced_cache_bytes_identical_to_untraced(self, tmp_path):
        traced_dir = tmp_path / "traced"
        plain_dir = tmp_path / "plain"
        traced = make_runner(traced_dir, jobs=2).run_many(PAIRS)
        plain = make_runner(plain_dir, jobs=2, telemetry_dir=None,
                            manifests=False).run_many(PAIRS)
        assert cache_bytes(traced_dir) == cache_bytes(plain_dir)
        for pair_key, stats in traced.items():
            assert stats.as_dict() == plain[pair_key].as_dict()

    def test_identity_lines_byte_stable_across_runs(self, tmp_path):
        texts = []
        for run in ("a", "b"):
            cache = tmp_path / run
            make_runner(cache, jobs=2).run_many(PAIRS)
            spans = load_spans(cache / "telemetry" / "spans.jsonl")
            texts.append(identity_lines(spans))
        assert texts[0] == texts[1]

    def test_tracing_off_writes_nothing(self, tmp_path):
        runner = make_runner(tmp_path, jobs=2, telemetry_dir=None)
        assert runner.tracing is False
        runner.run_many(PAIRS)
        assert not list(tmp_path.rglob("spans.jsonl"))
        assert not list(tmp_path.rglob(PROGRESS_FILE))

    def test_tracing_opt_out_with_telemetry_dir(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        runner = make_runner(tmp_path, jobs=2, tracing=False,
                             telemetry_interval=200)
        assert runner.tracing is False
        runner.run_many(PAIRS)
        # Interval series still captured; no spans or progress.
        assert list(telemetry.glob("*.jsonl"))
        assert not (telemetry / "spans.jsonl").exists()
        assert not (telemetry / PROGRESS_FILE).exists()
