"""The determinism contract of the parallel experiment fan-out.

Parallelizing an execution-driven simulator is only safe if runs are
bit-identical regardless of scheduling.  These tests pin that contract:

* a ``jobs=N`` sweep leaves a result cache **byte-identical** to a
  ``jobs=1`` sweep (same file names, same bytes),
* the same (workload, config) pair simulated in fresh interpreter
  processes — with different hash seeds — produces identical counters
  (no hidden global state, no dict-order dependence),
* cache entries survive hostile conditions: malformed/truncated JSON is
  discarded and re-simulated, concurrent workers never double-run a key.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.configs import BASE, IR_EARLY, vp_magic
from repro.experiments.locking import FileLock
from repro.metrics.stats import SimStats
from repro.workloads import get_workload, workload_names

INSTRUCTIONS = 1_000
MAX_CYCLES = 60_000

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def make_runner(cache_dir, **overrides):
    settings = {"max_instructions": INSTRUCTIONS, "max_cycles": MAX_CYCLES,
                "cache_dir": cache_dir, "quiet": True}
    settings.update(overrides)
    return ExperimentRunner(**settings)


def sweep_pairs():
    return [(name, config) for name in workload_names()
            for config in (BASE, IR_EARLY)]


class TestSerialParallelEquivalence:
    """The acceptance bar: jobs=N is indistinguishable from jobs=1."""

    def test_parallel_cache_byte_identical_to_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = make_runner(serial_dir, jobs=1).run_many(sweep_pairs())
        parallel = make_runner(parallel_dir, jobs=3).run_many(sweep_pairs())

        serial_files = sorted(p.name for p in serial_dir.glob("*.json"))
        parallel_files = sorted(p.name for p in parallel_dir.glob("*.json"))
        assert serial_files == parallel_files
        assert serial_files  # the sweep actually produced entries
        for name in serial_files:
            assert (serial_dir / name).read_bytes() \
                == (parallel_dir / name).read_bytes(), \
                f"cache entry {name} differs between serial and parallel"

        assert set(serial) == set(parallel)
        for key in serial:
            diff = serial[key].diff(parallel[key])
            assert not diff, f"{key} diverged: {diff}"

    def test_run_many_returns_every_pair(self, tmp_path):
        pairs = sweep_pairs()
        results = make_runner(tmp_path, jobs=2).run_many(pairs)
        assert set(results) == {(name, config.name)
                                for name, config in pairs}
        for stats in results.values():
            assert stats.committed > 0

    def test_run_many_deduplicates_pairs(self, tmp_path):
        runner = make_runner(tmp_path, jobs=2)
        duplicated = [("m88ksim", BASE)] * 5 + [("m88ksim", IR_EARLY)]
        results = runner.run_many(duplicated)
        assert set(results) == {("m88ksim", "base"),
                                ("m88ksim", "reuse-n+d")}

    def test_cached_pairs_never_rerun(self, tmp_path):
        runner = make_runner(tmp_path, jobs=2)
        runner.run_many(sweep_pairs())
        stamps = {p.name: p.stat().st_mtime_ns
                  for p in tmp_path.glob("*.json")}
        fresh = make_runner(tmp_path, jobs=2)  # cold memory cache
        fresh.run_many(sweep_pairs())
        assert {p.name: p.stat().st_mtime_ns
                for p in tmp_path.glob("*.json")} == stamps

    def test_run_workloads_parallel_matches_serial(self, tmp_path):
        serial = make_runner(tmp_path / "a", jobs=1).run_workloads(
            BASE, workloads=["go", "compress"])
        parallel = make_runner(tmp_path / "b").run_workloads(
            BASE, workloads=["go", "compress"], jobs=2)
        assert set(serial) == set(parallel) == {"go", "compress"}
        for name in serial:
            assert serial[name].same_counters(parallel[name])

    def test_spawn_start_method(self, tmp_path):
        """The pool initializer must work under spawn too (fresh
        interpreters, nothing inherited)."""
        runner = make_runner(tmp_path, jobs=2, mp_start_method="spawn",
                             max_instructions=500)
        results = runner.run_many([("m88ksim", BASE), ("go", BASE)])
        assert all(stats.committed > 0 for stats in results.values())

    def test_memory_cache_adopted_from_workers(self, tmp_path):
        runner = make_runner(tmp_path, jobs=2)
        results = runner.run_many([("go", BASE), ("go", IR_EARLY)])
        # A follow-up run() must hit the memory cache, not re-simulate:
        # the instances should be the very objects run_many stored.
        assert runner.run("go", BASE) is results[("go", "base")]

    def test_no_cache_dir_still_parallelizes(self):
        runner = make_runner(None, jobs=2)
        results = runner.run_many([("m88ksim", BASE), ("m88ksim", IR_EARLY)])
        assert len(results) == 2
        for stats in results.values():
            assert stats.committed > 0


class TestCheckpointStoreConcurrency:
    """The warm-state checkpoint store is a pure optimisation under
    parallelism: a ``jobs=N`` sweep starting from an *empty* shared
    store must leave a results/ cache byte-identical to the serial
    run's, and the captured ``.warm`` files themselves must be
    byte-identical regardless of which worker won the capture race."""

    def _warm_files(self, cache_dir):
        return sorted((cache_dir / "checkpoints").glob("*.warm"))

    def test_parallel_sweep_from_empty_store_matches_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        make_runner(serial_dir, jobs=1).run_many(sweep_pairs())
        make_runner(parallel_dir, jobs=4).run_many(sweep_pairs())

        serial_files = sorted(p.name for p in serial_dir.glob("*.json"))
        assert serial_files \
            == sorted(p.name for p in parallel_dir.glob("*.json"))
        assert serial_files
        for name in serial_files:
            assert (serial_dir / name).read_bytes() \
                == (parallel_dir / name).read_bytes(), \
                f"cache entry {name} differs between serial and parallel"

        serial_warm = self._warm_files(serial_dir)
        parallel_warm = self._warm_files(parallel_dir)
        assert [p.name for p in serial_warm] \
            == [p.name for p in parallel_warm]
        assert serial_warm  # the sweep actually captured warm states
        for ours, theirs in zip(serial_warm, parallel_warm):
            assert ours.read_bytes() == theirs.read_bytes(), \
                f"checkpoint {ours.name} differs between serial and parallel"

    def test_checkpoints_disabled_produces_identical_cache(self, tmp_path):
        warm = make_runner(tmp_path / "warm", jobs=1).run_many(sweep_pairs())
        cold = make_runner(tmp_path / "cold", jobs=1,
                           use_checkpoints=False).run_many(sweep_pairs())
        assert not self._warm_files(tmp_path / "cold")
        assert set(warm) == set(cold)
        for key in warm:
            diff = warm[key].diff(cold[key])
            assert not diff, f"{key} diverged with checkpoints off: {diff}"

    def test_populated_store_is_reused_not_rewritten(self, tmp_path):
        make_runner(tmp_path, jobs=2).run_many(sweep_pairs())
        stamps = {p.name: p.stat().st_mtime_ns
                  for p in self._warm_files(tmp_path)}
        assert stamps
        # Fresh runner + empty result cache: the simulations rerun, but
        # every warm-up must come from the store.
        for entry in tmp_path.glob("*.json"):
            entry.unlink()
        make_runner(tmp_path, jobs=2).run_many(sweep_pairs())
        assert {p.name: p.stat().st_mtime_ns
                for p in self._warm_files(tmp_path)} == stamps


DETERMINISM_SCRIPT = """\
import sys
from repro.experiments import ExperimentRunner
from repro.experiments.configs import IR_EARLY
runner = ExperimentRunner(max_instructions=1000, max_cycles=60000,
                          quiet=True, jobs=1)
stats = runner.run("compress", IR_EARLY)
sys.stdout.write(stats.canonical_json())
"""


class TestFreshProcessDeterminism:
    """Satellite: the same pair simulated twice in fresh interpreters is
    identical — guarding against unseeded ``random``, dict-order
    dependence and any other hidden global state."""

    def _simulate_in_fresh_process(self, hash_seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep \
            + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = hash_seed
        proc = subprocess.run(
            [sys.executable, "-c", DETERMINISM_SCRIPT],
            capture_output=True, text=True, env=env, timeout=300)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_fresh_processes_agree_across_hash_seeds(self):
        first = self._simulate_in_fresh_process("0")
        second = self._simulate_in_fresh_process("42")
        assert first == second
        # and the payload is the canonical cache serialization
        stats = SimStats.from_dict(json.loads(first))
        assert stats.canonical_json() == first


class TestCacheIntegrity:
    """Satellite: a damaged cache entry is re-simulated, not fatal."""

    @pytest.fixture
    def runner(self, tmp_path):
        return make_runner(tmp_path, jobs=1)

    def _cache_path(self, runner, workload, config) -> Path:
        key = runner._key(get_workload(workload), config)
        return runner.cache_dir / f"{key}.json"

    @pytest.mark.parametrize("damage", [
        b"", b"{", b"[1, 2, 3]", b'"not a dict"', b"\xff\xfe garbage",
    ], ids=["empty", "truncated", "list", "string", "binary"])
    def test_malformed_cache_entry_is_resimulated(self, runner, damage):
        path = self._cache_path(runner, "m88ksim", BASE)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(damage)
        stats = runner.run("m88ksim", BASE)
        assert stats.committed > 0
        # the entry was healed on disk
        healed = json.loads(path.read_text())
        assert healed["committed"] == stats.committed

    def test_truncating_real_entry_recovers_same_stats(self, runner):
        original = runner.run("m88ksim", BASE)
        path = self._cache_path(runner, "m88ksim", BASE)
        payload = path.read_bytes()
        path.write_bytes(payload[:len(payload) // 2])
        runner._memory_cache.clear()
        recovered = runner.run("m88ksim", BASE)
        assert recovered.same_counters(original)
        assert path.read_bytes() == payload

    def test_stats_survive_canonical_round_trip(self, runner):
        stats = runner.run("go", vp_magic())
        clone = SimStats.from_dict(json.loads(stats.canonical_json()))
        assert clone.same_counters(stats)
        assert clone.exec_count_histogram == stats.exec_count_histogram
        # histogram keys must come back as ints, not JSON strings
        assert all(isinstance(k, int)
                   for k in clone.exec_count_histogram)


class TestFileLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = FileLock(tmp_path / "k.lock")
        assert not lock.held
        with lock:
            assert lock.held
        assert not lock.held
        with lock:  # reacquirable after release
            assert lock.held

    def test_lock_creates_parent_directory(self, tmp_path):
        lock = FileLock(tmp_path / "deep" / "nested" / "k.lock")
        with lock:
            assert lock.path.exists()

    def test_concurrent_processes_serialize(self, tmp_path):
        """Two processes bump a counter file under the lock 25 times
        each; no increment may be lost."""
        script = f"""\
import sys
sys.path.insert(0, {SRC_DIR!r})
from pathlib import Path
from repro.experiments.locking import FileLock
counter = Path({str(tmp_path / "counter")!r})
for _ in range(25):
    with FileLock({str(tmp_path / "counter.lock")!r}):
        value = int(counter.read_text()) if counter.exists() else 0
        counter.write_text(str(value + 1))
"""
        procs = [subprocess.Popen([sys.executable, "-c", script])
                 for _ in range(2)]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        assert (tmp_path / "counter").read_text() == "50"
