"""Unit tests for the S_{n+d} reuse engine's test/insert logic.

The engine is exercised through a small core run (to obtain genuine
InflightOps) plus direct calls on the engine state.
"""

import dataclasses

from repro.isa import assemble
from repro.metrics.stats import SimStats
from repro.reuse.scheme import ReuseDecision, ReuseEngine
from repro.uarch.config import IRConfig, base_config, ir_config
from repro.uarch.core import OutOfOrderCore


def committed_ops(source, config=None, max_cycles=50_000):
    """Run a program and capture the committed InflightOps in order."""
    config = dataclasses.replace(config or ir_config(),
                                 verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    ops = []
    core.on_commit = lambda op, cycle: ops.append(op)
    core.run(max_cycles=max_cycles)
    return core, ops


class TestEligibility:
    def test_eligible_classes(self):
        _, ops = committed_ops("""
        main: add $t0, $t1, $t2
              lw $t3, 0($t0)
              beq $t0, $t3, skip
        skip: j next
        next: nop
              halt
        """, config=base_config())
        by_name = {op.inst.opcode.name: op for op in ops}
        assert ReuseEngine.eligible(by_name["add"])
        assert ReuseEngine.eligible(by_name["lw"])
        assert ReuseEngine.eligible(by_name["beq"])
        assert not ReuseEngine.eligible(by_name["j"])
        assert not ReuseEngine.eligible(by_name["nop"])
        assert not ReuseEngine.eligible(by_name["halt"])


class TestOperandSignature:
    def test_alu_signature_uses_all_sources(self):
        _, ops = committed_ops("""
        main: li $t1, 5
              li $t2, 7
              add $t0, $t1, $t2
              halt
        """, config=base_config())
        engine = ReuseEngine(IRConfig(enabled=True), SimStats())
        add_op = next(op for op in ops if op.inst.opcode.name == "add")
        assert engine.operand_signature(add_op) == ((9, 5), (10, 7))

    def test_store_signature_base_only(self):
        """Store entries keep only the base register: the address
        computation is the reusable work (Section 4.1.2 handling)."""
        _, ops = committed_ops("""
        .data
        cell: .word 0
        .text
        main: la $t1, cell
              li $t0, 99
              sw $t0, 0($t1)
              halt
        """, config=base_config())
        engine = ReuseEngine(IRConfig(enabled=True), SimStats())
        store = next(op for op in ops if op.inst.opcode.is_store)
        signature = engine.operand_signature(store)
        assert len(signature) == 1
        assert signature[0][0] == 9  # base register only


class TestInsertion:
    def test_committed_run_populates_buffer(self):
        core, _ = committed_ops("""
        main: li $s0, 20
        loop: li $t0, 3
              add $t1, $t0, $t0
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        assert len(core.ir.buffer) > 0
        assert core.ir.buffer.insertions > 0

    def test_reused_ops_do_not_reinsert(self):
        core, ops = committed_ops("""
        main: li $s0, 50
        loop: li $t0, 3
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        li_ops = [op for op in ops if op.inst.opcode.name == "ori"
                  and op.inst.rd == 8]
        reused = [op for op in li_ops if op.reused]
        assert reused, "constant li should be reused"
        # one static li with one signature: exactly one RB instance
        pc = li_ops[0].inst.pc
        assert len(core.ir.buffer.instances(pc)) == 1

    def test_branch_entries_store_outcome(self):
        core, ops = committed_ops("""
        main: li $s0, 30
        loop: li $t1, 1
              beq $t1, $zero, never
              addi $s0, $s0, -1
              bnez $s0, loop
        never: halt
        """)
        beq = next(op for op in ops if op.inst.opcode.name == "beq"
                   and op.inst.rt == 0 and op.inst.rs == 9)
        instances = core.ir.buffer.instances(beq.inst.pc)
        assert instances
        assert instances[0].result == 0  # never taken

    def test_load_entries_record_address(self):
        core, ops = committed_ops("""
        .data
        v: .word 77
        .text
        main: li $s0, 20
        loop: lw $t0, v
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        load = next(op for op in ops if op.inst.opcode.is_load)
        instances = core.ir.buffer.instances(load.inst.pc)
        assert instances
        assert instances[0].is_load
        assert instances[0].address == core.program.symbol("v")
        assert instances[0].result == 77


class TestDecision:
    def test_decision_flags(self):
        decision = ReuseDecision()
        assert not decision.hit
        decision.address = True
        assert decision.hit and not decision.full
        decision.full = True
        assert decision.hit and decision.full

    def test_stats_count_tests(self):
        core, _ = committed_ops("""
        main: li $s0, 10
        loop: addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        assert core.stats.ir_tests > 0
