"""Unit tests for the Reuse Buffer structure."""

from repro.reuse.buffer import RBEntry, ReuseBuffer
from repro.uarch.config import IRConfig


def make_buffer(entries=64, assoc=4):
    return ReuseBuffer(IRConfig(enabled=True, entries=entries,
                                associativity=assoc))


def entry(pc=0x1000, operands=((8, 1),), result=42, **kw):
    return RBEntry(pc=pc, operands=tuple(operands), result=result, **kw)


class TestInsertLookup:
    def test_insert_then_find(self):
        buffer = make_buffer()
        buffer.insert(entry())
        instances = buffer.instances(0x1000)
        assert len(instances) == 1
        assert instances[0].result == 42

    def test_multiple_instances_same_pc(self):
        buffer = make_buffer()
        buffer.insert(entry(operands=((8, 1),), result=10))
        buffer.insert(entry(operands=((8, 2),), result=20))
        assert len(buffer.instances(0x1000)) == 2

    def test_same_operands_refresh_instead_of_duplicate(self):
        buffer = make_buffer()
        buffer.insert(entry(result=10))
        buffer.insert(entry(result=11))
        instances = buffer.instances(0x1000)
        assert len(instances) == 1
        assert instances[0].result == 11

    def test_lru_eviction_at_assoc(self):
        buffer = make_buffer(assoc=2)
        buffer.insert(entry(operands=((8, 1),)))
        buffer.insert(entry(operands=((8, 2),)))
        buffer.insert(entry(operands=((8, 3),)))
        signatures = {e.operands for e in buffer.instances(0x1000)}
        assert ((8, 1),) not in signatures

    def test_touch_protects_from_eviction(self):
        buffer = make_buffer(assoc=2)
        first = buffer.insert(entry(operands=((8, 1),)))
        buffer.insert(entry(operands=((8, 2),)))
        buffer.touch(first)
        buffer.insert(entry(operands=((8, 3),)))
        signatures = {e.operands for e in buffer.instances(0x1000)}
        assert ((8, 1),) in signatures
        assert ((8, 2),) not in signatures

    def test_different_pcs_do_not_mix(self):
        buffer = make_buffer(entries=1024)
        buffer.insert(entry(pc=0x1000, result=1))
        buffer.insert(entry(pc=0x2000, result=2))
        assert buffer.instances(0x1000)[0].result == 1
        assert buffer.instances(0x2000)[0].result == 2

    def test_paper_geometry(self):
        buffer = ReuseBuffer(IRConfig(enabled=True))
        assert buffer.num_sets * buffer.assoc == 4 * 1024
        assert buffer.assoc == 4


class TestStoreInvalidation:
    def _load_entry(self, address=0x8000, nbytes=4, **kw):
        return entry(operands=((8, address),), result=7, is_mem=True,
                     is_load=True, address=address, mem_bytes=nbytes, **kw)

    def test_exact_overlap_invalidates(self):
        buffer = make_buffer()
        stored = buffer.insert(self._load_entry())
        assert buffer.invalidate_stores(0x8000, 4) == 1
        assert stored.mem_valid is False

    def test_partial_overlap_invalidates(self):
        buffer = make_buffer()
        stored = buffer.insert(self._load_entry(address=0x8000, nbytes=4))
        buffer.invalidate_stores(0x8003, 1)
        assert stored.mem_valid is False

    def test_adjacent_store_does_not_invalidate(self):
        buffer = make_buffer()
        stored = buffer.insert(self._load_entry(address=0x8000, nbytes=4))
        buffer.invalidate_stores(0x8004, 4)
        assert stored.mem_valid is True

    def test_invalidation_is_idempotent(self):
        buffer = make_buffer()
        buffer.insert(self._load_entry())
        assert buffer.invalidate_stores(0x8000, 4) == 1
        assert buffer.invalidate_stores(0x8000, 4) == 0

    def test_address_only_entries_not_indexed(self):
        buffer = make_buffer()
        stored = buffer.insert(self._load_entry(result_valid=False))
        assert buffer.invalidate_stores(0x8000, 4) == 0
        # address reuse is still possible; only the result was never valid
        assert stored.result_valid is False

    def test_evicted_entries_dropped_from_index(self):
        buffer = make_buffer(assoc=1)
        buffer.insert(self._load_entry(address=0x8000))
        buffer.insert(entry(operands=((9, 9),), result=1))  # evicts load
        assert buffer.invalidate_stores(0x8000, 4) == 0
