"""Repo-wide pytest options.

``--regen-golden`` regenerates the golden-stats corpus under
``tests/golden/`` instead of comparing against it.  Use it only for an
*intentional* behaviour change, and say so in the commit message — the
corpus is the byte-exact contract every core optimisation must honour
(see docs/internals.md, "Golden-stats corpus").
"""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json from the current core instead "
             "of asserting byte-identity against it")
