"""Tests for the ``repro-trace`` CLI against a real captured trace."""

import dataclasses

import pytest

from repro.isa import assemble
from repro.telemetry.cli import main
from repro.uarch.config import base_config
from repro.uarch.core import OutOfOrderCore
from repro.uarch.trace import PipelineTracer

SOURCE = """
main:   li $s0, 20
loop:   li $t0, 4
        add $t1, $t0, $t0
        add $t2, $t1, $t1
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    """One traced run shared by every CLI test: (trace path, live
    render of the same run's PipelineTracer)."""
    config = dataclasses.replace(base_config(), verify_commits=True)
    core = OutOfOrderCore(config, assemble(SOURCE))
    tracer = PipelineTracer(core, limit=10_000)
    sink = core.enable_telemetry(interval=100)
    core.run(max_cycles=20_000)
    path = tmp_path_factory.mktemp("trace") / "run.trace.jsonl"
    sink.write_trace(path, workload="asm")
    return path, tracer.render()


def run_cli(capsys, *argv):
    code = main([str(a) for a in argv])
    return code, capsys.readouterr().out


class TestFiltering:
    def test_header_line(self, captured, capsys):
        code, out = run_cli(capsys, captured[0], "--limit", "0")
        assert code == 0
        assert "events:" in out and "dropped: 0" in out
        assert "workload=asm" in out

    def test_kind_filter(self, captured, capsys):
        _, out = run_cli(capsys, captured[0], "--kinds", "commit")
        lines = out.splitlines()[1:]
        assert lines and all(" commit " in line for line in lines)

    def test_unknown_kind_rejected(self, captured):
        with pytest.raises(SystemExit, match="unknown event kind"):
            main([str(captured[0]), "--kinds", "nonsense"])

    def test_bad_pc_rejected(self, captured):
        with pytest.raises(SystemExit, match="--pc"):
            main([str(captured[0]), "--pc", "xyz"])

    def test_cycle_window_and_limit(self, captured, capsys):
        _, out = run_cli(capsys, captured[0], "--since", "10",
                         "--until", "40", "--limit", "5")
        lines = out.splitlines()[1:]
        assert len(lines) <= 5
        for line in lines:
            assert 10 <= int(line.split()[0]) <= 40

    def test_counts(self, captured, capsys):
        _, out = run_cli(capsys, captured[0], "--counts")
        assert "commit" in out and "dispatch" in out

    def test_foreign_file_fails_cleanly(self, tmp_path):
        bogus = tmp_path / "x.jsonl"
        bogus.write_text('{"format": "nope"}\n')
        with pytest.raises(SystemExit, match="repro-trace-v1"):
            main([str(bogus)])


class TestFigure2:
    def test_reconstruction_matches_live_tracer(self, captured, capsys):
        """The saved-trace pipeline view IS the live Figure-2 view.

        Both go through render_trace_table, and the commit events carry
        the full per-instruction lifetimes, so the tables must match
        line for line (modulo the CLI's header line).
        """
        path, live = captured
        _, out = run_cli(capsys, path, "--figure2")
        reconstructed = out.split("\n\n", 1)[1].rstrip("\n")
        assert reconstructed == live.rstrip("\n")
