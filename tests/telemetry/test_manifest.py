"""Tests for config digests and run/sweep provenance manifests."""

import dataclasses
import json

from repro.telemetry.manifest import (
    MANIFEST_FORMAT,
    config_digest,
    load_manifests,
    run_manifest,
    sweep_manifest,
    write_manifest,
)
from repro.uarch.config import base_config, ir_config


class TestConfigDigest:
    def test_stable_across_identical_constructions(self):
        assert config_digest(base_config()) == config_digest(base_config())

    def test_sensitive_to_any_field(self):
        tweaked = dataclasses.replace(base_config(), rob_size=1)
        assert config_digest(tweaked) != config_digest(base_config())

    def test_differs_between_machine_models(self):
        assert config_digest(base_config()) != config_digest(ir_config())

    def test_shape(self):
        digest = config_digest(base_config())
        assert len(digest) == 16
        int(digest, 16)  # hex


def sample_run_manifest(**overrides):
    kwargs = dict(cache_key="v4-compress-base-i1000-c0-abcdefabcdef",
                  workload="compress", config=base_config(),
                  program_digest="deadbeef", source_sha12="abcdefabcdef",
                  max_instructions=1000, max_cycles=0, cache_hit=False,
                  checkpoint="captured", wallclock_seconds=1.23456)
    kwargs.update(overrides)
    return run_manifest(**kwargs)


class TestRunManifest:
    def test_required_fields(self):
        manifest = sample_run_manifest()
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["kind"] == "run"
        assert manifest["config_digest"] == config_digest(base_config())
        assert manifest["wallclock_seconds"] == 1.235
        for field in ("host", "python", "package_version", "created_unix"):
            assert field in manifest

    def test_backend_recorded(self):
        """Provenance pins which kernel backend produced the result."""
        from repro.backend import get_backend
        manifest = sample_run_manifest()
        backend = get_backend()
        assert manifest["backend"] == backend.name
        assert manifest["backend"] in ("python", "compiled")
        assert manifest["backend_extension"] == backend.extension_version
        if manifest["backend"] == "python":
            assert manifest["backend_extension"] == ""

    def test_stats_block_optional(self):
        assert "stats" not in sample_run_manifest()

        class FakeStats:
            cycles, committed, ipc = 100, 250, 2.5

        manifest = sample_run_manifest(stats=FakeStats())
        assert manifest["stats"] == {"cycles": 100, "committed": 250,
                                     "ipc": 2.5}

    def test_is_json_serializable(self):
        json.dumps(sample_run_manifest())


class TestSweepManifest:
    def test_digest_is_order_independent(self):
        a = sweep_manifest(run_keys=["k1", "k2"], simulated=1, cached=1,
                           jobs=2, wallclock_seconds=1.0)
        b = sweep_manifest(run_keys=["k2", "k1"], simulated=2, cached=0,
                           jobs=1, wallclock_seconds=9.0)
        assert a["sweep_digest"] == b["sweep_digest"]
        assert a["runs"] == b["runs"] == ["k1", "k2"]
        assert a["total_runs"] == 2


class TestReadWrite:
    def test_round_trip(self, tmp_path):
        manifest = sample_run_manifest()
        write_manifest(tmp_path / "run.json", manifest)
        loaded = load_manifests(tmp_path)
        assert len(loaded) == 1
        assert loaded[0]["cache_key"] == manifest["cache_key"]
        assert loaded[0]["_path"].endswith("run.json")

    def test_foreign_and_corrupt_files_skipped(self, tmp_path):
        write_manifest(tmp_path / "good.json", sample_run_manifest())
        (tmp_path / "foreign.json").write_text('{"format": "other"}')
        (tmp_path / "corrupt.json").write_text("{nope")
        loaded = load_manifests(tmp_path)
        assert [m["kind"] for m in loaded] == ["run"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_manifests(tmp_path / "nope") == []

    def test_write_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "m.json"
        write_manifest(target, sample_run_manifest())
        assert target.is_file()
