"""Tests for the interval time-series container and serialization."""

import pytest

from repro.telemetry.interval import (
    INTERVAL_COLUMNS,
    INTERVAL_FORMAT,
    IntervalSeries,
    load_timeseries,
)


def make_row(i):
    row = {name: 0 for name in INTERVAL_COLUMNS}
    row.update(cycle=(i + 1) * 500, cycles=500, committed=100 * (i + 1),
               ipc=0.2 * (i + 1), rob_occupancy=i)
    return row


def filled_series(rows=3):
    series = IntervalSeries(interval=500)
    for i in range(rows):
        series.append(make_row(i))
    return series


class TestSeries:
    def test_append_and_len(self):
        series = filled_series(4)
        assert len(series) == 4
        assert series.column("committed") == [100, 200, 300, 400]

    def test_append_requires_every_column(self):
        series = IntervalSeries()
        with pytest.raises(KeyError):
            series.append({"cycle": 1})

    def test_rows_follow_column_order(self):
        series = filled_series(1)
        row = series.rows()[0]
        assert row[INTERVAL_COLUMNS.index("cycle")] == 500
        assert row[INTERVAL_COLUMNS.index("committed")] == 100

    def test_summary(self):
        series = filled_series(3)
        summary = series.summary("committed")
        assert summary == {"min": 100, "mean": 200, "max": 300}

    def test_summary_empty(self):
        assert IntervalSeries().summary("ipc") == \
            {"min": 0.0, "mean": 0.0, "max": 0.0}


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        series = filled_series(3)
        series.context["workload"] = "compress"
        path = tmp_path / "ts.jsonl"
        series.write(path)
        loaded = load_timeseries(path)
        assert loaded.rows() == series.rows()
        assert loaded.columns == series.columns
        assert loaded.context["workload"] == "compress"
        assert loaded.interval == 500

    def test_csv_round_trip(self, tmp_path):
        series = filled_series(2)
        path = tmp_path / "ts.csv"
        series.write(path)
        loaded = load_timeseries(path)
        assert [[float(v) for v in row] for row in series.rows()] \
            == loaded.rows()

    def test_jsonl_header_is_versioned(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        filled_series(1).write(path)
        first = path.read_text().splitlines()[0]
        assert INTERVAL_FORMAT in first

    def test_foreign_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_timeseries(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_timeseries(path)
