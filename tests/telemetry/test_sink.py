"""Tests for the telemetry sink: transparency and sampling invariants."""

import pytest

from repro.isa import assemble
from repro.telemetry import TelemetrySink
from repro.uarch.config import base_config, ir_config, vp_config
from repro.uarch.core import OutOfOrderCore

SOURCE = """
main:   li $s0, 60
loop:   li $t0, 4
        add $t1, $t0, $t0
        lw $t3, 0($zero)
        add $t2, $t1, $t3
        sw $t2, 4($zero)
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""

CONFIGS = {"base": base_config, "ir": ir_config, "vp": vp_config}


def run_core(config, sink=None, **telemetry):
    core = OutOfOrderCore(config, assemble(SOURCE))
    if sink is not None or telemetry:
        sink = core.enable_telemetry(sink, **telemetry)
    core.run(max_cycles=20_000)
    return core, sink


class TestTransparency:
    """Attaching a sink must not perturb a single statistic.

    This is the contract that lets the golden corpus stay valid: the
    default core has no sink, and an attached sink only observes.
    """

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_stats_byte_identical_with_and_without_sink(self, name):
        plain, _ = run_core(CONFIGS[name]())
        traced, _ = run_core(CONFIGS[name](), interval=100, events=True)
        assert traced.stats.canonical_json() == plain.stats.canonical_json()


class TestIntervalSampling:
    def test_delta_columns_sum_to_run_totals(self):
        core, sink = run_core(ir_config(), interval=100)
        series = sink.series
        assert sum(series.column("committed")) == core.stats.committed
        assert sum(series.column("dispatched")) == core.stats.dispatched
        assert sum(series.column("cycles")) == core.stats.cycles
        assert sum(series.column("squashes")) == core.stats.branch_squashes
        assert sum(series.column("reuse_tests")) == core.stats.ir_tests

    def test_every_reuse_test_is_hit_or_miss(self):
        _, sink = run_core(ir_config(), interval=100)
        series = sink.series
        hits = sum(series.column("reuse_hits"))
        misses = sum(series.column("reuse_misses"))
        assert hits + misses == sum(series.column("reuse_tests"))
        assert hits > 0

    def test_boundaries_are_regular_then_partial(self):
        core, sink = run_core(base_config(), interval=100)
        cycles = sink.series.column("cycle")
        assert cycles == sorted(cycles)
        assert all(c % 100 == 0 for c in cycles[:-1])
        assert cycles[-1] == core.stats.cycles

    def test_events_disabled_still_counts_interval_events(self):
        _, sink = run_core(vp_config(), interval=100, events=False)
        assert sink.trace is None
        assert sum(sink.series.column("vp_predicted")) > 0
        assert sum(sink.series.column("vp_verified")) > 0

    def test_misprediction_column(self):
        core, sink = run_core(vp_config(), interval=100, events=False)
        verified = sum(sink.series.column("vp_verified"))
        wrong = sum(sink.series.column("vp_mispredicted"))
        assert 0 <= wrong <= verified


class TestFinalize:
    def test_finalize_is_idempotent(self):
        core, sink = run_core(base_config(), interval=100)
        rows = len(sink.series)
        sink.finalize(core)
        sink.finalize(core)
        assert len(sink.series) == rows

    def test_context_records_run_identity(self):
        core, sink = run_core(vp_config(), interval=100)
        context = sink.series.context
        assert context["config"] == core.config.name
        assert context["total_cycles"] == core.stats.cycles
        assert context["total_committed"] == core.stats.committed
        assert "kind" in context["vp"]


class TestEventPath:
    def test_commit_events_carry_pipeline_lifetimes(self):
        core, sink = run_core(base_config(), interval=100)
        commits = sink.trace.select(kinds=["commit"])
        assert len(commits) == core.stats.committed
        for event in commits:
            data = event.data
            assert data["dispatch"] <= data["complete"] <= event.cycle
            assert "text" in data

    def test_reuse_misses_carry_reasons(self):
        _, sink = run_core(ir_config(), interval=100)
        misses = sink.trace.select(kinds=["reuse_miss"])
        assert misses and all(m.data.get("reason") for m in misses)

    def test_explicit_sink_is_attached_and_returned(self):
        sink = TelemetrySink(interval=50)
        core, attached = run_core(base_config(), sink=sink)
        assert attached is sink
        assert len(sink.series) > 0
