"""Unit tests for the hierarchical span tracer (repro.telemetry.spans).

Pins the identity contract — span ids derive from content alone, so the
same cell always yields the same id — and the canonical JSONL shape:
header + sorted records, byte-stable across recorders once timing
fields are stripped (:func:`identity_lines`).
"""

import json
import re

import pytest

from repro.telemetry.spans import (
    PHASE_ORDER,
    SPAN_FORMAT,
    TIMING_ATTRS,
    TIMING_FIELDS,
    SpanRecorder,
    dumps,
    identity_lines,
    load_spans,
    span_id,
    sweep_digest,
)

KEY = "v4-compress-base-i1000-c60000-abcdef123456"


class TestSpanId:
    def test_deterministic_16_hex(self):
        sid = span_id("job", KEY)
        assert re.fullmatch(r"[0-9a-f]{16}", sid)
        assert sid == span_id("job", KEY)

    def test_kind_key_and_name_all_discriminate(self):
        ids = {span_id("job", KEY), span_id("sweep", KEY),
               span_id("phase", KEY, "decode"),
               span_id("phase", KEY, "simulate"),
               span_id("job", KEY + "x")}
        assert len(ids) == 5

    def test_job_id_ignores_display_name(self):
        # Manifests derive the job span id from the cache key alone.
        assert span_id("job", KEY) == span_id("job", KEY, "")

    def test_sweep_digest_order_independent(self):
        keys = ["k-b", "k-a", "k-c"]
        digest = sweep_digest(keys)
        assert digest == sweep_digest(sorted(keys, reverse=True))
        assert re.fullmatch(r"[0-9a-f]{12}", digest)


class TestRecorder:
    def test_measure_records_timing_and_nesting(self):
        recorder = SpanRecorder()
        job_sid = span_id("job", KEY)
        with recorder.measure("job", KEY, "compress/base") as attrs:
            with recorder.measure("phase", KEY, "simulate",
                                  parent=job_sid):
                pass
            attrs["cycles"] = 42
        job, = [r for r in recorder.records if r["kind"] == "job"]
        phase, = [r for r in recorder.records if r["kind"] == "phase"]
        assert job["span"] == job_sid
        assert phase["parent"] == job_sid
        assert job["attrs"]["cycles"] == 42
        assert job["duration_s"] >= phase["duration_s"] >= 0
        assert phase["t_start"] >= job["t_start"] >= 0

    def test_rusage_attrs_on_job_spans(self):
        recorder = SpanRecorder()
        with recorder.measure("job", KEY, "cell", rusage=True):
            sum(range(10_000))
        attrs = recorder.records[0]["attrs"]
        assert attrs["rss_peak_kb"] > 0
        assert attrs["cpu_user_s"] >= 0
        assert attrs["cpu_sys_s"] >= 0
        assert isinstance(attrs["host"], str)

    def test_duplicate_span_ids_collapse(self):
        recorder = SpanRecorder()
        assert recorder.point("job", KEY, "hit") is not None
        recorder.point("job", KEY, "hit")
        recorder.point("job", KEY, "other-name")  # same id: empty name
        assert len(recorder.records) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown span kind"):
            SpanRecorder().point("cell", KEY, "x")

    def test_adopt_fills_trace_and_reparents_jobs(self):
        recorder = SpanRecorder()
        recorder.point("job", KEY, "cell")
        recorder.point("phase", KEY, "simulate",
                       parent=span_id("job", KEY))
        recorder.adopt(trace="t1", parent="sweep-span")
        job, phase = recorder.records
        assert job["trace"] == phase["trace"] == "t1"
        assert job["parent"] == "sweep-span"
        assert phase["parent"] == span_id("job", KEY)  # untouched

    def test_drain_clears_records_and_dedup_state(self):
        recorder = SpanRecorder()
        recorder.point("job", KEY, "cell")
        drained = recorder.drain()
        assert len(drained) == 1 and recorder.records == []
        assert recorder.point("job", KEY, "cell") is not None
        assert len(recorder.records) == 1


def _sample_records(recorder):
    sid = span_id("job", KEY)
    with recorder.measure("job", KEY, "compress/base", trace="t",
                          rusage=True):
        for name in PHASE_ORDER:
            with recorder.measure("phase", KEY, name, parent=sid,
                                  trace="t"):
                pass
    return recorder.records


class TestSerialization:
    def test_write_load_round_trip(self, tmp_path):
        recorder = SpanRecorder()
        _sample_records(recorder)
        out = tmp_path / "spans.jsonl"
        recorder.write(out)
        loaded = load_spans(out)
        assert loaded == sorted(recorder.records,
                                key=lambda r: (r["kind"] != "job",
                                               PHASE_ORDER.index(
                                                   r["name"])
                                               if r["kind"] == "phase"
                                               else -1))

    def test_header_line_is_canonical(self, tmp_path):
        recorder = SpanRecorder()
        recorder.point("sweep", "d1", "run_many", trace="d1")
        recorder.write(tmp_path / "spans.jsonl")
        first = (tmp_path / "spans.jsonl").read_text().splitlines()[0]
        assert json.loads(first) == {"format": SPAN_FORMAT,
                                     "records": 1}

    def test_load_rejects_foreign_files(self, tmp_path):
        bad = tmp_path / "not-spans.jsonl"
        bad.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match=SPAN_FORMAT):
            load_spans(bad)
        (tmp_path / "empty").write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_spans(tmp_path / "empty")

    def test_dumps_sorted_independent_of_insertion_order(self):
        a, b = SpanRecorder(), SpanRecorder()
        _sample_records(a)
        b.extend(list(reversed(_sample_records(SpanRecorder()))))
        assert identity_lines(a.records) == identity_lines(b.records)

    def test_identity_lines_byte_stable_across_recorders(self):
        """The span analogue of the cache-bytes contract: two traced
        runs over the same content differ only in timing fields."""
        a = identity_lines(_sample_records(SpanRecorder()))
        b = identity_lines(_sample_records(SpanRecorder()))
        assert a == b
        for field in TIMING_FIELDS:
            assert f'"{field}"' not in a
        for attr in TIMING_ATTRS:
            assert f'"{attr}"' not in a

    def test_dumps_keeps_timing(self):
        text = dumps(_sample_records(SpanRecorder()))
        assert '"duration_s"' in text and '"t_start"' in text
