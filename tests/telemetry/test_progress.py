"""Unit tests for the live-progress protocol (repro.telemetry.progress).

Covers the writer (atomic line appends, counter bookkeeping, heartbeat
throttling), the reader (torn/foreign line tolerance), the snapshot
fold (per-worker state, ETA) and the ``repro-top`` entry point.
"""

import json

from repro.telemetry.progress import (
    PROGRESS_FILE,
    PROGRESS_FORMAT,
    ProgressWriter,
    SweepSnapshot,
    follow,
    main,
    progress_path,
    read_progress,
    render_snapshot,
)

KEY = "v4-compress-base-i1000-c60000-abcdef123456"


def make_writer(tmp_path, **kwargs):
    return ProgressWriter(tmp_path / PROGRESS_FILE, **kwargs)


class TestWriter:
    def test_records_are_single_canonical_lines(self, tmp_path):
        writer = make_writer(tmp_path)
        writer.sweep_start(total=3, cached=1, pending=2, jobs=2)
        writer.sweep_done(total=3, simulated=2, wall_s=1.23456)
        lines = writer.path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["format"] == PROGRESS_FORMAT
            assert record["pid"] == writer.pid
            assert isinstance(record["t_mono"], float)
        assert json.loads(lines[1])["wall_s"] == 1.235

    def test_job_lifecycle_counters(self, tmp_path):
        writer = make_writer(tmp_path)
        writer.job_start(KEY, workload="compress", config="base")
        assert writer.current == KEY and writer.cache_misses == 1
        writer.checkpoint("captured")
        writer.job_done(KEY, elapsed_s=0.5, committed=1000)
        writer.cache_hit(KEY + "2")
        writer.checkpoint("memo")
        writer.checkpoint("disk")
        writer.checkpoint("disabled")  # not a checkpoint event
        assert writer.current is None
        assert writer.done == 2  # one simulated + one cache hit
        assert writer.cache_hits == 1
        assert writer.checkpoint_hits == 2
        assert writer.checkpoint_misses == 1
        kinds = [r["kind"] for r in read_progress(writer.path)]
        assert kinds == ["job_start", "heartbeat", "job_done",
                         "heartbeat", "heartbeat"]

    def test_in_simulation_heartbeats_throttled(self, tmp_path):
        writer = make_writer(tmp_path, heartbeat_min_seconds=3600)
        writer.heartbeat(current=KEY, cycles=100, committed=10)
        for cycle in range(200, 1000, 100):  # all inside the window
            writer.heartbeat(current=KEY, cycles=cycle)
        beats = [r for r in read_progress(writer.path)
                 if r["kind"] == "heartbeat"]
        assert len(beats) == 1
        assert beats[0]["cycles"] == 100 and beats[0]["committed"] == 10

    def test_boundary_heartbeats_bypass_throttle(self, tmp_path):
        writer = make_writer(tmp_path, heartbeat_min_seconds=3600)
        writer.cache_hit("a")
        writer.cache_hit("b")
        beats = [r for r in read_progress(writer.path)
                 if r["kind"] == "heartbeat"]
        assert [b["done"] for b in beats] == [1, 2]


class TestReader:
    def test_tolerates_torn_tail_and_foreign_lines(self, tmp_path):
        writer = make_writer(tmp_path)
        writer.sweep_start(total=1, cached=0, pending=1, jobs=1)
        with open(writer.path, "a") as handle:
            handle.write("not json\n")
            handle.write('{"format": "other-protocol"}\n')
            handle.write('{"format": "repro-progress-v1", "kind": "hea')
        records = read_progress(writer.path)
        assert [r["kind"] for r in records] == ["sweep_start"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_progress(tmp_path / "absent.jsonl") == []


class TestSnapshot:
    def _traced_sweep(self, tmp_path):
        writer = make_writer(tmp_path)
        writer.sweep_start(total=4, cached=1, pending=3, jobs=2)
        writer.cache_hit("k0")
        writer.job_start("k1", workload="compress", config="base")
        writer.job_done("k1", elapsed_s=0.2, committed=1000)
        return writer

    def test_folds_per_worker_counters(self, tmp_path):
        writer = self._traced_sweep(tmp_path)
        snap = SweepSnapshot.from_records(read_progress(writer.path))
        assert snap.total == 4 and snap.cached == 1 and snap.jobs == 2
        assert snap.done == 2
        worker = snap.workers[writer.pid]
        assert worker["cache_hits"] == 1
        assert worker["current"] is None  # job_done clears it
        assert snap.finished is None
        assert snap.eta() is not None and snap.eta() >= 0

    def test_only_the_last_sweep_counts(self, tmp_path):
        writer = self._traced_sweep(tmp_path)
        writer.sweep_done(total=4, simulated=3, wall_s=1.0)
        writer.sweep_start(total=2, cached=2, pending=0, jobs=1)
        snap = SweepSnapshot.from_records(read_progress(writer.path))
        assert snap.total == 2 and snap.done == 0
        assert snap.finished is None and snap.eta() is None

    def test_finished_sweep_has_no_eta(self, tmp_path):
        writer = self._traced_sweep(tmp_path)
        writer.sweep_done(total=4, simulated=3, wall_s=1.0)
        snap = SweepSnapshot.from_records(read_progress(writer.path))
        assert snap.finished is not None
        assert snap.eta() is None

    def test_render_lists_workers(self, tmp_path):
        writer = self._traced_sweep(tmp_path)
        text = render_snapshot(
            SweepSnapshot.from_records(read_progress(writer.path)))
        assert "2/4 cells" in text
        assert "(1 pre-cached)" in text
        assert str(writer.pid) in text

    def test_render_empty(self):
        assert "no sweep progress" in render_snapshot(SweepSnapshot())


class TestCli:
    def test_progress_path_resolves_directories(self, tmp_path):
        nested = tmp_path / "telemetry" / PROGRESS_FILE
        nested.parent.mkdir()
        nested.write_text("")
        assert progress_path(tmp_path) == nested  # result-cache dir
        assert progress_path(nested.parent) == nested
        assert progress_path(nested) == nested

    def test_main_once_renders_snapshot(self, tmp_path, capsys):
        writer = make_writer(tmp_path)
        writer.sweep_start(total=1, cached=0, pending=1, jobs=1)
        assert main([str(tmp_path), "--once"]) == 0
        assert "0/1 cells" in capsys.readouterr().out

    def test_follow_exits_when_sweep_done(self, tmp_path):
        writer = make_writer(tmp_path)
        writer.sweep_start(total=1, cached=1, pending=0, jobs=1)
        writer.sweep_done(total=1, simulated=0, wall_s=0.1)
        shown = []
        assert follow(writer.path, interval=0.01, clear=False,
                      out=shown.append) == 0
        assert shown and "[done in 0.1s]" in shown[-1]
