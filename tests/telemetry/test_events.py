"""Tests for the bounded event trace and its JSONL serialization."""

import pytest

from repro.telemetry.events import (
    EVENT_KINDS,
    EventTrace,
    TraceEvent,
    load_trace,
)


def small_trace(events=5, capacity=64):
    trace = EventTrace(capacity)
    for i in range(events):
        trace.emit("dispatch", cycle=i, seq=i, pc=0x1000 + 4 * i,
                   data={"opcode": "add"})
    return trace


class TestRingBuffer:
    def test_capacity_bounds_memory(self):
        trace = EventTrace(4)
        for i in range(10):
            trace.emit("commit", cycle=i, seq=i)
        assert len(trace) == 4
        assert trace.emitted == 10
        assert trace.dropped == 6
        # Oldest events dropped first.
        assert [e.cycle for e in trace.events] == [6, 7, 8, 9]

    def test_counts(self):
        trace = EventTrace(16)
        trace.emit("dispatch", 1, 1)
        trace.emit("dispatch", 2, 2)
        trace.emit("squash", 3, 1)
        assert trace.counts() == {"dispatch": 2, "squash": 1}


class TestSelect:
    def test_filter_by_kind(self):
        trace = small_trace()
        trace.emit("squash", cycle=99, seq=50)
        assert all(e.kind == "dispatch"
                   for e in trace.select(kinds=["dispatch"]))
        assert len(trace.select(kinds=["squash"])) == 1

    def test_filter_by_pc_and_window(self):
        trace = small_trace(10)
        by_pc = trace.select(pc=0x1008)
        assert len(by_pc) == 1 and by_pc[0].cycle == 2
        window = trace.select(since=3, until=5)
        assert [e.cycle for e in window] == [3, 4, 5]


class TestSerialization:
    def test_round_trip(self, tmp_path):
        trace = small_trace(6)
        path = tmp_path / "t.trace.jsonl"
        path.write_text(trace.dumps(workload="compress"))
        loaded = load_trace(path)
        assert len(loaded) == 6
        assert loaded.header["workload"] == "compress"
        assert loaded.header["emitted"] == 6
        first = loaded.select()[0]
        assert first.kind == "dispatch" and first.pc == 0x1000
        assert first.data == {"opcode": "add"}

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "not-a-trace"}\n')
        with pytest.raises(ValueError):
            load_trace(path)

    def test_event_dict_round_trip(self):
        event = TraceEvent("vp_verify", 12, seq=3, pc=0x40,
                           data={"correct": False})
        assert TraceEvent.from_dict(event.as_dict()).as_dict() \
            == event.as_dict()


def test_known_kinds_are_stable():
    # The kind vocabulary is part of the trace format: removing or
    # renaming one breaks saved traces, so additions only.
    for kind in ("dispatch", "issue", "complete", "commit", "vp_predict",
                 "vp_verify", "reexec", "reuse_hit", "reuse_miss",
                 "branch_resolve", "squash", "checkpoint_restore"):
        assert kind in EVENT_KINDS
