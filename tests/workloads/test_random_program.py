"""Tests for the random-program generator (differential-test substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.functional import FunctionalSimulator
from repro.isa import assemble
from repro.workloads import random_program


class TestGeneration:
    def test_deterministic_for_seed(self):
        assert random_program(7) == random_program(7)

    def test_different_seeds_differ(self):
        assert random_program(1) != random_program(2)

    def test_assembles(self):
        for seed in range(5):
            program = assemble(random_program(seed))
            assert program.num_instructions > 10

    def test_size_scales(self):
        small = assemble(random_program(3, size=20)).num_instructions
        large = assemble(random_program(3, size=200)).num_instructions
        assert large > small


class TestTermination:
    @pytest.mark.parametrize("seed", range(10))
    def test_programs_halt(self, seed):
        sim = FunctionalSimulator(assemble(random_program(seed, size=60)))
        sim.run(max_instructions=500_000)
        assert sim.halted

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000),
           size=st.integers(min_value=10, max_value=120))
    def test_any_seed_halts(self, seed, size):
        sim = FunctionalSimulator(assemble(random_program(seed, size=size)))
        sim.run(max_instructions=1_000_000)
        assert sim.halted


class TestContent:
    def test_contains_memory_traffic(self):
        source = random_program(11, size=200)
        assert "lw" in source or "sw" in source

    def test_contains_control_flow(self):
        source = random_program(11, size=200)
        assert "bnez" in source  # loops are always counted loops
