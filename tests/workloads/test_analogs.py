"""Tests for the seven SPECint95-analog workloads.

Each analog must (a) assemble and run deterministically without halting
within the experiment budget, (b) exhibit the qualitative properties its
namesake is chosen for (branch-prediction band, redundancy signature),
and (c) run correctly through the timing core in every technique
configuration (spot-checked here; the full matrix runs in the
differential suite).
"""

import dataclasses

import pytest

from repro.functional import FunctionalSimulator
from repro.redundancy import RedundancyClassifier
from repro.uarch.config import base_config, ir_config, vp_config
from repro.uarch.core import OutOfOrderCore
from repro.workloads import all_workloads, get_workload, workload_names

ALL_NAMES = ["go", "m88ksim", "ijpeg", "perl", "vortex", "gcc", "compress"]


class TestRegistry:
    def test_all_seven_registered(self):
        assert sorted(workload_names()) == sorted(ALL_NAMES)

    def test_get_workload(self):
        spec = get_workload("go")
        assert spec.name == "go"
        assert spec.paper.branch_pred_rate == 75.8

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("nonesuch")

    def test_specs_carry_paper_reference(self):
        for spec in all_workloads().values():
            assert spec.paper.inst_count_millions > 100
            assert 70 < spec.paper.branch_pred_rate <= 100


@pytest.mark.parametrize("name", ALL_NAMES)
class TestFunctionalBehaviour:
    def test_assembles(self, name):
        program = get_workload(name).program()
        assert program.num_instructions > 30

    def test_runs_past_skip_without_halting(self, name):
        spec = get_workload(name)
        sim = FunctionalSimulator(spec.program())
        ran = sim.run(spec.skip_instructions + 20_000)
        assert not sim.halted
        assert ran == spec.skip_instructions + 20_000

    def test_deterministic(self, name):
        spec = get_workload(name)

        def fingerprint():
            sim = FunctionalSimulator(spec.program())
            sim.run(spec.skip_instructions + 5_000)
            return tuple(sim.state.regs)

        assert fingerprint() == fingerprint()

    def test_high_redundancy(self, name):
        """All SPECint95 programs show >70% repeated results (Sec 1)."""
        spec = get_workload(name)
        sim = FunctionalSimulator(spec.program())
        sim.skip(spec.skip_instructions + 20_000)
        classifier = RedundancyClassifier()
        for outcome in sim.stream(30_000):
            classifier.observe(outcome)
        counts = classifier.counts
        assert counts.repeated > 0.70 * counts.producing, (
            f"{name}: repeated fraction "
            f"{counts.repeated / counts.producing:.2f}")


@pytest.mark.parametrize("name", ALL_NAMES)
class TestTimingBehaviour:
    def _run(self, name, config, insts=6_000):
        spec = get_workload(name)
        config = dataclasses.replace(config, verify_commits=True)
        core = OutOfOrderCore(config, spec.program())
        core.skip(spec.skip_instructions)
        stats = core.run(max_instructions=insts, max_cycles=200_000)
        assert stats.committed >= insts * 0.9
        return stats

    def test_base_run_verifies_against_oracle(self, name):
        stats = self._run(name, base_config())
        assert 0.3 < stats.ipc <= 4.0

    def test_reuse_engages(self, name):
        stats = self._run(name, ir_config())
        assert stats.ir_result_reused + stats.ir_addr_reused > 0

    def test_vp_engages(self, name):
        stats = self._run(name, vp_config())
        assert stats.vp_result_predicted > 0


class TestBranchPredictionBands:
    """Branch prediction rates must order like Table 2: go hardest,
    vortex easiest."""

    @pytest.fixture(scope="class")
    def rates(self):
        rates = {}
        for name in ("go", "m88ksim", "vortex"):
            spec = get_workload(name)
            core = OutOfOrderCore(base_config(), spec.program())
            core.skip(spec.skip_instructions)
            stats = core.run(max_instructions=10_000, max_cycles=200_000)
            rates[name] = stats.branch_prediction_rate
        return rates

    def test_go_is_hardest(self, rates):
        assert rates["go"] < rates["m88ksim"]
        assert rates["go"] < rates["vortex"]

    def test_go_band(self, rates):
        assert 0.65 < rates["go"] < 0.85

    def test_regular_codes_band(self, rates):
        assert rates["m88ksim"] > 0.90
        assert rates["vortex"] > 0.90


class TestCompressSignature:
    def test_address_reuse_dominates_result_reuse(self):
        spec = get_workload("compress")
        core = OutOfOrderCore(ir_config(), spec.program())
        core.skip(spec.skip_instructions)
        stats = core.run(max_instructions=10_000, max_cycles=300_000)
        assert stats.ir_addr_rate > 1.5 * stats.ir_result_rate
