"""Tests for workload input variants (ref/train, like SPEC inputs)."""

import pytest

from repro.functional import FunctionalSimulator
from repro.redundancy import RedundancyClassifier
from repro.workloads import all_workloads, get_workload


class TestVariantPlumbing:
    def test_every_workload_has_ref_and_train(self):
        for spec in all_workloads().values():
            assert "ref" in spec.variants
            assert "train" in spec.variants

    def test_default_is_ref(self):
        spec = get_workload("go")
        assert spec.source() == spec.source("ref")

    def test_variants_differ(self):
        for spec in all_workloads().values():
            assert spec.source("ref") != spec.source("train"), spec.name

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            get_workload("go").source("bogus")


class TestVariantBehaviour:
    @pytest.mark.parametrize("name", ["go", "compress", "vortex"])
    def test_train_runs_and_diverges(self, name):
        spec = get_workload(name)
        def state(variant):
            sim = FunctionalSimulator(spec.program(variant))
            sim.run(spec.skip_instructions + 5_000)
            assert not sim.halted
            return tuple(sim.state.regs)
        assert state("ref") != state("train")

    def test_redundancy_stable_across_inputs(self):
        """The redundancy character is a property of the program, not the
        input: both variants land in the same band (Section 1's claim
        that >75% of results repeat holds across inputs)."""
        spec = get_workload("go")
        fractions = []
        for variant in ("ref", "train"):
            sim = FunctionalSimulator(spec.program(variant))
            sim.skip(spec.skip_instructions + 10_000)
            classifier = RedundancyClassifier()
            for outcome in sim.stream(20_000):
                classifier.observe(outcome)
            counts = classifier.counts
            fractions.append(counts.repeated / counts.producing)
        assert all(fraction > 0.7 for fraction in fractions)
        assert abs(fractions[0] - fractions[1]) < 0.15
