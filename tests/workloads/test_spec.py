"""Unit tests for the workload registry and spec plumbing."""

import pytest

from repro.isa import Program
from repro.workloads import all_workloads, get_workload
from repro.workloads.spec import PaperReference, WorkloadSpec, register


class TestSpec:
    def test_source_and_program(self):
        spec = get_workload("compress")
        assert isinstance(spec.source(), str)
        assert isinstance(spec.program(), Program)

    def test_program_is_rebuilt_each_call(self):
        spec = get_workload("compress")
        assert spec.program() is not spec.program()

    def test_duplicate_registration_rejected(self):
        spec = get_workload("go")
        with pytest.raises(ValueError, match="duplicate"):
            register(spec)

    def test_all_workloads_returns_copy(self):
        first = all_workloads()
        first.pop("go")
        assert "go" in all_workloads()


class TestPaperReference:
    def test_table3_fields_present(self):
        for spec in all_workloads().values():
            paper = spec.paper
            assert paper.ir_result_rate > 0
            assert paper.ir_addr_rate > 0
            assert paper.vp_magic_result_rate >= paper.vp_lvp_result_rate \
                or spec.name == "ijpeg"  # the paper's one exception

    def test_compress_signature_encoded(self):
        paper = get_workload("compress").paper
        assert paper.ir_addr_rate > 3 * paper.ir_result_rate

    def test_go_is_least_predictable(self):
        rates = {name: spec.paper.branch_pred_rate
                 for name, spec in all_workloads().items()}
        assert min(rates, key=rates.get) == "go"

    def test_skip_covers_init(self):
        """The skip must put the timing window past the init phase: all
        analogs' init loops finish within their declared skip."""
        from repro.functional import FunctionalSimulator
        for name, spec in all_workloads().items():
            sim = FunctionalSimulator(spec.program())
            sim.skip(spec.skip_instructions)
            # after the skip we must be in the steady-state loop: running
            # further must not halt
            sim.run(2_000)
            assert not sim.halted, f"{name} halted right after skip"
