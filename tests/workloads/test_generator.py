"""Property tests for the seeded, characterised workload generator.

The generator's contract (docs/internals.md): byte-identical assembly
per knob set, termination by construction, canonical self-describing
names that round-trip, and — the point of the whole module — knobs that
*measurably* move the program's character: result redundancy via the
Figure 8 classifier, branch predictability via the timing model's
gshare rate.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.functional import FunctionalSimulator
from repro.isa import assemble
from repro.redundancy.classifier import RedundancyClassifier
from repro.uarch.config import base_config
from repro.uarch.core import OutOfOrderCore
from repro.workloads import (
    GeneratorKnobs,
    generated_program,
    generated_spec,
    get_workload,
    knobs_from_name,
    workload_names,
)

knob_sets = st.builds(
    GeneratorKnobs,
    seed=st.integers(min_value=0, max_value=50_000),
    size=st.integers(min_value=8, max_value=96),
    trips=st.integers(min_value=1, max_value=80),
    result_redundancy=st.floats(min_value=0.0, max_value=1.0),
    branch_entropy=st.floats(min_value=0.0, max_value=1.0))


class TestDeterminism:
    def test_byte_identical_per_knob_set(self):
        knobs = GeneratorKnobs(seed=9, size=48, trips=40,
                               result_redundancy=0.7, branch_entropy=0.3)
        assert generated_program(knobs) == generated_program(knobs)

    def test_distinct_seeds_differ(self):
        assert (generated_program(GeneratorKnobs(seed=1))
                != generated_program(GeneratorKnobs(seed=2)))

    def test_distinct_knobs_differ(self):
        low = GeneratorKnobs(seed=1, result_redundancy=0.1)
        high = GeneratorKnobs(seed=1, result_redundancy=0.9)
        assert generated_program(low) != generated_program(high)

    @settings(max_examples=20, deadline=None)
    @given(knobs=knob_sets)
    def test_any_knob_set_is_stable(self, knobs):
        assert generated_program(knobs) == generated_program(knobs)


class TestNaming:
    def test_canonical_name_shape(self):
        knobs = GeneratorKnobs(seed=3, size=48, trips=60,
                               result_redundancy=0.5, branch_entropy=0.25)
        assert knobs.name == "gen-s3-n48-t60-r500-b250"

    def test_name_round_trips_to_same_program(self):
        knobs = GeneratorKnobs(seed=12, size=40, trips=30,
                               result_redundancy=1 / 3,
                               branch_entropy=2 / 7)
        rebuilt = knobs_from_name(knobs.name)
        assert rebuilt == knobs
        assert generated_program(rebuilt) == generated_program(knobs)

    @settings(max_examples=20, deadline=None)
    @given(knobs=knob_sets)
    def test_any_name_round_trips(self, knobs):
        assert knobs_from_name(knobs.name) == knobs

    def test_rejects_foreign_names(self):
        with pytest.raises(ValueError):
            knobs_from_name("compress")
        with pytest.raises(ValueError):
            knobs_from_name("gen-s1-n48")

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            GeneratorKnobs(seed=-1)
        with pytest.raises(ValueError):
            GeneratorKnobs(size=4)
        with pytest.raises(ValueError):
            GeneratorKnobs(trips=0)


class TestRegistryIntegration:
    def test_get_workload_materialises_gen_names(self):
        knobs = GeneratorKnobs(seed=5, size=32, trips=20)
        spec = get_workload(knobs.name)
        assert spec.name == knobs.name
        assert spec.program().num_instructions > 10

    def test_generated_specs_not_registered(self):
        knobs = GeneratorKnobs(seed=5, size=32, trips=20)
        get_workload(knobs.name)
        assert knobs.name not in workload_names()

    def test_unknown_names_still_raise(self):
        with pytest.raises(KeyError):
            get_workload("no-such-workload")

    def test_spec_memoized(self):
        knobs = GeneratorKnobs(seed=6, size=32, trips=20)
        assert generated_spec(knobs) is generated_spec(knobs)


class TestTermination:
    @pytest.mark.parametrize("seed", range(5))
    def test_programs_halt(self, seed):
        knobs = GeneratorKnobs(seed=seed, size=48, trips=30)
        sim = FunctionalSimulator(assemble(generated_program(knobs)))
        sim.run(max_instructions=500_000)
        assert sim.halted

    @settings(max_examples=15, deadline=None)
    @given(knobs=knob_sets)
    def test_any_knob_set_halts(self, knobs):
        sim = FunctionalSimulator(assemble(generated_program(knobs)))
        sim.run(max_instructions=1_000_000)
        assert sim.halted


def _measured_redundancy(knobs: GeneratorKnobs) -> float:
    sim = FunctionalSimulator(assemble(generated_program(knobs)))
    classifier = RedundancyClassifier()
    for outcome in sim.stream(30_000):
        classifier.observe(outcome)
    counts = classifier.counts
    return counts.fraction(counts.redundant)


def _branch_rate(knobs: GeneratorKnobs) -> float:
    core = OutOfOrderCore(base_config(),
                          assemble(generated_program(knobs)))
    stats = core.run(max_cycles=300_000, max_instructions=8_000)
    assert stats.cond_branches > 100
    return stats.branch_prediction_rate


class TestKnobEffectiveness:
    """The knobs move the measured program character monotonically."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_redundancy_knob_monotone(self, seed):
        points = [
            _measured_redundancy(
                GeneratorKnobs(seed=seed, size=48, trips=60,
                               result_redundancy=setting))
            for setting in (0.05, 0.5, 0.95)]
        assert points[0] < points[1] < points[2], points

    @pytest.mark.parametrize("seed", [0, 7])
    def test_branch_entropy_knob_monotone(self, seed):
        points = [
            _branch_rate(GeneratorKnobs(seed=seed, size=48, trips=60,
                                        branch_entropy=setting))
            for setting in (0.05, 0.5, 0.95)]
        assert points[0] > points[1] > points[2], points

    def test_redundancy_extremes_are_far_apart(self):
        low = _measured_redundancy(
            GeneratorKnobs(seed=3, size=48, trips=60,
                           result_redundancy=0.05))
        high = _measured_redundancy(
            GeneratorKnobs(seed=3, size=48, trips=60,
                           result_redundancy=0.95))
        assert high - low > 0.3
