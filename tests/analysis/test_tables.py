"""Cross-table checker: real-tree proof + mutation tests.

The mutation tests copy the real table sources into a scratch tree,
break exactly one table textually, and assert the checker catches it —
proving the gate actually fires, not just that today's tree happens to
pass.
"""

import shutil

import pytest

from repro.analysis import check_tables
from repro.analysis.tables import (ASSEMBLER_FILE, COMPILED_FILE,
                                   FUNCTIONAL_UNITS_FILE,
                                   INSTRUCTION_FILE, OPCODES_FILE,
                                   parse_compiled_kinds,
                                   parse_fu_pools, parse_opcode_table)

TABLE_FILES = (OPCODES_FILE, INSTRUCTION_FILE, ASSEMBLER_FILE,
               COMPILED_FILE, FUNCTIONAL_UNITS_FILE)


class TableTree:
    """A scratch copy of the five table files, plus a mutator."""

    def __init__(self, root, repo_src):
        self.root = root
        for rel in TABLE_FILES:
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(repo_src / rel, target)

    def mutate(self, rel, old, new):
        path = self.root / rel
        text = path.read_text()
        assert old in text, f"mutation anchor {old!r} not in {rel}"
        path.write_text(text.replace(old, new))

    def __truediv__(self, rel):
        return self.root / rel

    def __fspath__(self):
        return str(self.root)


@pytest.fixture
def table_tree(tmp_path, repo_src):
    return TableTree(tmp_path, repo_src)


def messages(findings):
    return [f.message for f in findings]


def test_real_tree_is_fully_covered(repo_src):
    assert check_tables(repo_src) == []


def test_extraction_sees_known_opcodes(repo_src):
    entries = {e.name: e for e in
               parse_opcode_table(repo_src / OPCODES_FILE)}
    assert entries["add"].fmt == "RRR"
    assert entries["add"].op_class == "INT_ALU"
    assert entries["add"].exec_kind == "KIND_ALU"
    assert entries["lw"].exec_kind == "KIND_LOAD"
    assert entries["sw"].exec_kind == "KIND_STORE"
    assert entries["beq"].exec_kind == "KIND_BRANCH"
    assert entries["j"].exec_kind == "KIND_JUMP"
    assert entries["mult"].exec_kind == "KIND_HILO"


def test_mutation_removed_decode_entry(table_tree):
    table_tree.mutate(ASSEMBLER_FILE,
                      "fmt == Format.MEM", "fmt == Format.RRR")
    found = messages(check_tables(table_tree))
    assert any("'lw' (Format.MEM) has no decode entry" in m
               for m in found)


def test_mutation_removed_pool_mapping(table_tree):
    table_tree.mutate(FUNCTIONAL_UNITS_FILE,
                      "OpClass.LOAD_STORE: load_store,", "")
    found = messages(check_tables(table_tree))
    assert any("'lw' (OpClass.LOAD_STORE) has no FunctionalUnits pool"
               in m for m in found)
    assert any("OpClass.LOAD_STORE has no FunctionalUnits pool" in m
               for m in found)


def test_mutation_removed_kind_definition(table_tree):
    table_tree.mutate(INSTRUCTION_FILE, "KIND_STORE = ", "_KIND_GONE = ")
    found = messages(check_tables(table_tree))
    assert any("maps to KIND_STORE, which instruction.py does not "
               "define" in m for m in found)


def test_mutation_removed_dispatch_arm(table_tree):
    table_tree.mutate(COMPILED_FILE, "== KIND_HILO", "== KIND_NOP")
    found = messages(check_tables(table_tree))
    assert any("'mult' (KIND_HILO) has no handler in compile_exec"
               in m for m in found)
    assert any("KIND_HILO is defined but compile_exec has no handler"
               in m for m in found)
    assert any("KIND_HILO is defined but compile_ff has no handler"
               in m for m in found)


def test_mutation_duplicate_registration(table_tree):
    opcodes = table_tree / OPCODES_FILE
    opcodes.write_text(opcodes.read_text()
                       + '\n_alu("add", Format.RRR, lambda a, b, i: a)\n')
    found = messages(check_tables(table_tree))
    assert any("'add' registered twice" in m for m in found)


def test_meta_invariant_moved_table_fails_loudly(table_tree):
    # A refactor renaming Assembler._build must not silently turn the
    # decode-coverage check into a no-op.
    table_tree.mutate(ASSEMBLER_FILE, "def _build", "def _construct")
    found = messages(check_tables(table_tree))
    assert found == ["Assembler._build handles no Format members"]


def test_missing_table_file_is_a_finding(table_tree):
    (table_tree / COMPILED_FILE).unlink()
    found = messages(check_tables(table_tree))
    assert found == [f"table files missing: {COMPILED_FILE}"]


def test_parsers_agree_with_decode_priority(repo_src):
    # Every exec kind the opcode table derives must be a kind the
    # compiled table handles -- the invariant, restated over raw parses.
    compiled = parse_compiled_kinds(repo_src / COMPILED_FILE)
    kinds = {e.exec_kind for e in
             parse_opcode_table(repo_src / OPCODES_FILE)}
    assert kinds <= compiled["compile_exec"]
    assert kinds <= compiled["compile_ff"]
    assert parse_fu_pools(repo_src / FUNCTIONAL_UNITS_FILE)
