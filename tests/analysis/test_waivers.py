"""Waiver syntax: placement, file scope, hygiene (bad/unused)."""

from repro.analysis.core import parse_waivers


def by_rule(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


def test_trailing_waiver_covers_its_own_line(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        def key(x):
            return hash(x)  # repro-lint: waive[no-builtin-hash] -- key never leaves this process
    """})
    assert not report.unwaived
    (waived,) = report.waived
    assert waived.rule == "no-builtin-hash"
    assert waived.waive_reason == "key never leaves this process"


def test_comment_alone_waives_next_line(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        def key(x):
            # repro-lint: waive[no-builtin-hash] -- key never leaves this process
            return hash(x)
    """})
    assert not report.unwaived
    assert len(report.waived) == 1


def test_file_waiver_covers_every_line(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        # repro-lint: waive-file[no-builtin-hash] -- in-memory memo only
        def key(x):
            return hash(x)

        def key2(x):
            return hash((x, x))
    """})
    assert not report.unwaived
    assert len(report.waived) == 2


def test_waiver_without_justification_is_bad(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        def key(x):
            return hash(x)  # repro-lint: waive[no-builtin-hash]
    """})
    # The waiver does not take effect AND is itself reported.
    assert by_rule(report, "no-builtin-hash")
    (bad,) = by_rule(report, "bad-waiver")
    assert "missing a '-- justification'" in bad.message


def test_unparseable_waiver_comment_is_bad(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        # repro-lint: wave[no-builtin-hash] -- typo in the verb
        x = 1
    """})
    (bad,) = by_rule(report, "bad-waiver")
    assert bad.line == 1


def test_unused_waiver_is_warned(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        x = 1  # repro-lint: waive[no-builtin-hash] -- nothing to waive here
    """})
    (unused,) = by_rule(report, "unused-waiver")
    assert unused.line == 1
    assert unused.severity.value == "warning"
    assert report.exit_code() == 0  # warnings never gate


def test_waiver_for_other_rule_does_not_apply(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        def key(x):
            return hash(x)  # repro-lint: waive[atomic-write] -- wrong rule id
    """})
    assert by_rule(report, "no-builtin-hash")
    assert by_rule(report, "unused-waiver")


def test_parse_waivers_registration_points():
    waivers = parse_waivers(
        "x = 1  # repro-lint: waive[r1] -- trailing\n"
        "# repro-lint: waive[r2] -- alone\n"
        "y = 2\n"
        "# repro-lint: waive-file[r3] -- whole file\n")
    assert waivers.lookup(1, "r1") == "trailing"
    assert waivers.lookup(3, "r2") == "alone"
    assert waivers.lookup(2, "r2") is None
    assert waivers.lookup(99, "r3") == "whole file"
    assert not waivers.errors
