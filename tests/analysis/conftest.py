"""Shared fixtures for the repro-lint test suite.

``lint_tree`` materializes fixture source files under a synthetic
``repro/<package>/`` tree (so package-scoped rules see the paths they
key on) and runs the analyzer over it.  Fixture trees never contain
``repro/isa/opcodes.py``, so the cross-table project rule stays inert
unless a test builds a table tree on purpose.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import Analyzer, default_rules


@pytest.fixture
def lint_tree(tmp_path):
    def run(files, select=None, rules=None):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        analyzer = Analyzer(rules if rules is not None else default_rules())
        return analyzer.run([tmp_path], select=select)
    return run


@pytest.fixture
def lint_one(lint_tree):
    """Lint one fixture module; returns the unwaived findings."""
    def run(relpath, source, select=None):
        return lint_tree({relpath: source}, select=select).unwaived
    return run


REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def repo_src():
    assert (REPO_SRC / "repro" / "isa" / "opcodes.py").is_file()
    return REPO_SRC
