"""The ``repro-flow`` CLI and the shipped flow gate, run as tests.

``repro-flow src/`` exiting 0 is an acceptance criterion of the tree
(like ``repro-lint src/``), so the suite runs the same gate.  The CLI
surface mirrors tier 1: ``--select`` rejects unknown rule names with
exit code 2 *and* the list of available names, ``--format`` adds
``sarif``, ``--list-rules`` prints the catalogue.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.analysis.flow import FlowAnalyzer, default_flow_rules
from repro.analysis.flow.cli import main


def test_flow_gate_exits_zero_on_src(repo_src):
    report = FlowAnalyzer().run([repo_src])
    assert [f.as_dict() for f in report.unwaived
            if f.severity.value == "error"] == []
    # Waivers carry their justification or they would be findings.
    assert all(f.waive_reason for f in report.waived)


def test_cli_gate_exits_zero_on_src(repo_src):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main([str(repo_src)])
    assert code == 0
    assert buffer.getvalue().strip().endswith("file(s) checked")


def test_cli_rejects_unknown_rule_listing_available(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "no-such-flow-rule", "src"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule(s): no-such-flow-rule" in err
    for rule in default_flow_rules():
        assert rule.id in err


def test_cli_list_rules_names_every_flow_rule():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["--list-rules"])
    assert code == 0
    listed = buffer.getvalue()
    for rule in default_flow_rules():
        assert rule.id in listed


def test_cli_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "repro" / "experiments" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n\n\n"
        "def build(name):\n"
        "    return canonical_digest(f'{name}:{time.time()}')\n")
    assert main([str(tmp_path)]) == 1
    assert "flow-cache-key-purity" in capsys.readouterr().out
    # Selecting a different rule leaves the violation out of scope.
    assert main(["--select", "flow-fork-safety", str(tmp_path)]) == 0


def test_cli_sarif_format(repo_src):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["--format", "sarif", str(repo_src)])
    assert code == 0
    payload = json.loads(buffer.getvalue())
    assert payload["version"] == "2.1.0"
    driver = payload["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-flow"
    listed = {rule["id"] for rule in driver["rules"]}
    assert {rule.id for rule in default_flow_rules()} <= listed


def test_cli_json_format_carries_schema_version(repo_src):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["--format", "json", str(repo_src)])
    assert code == 0
    payload = json.loads(buffer.getvalue())
    assert payload["format"] == "repro-flow-v1"
    assert payload["schema_version"] == 2


def test_cli_callgraph_mode(tmp_path, capsys):
    mod = tmp_path / "repro" / "experiments" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("def a():\n    return b()\n\n\ndef b():\n"
                   "    return 0\n")
    assert main(["--callgraph", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "repro.experiments.mod.a -> repro.experiments.mod.b:2" \
        in out
