"""Shared fixtures for the repro-flow test suite.

``flow_tree`` materializes fixture files under a synthetic package
tree and runs the flow analyzer over it; ``flow_findings`` narrows to
the unwaived findings.  Every positive rule fixture is asserted twice
— with summaries on (finding present) and with ``interprocedural=
False`` (finding absent) — proving the finding genuinely needs the
cross-function step.
"""

import textwrap

import pytest

from repro.analysis.flow import FlowAnalyzer


@pytest.fixture
def flow_tree(tmp_path):
    def run(files, select=None, interprocedural=True):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        analyzer = FlowAnalyzer(interprocedural=interprocedural)
        return analyzer.run([tmp_path], select=select)
    return run


@pytest.fixture
def flow_findings(flow_tree):
    def run(files, select=None, interprocedural=True):
        report = flow_tree(files, select=select,
                           interprocedural=interprocedural)
        return report.unwaived
    return run
