"""Lattice laws and worklist-solver properties (hypothesis).

The solver's contract: for monotone steps over a finite lattice it
terminates at the least fixpoint, regardless of graph shape (cycles
included) or the order nodes are seeded.  The properties check it
against a brute-force round-robin iteration on randomized dependency
graphs.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.flow.lattice import (EMPTY, concrete, fixpoint,
                                         join, markers, param_label)

LABELS = st.frozensets(
    st.sampled_from(["wallclock", "env", "random", "storepath"]),
    max_size=4)


@given(LABELS, LABELS, LABELS)
def test_join_is_a_semilattice(a, b, c):
    assert join(a, a) == a
    assert join(a, b) == join(b, a)
    assert join(join(a, b), c) == join(a, join(b, c))
    assert join(a, EMPTY) == a
    assert a <= join(a, b) and b <= join(a, b)


@given(LABELS)
def test_concrete_and_markers_partition(a):
    tainted = a | {param_label(0), param_label(3)}
    assert concrete(tainted) == a
    assert markers(tainted) == {param_label(0), param_label(3)}
    assert concrete(tainted) | markers(tainted) == tainted


#: Random dependency graphs: node -> (seed labels, input nodes).
GRAPHS = st.integers(min_value=1, max_value=7).flatmap(
    lambda n: st.fixed_dictionaries({
        node: st.tuples(
            LABELS,
            st.lists(st.integers(min_value=0, max_value=n - 1),
                     max_size=3))
        for node in range(n)}))


def _brute_force(graph):
    values = {node: EMPTY for node in graph}
    changed = True
    while changed:
        changed = False
        for node, (seed, inputs) in graph.items():
            new = join(seed, *(values[i] for i in inputs))
            if new != values[node]:
                values[node] = new
                changed = True
    return values


@settings(max_examples=200)
@given(GRAPHS)
def test_fixpoint_matches_brute_force(graph):
    def dependents(node):
        return [m for m, (_, inputs) in graph.items() if node in inputs]

    def step(node, values):
        seed, inputs = graph[node]
        return join(seed, *(values[i] for i in inputs))

    solved = fixpoint(sorted(graph), dependents, step, EMPTY)
    assert solved == _brute_force(graph)


@settings(max_examples=100)
@given(GRAPHS, st.randoms(use_true_random=False))
def test_fixpoint_is_order_independent(graph, rng):
    def dependents(node):
        return [m for m, (_, inputs) in graph.items() if node in inputs]

    def step(node, values):
        seed, inputs = graph[node]
        return join(seed, *(values[i] for i in inputs))

    ordered = fixpoint(sorted(graph), dependents, step, EMPTY)
    shuffled_nodes = sorted(graph)
    rng.shuffle(shuffled_nodes)
    assert fixpoint(shuffled_nodes, dependents, step, EMPTY) == ordered


def test_fixpoint_converges_on_a_cycle():
    # a <-> b feeding each other plus their own seeds: the classic
    # shape that diverges if growth is unbounded.
    graph = {0: (frozenset({"wallclock"}), [1]),
             1: (frozenset({"env"}), [0])}

    def dependents(node):
        return [1 - node]

    def step(node, values):
        seed, inputs = graph[node]
        return join(seed, *(values[i] for i in inputs))

    solved = fixpoint([0, 1], dependents, step, EMPTY)
    assert solved[0] == solved[1] == frozenset({"wallclock", "env"})
