"""Call-graph golden test over the on-disk fixture package.

The fixture exercises the resolution forms the graph must see through:
a module alias (``from pkg import beta as b``), a renamed class import
(``from pkg.gamma import Widget as W``), constructor-typed receivers
(``widget = W(...); widget.spin()``), ``self.method()`` dispatch, and
the ping/pong call cycle between two modules.
"""

from pathlib import Path

from repro.analysis.flow import Project, build_callgraph
from repro.analysis.flow.callgraph import callers_map, render_callgraph

FIXTURE = Path(__file__).parent / "fixtures" / "callgraph"
GOLDEN = FIXTURE / "golden.txt"


def _edges():
    project = Project.load([FIXTURE])
    return build_callgraph(project)


def test_callgraph_matches_golden():
    rendered = "\n".join(render_callgraph(_edges())) + "\n"
    assert rendered == GOLDEN.read_text()


def test_callgraph_is_deterministic():
    first = "\n".join(render_callgraph(_edges()))
    second = "\n".join(render_callgraph(_edges()))
    assert first == second


def test_cycle_appears_in_both_directions():
    callers = callers_map(_edges())
    assert "pkg.beta.pong" in callers["pkg.alpha.ping"]
    assert "pkg.alpha.ping" in callers["pkg.beta.pong"]


def test_constructor_edge_targets_the_class_qualname():
    edges = {(e.caller, e.callee) for e in _edges()}
    assert ("pkg.alpha.use", "pkg.gamma.Widget") in edges
    assert ("pkg.gamma.Widget.spin",
            "pkg.gamma.Widget.helper") in edges
