"""Aliased imports (module alias + renamed class) and a call cycle."""

from pkg import beta as b
from pkg.gamma import Widget as W


def ping(n):
    if n:
        return b.pong(n - 1)
    return 0


def use():
    widget = W("x")
    widget.spin()
    return ping(3)
