"""Closes the ping/pong cycle back into alpha."""

from pkg import alpha


def pong(n):
    return alpha.ping(n)
