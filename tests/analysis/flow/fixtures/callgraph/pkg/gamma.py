"""A class whose methods call each other through ``self``."""


class Widget:
    def __init__(self, name):
        self.name = name

    def spin(self):
        return self.helper()

    def helper(self):
        return 1
