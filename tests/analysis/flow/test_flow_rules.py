"""One positive + one negative fixture per flow rule.

Each positive case routes the taint through a helper function (or a
callee's summary), so it is only visible to the interprocedural step:
the same fixture run with ``interprocedural=False`` must stay clean.
"""


def rules_of(findings):
    return [(f.rule, f.line) for f in findings]


# -- flow-cache-key-purity ------------------------------------------------


CACHE_KEY_POSITIVE = {
    "repro/experiments/helper.py": """\
        import time


        def stamp():
            return time.time()
    """,
    "repro/experiments/keys.py": """\
        from repro.experiments.helper import stamp


        def build_key(name):
            return canonical_digest(f"{name}:{stamp()}")
    """,
}


def test_cache_key_purity_through_helper(flow_findings):
    findings = flow_findings(CACHE_KEY_POSITIVE)
    assert [f.rule for f in findings] == ["flow-cache-key-purity"]
    assert findings[0].path == "repro/experiments/keys.py"
    assert "wallclock" in findings[0].message


def test_cache_key_purity_needs_interprocedural(flow_findings):
    assert flow_findings(CACHE_KEY_POSITIVE,
                         interprocedural=False) == []


def test_cache_key_purity_sanitizer_clears(flow_findings):
    files = dict(CACHE_KEY_POSITIVE)
    files["repro/experiments/keys.py"] = """\
        from repro.experiments.helper import stamp


        # repro-flow: sanitizer[wallclock] -- rounds to the sweep epoch
        def coarse(value):
            return round(value)


        def build_key(name):
            return canonical_digest(f"{name}:{coarse(stamp())}")
    """
    assert flow_findings(files) == []


# -- flow-lock-discipline -------------------------------------------------


LOCK_POSITIVE = {
    "repro/experiments/store.py": """\
        def dump(path, payload):
            path.write_text(payload)


        def persist(cache_dir, payload):
            dump(cache_dir / "results.json", payload)
    """,
}


def test_lock_discipline_through_helper(flow_findings):
    findings = flow_findings(LOCK_POSITIVE)
    assert [f.rule for f in findings] == ["flow-lock-discipline"]
    # Reported at the caller (where the store path enters), with the
    # via chain naming the helper that performs the raw write.
    assert findings[0].line == 6
    assert "dump" in findings[0].message


def test_lock_discipline_needs_interprocedural(flow_findings):
    assert flow_findings(LOCK_POSITIVE, interprocedural=False) == []


def test_lock_discipline_guarded_is_clean(flow_findings):
    files = {
        "repro/experiments/store.py": """\
            class FileLock:
                def __init__(self, path):
                    self.path = path

                def __enter__(self):
                    return self

                def __exit__(self, *exc):
                    return None


            def dump(path, payload):
                path.write_text(payload)


            def persist(cache_dir, payload):
                with FileLock(cache_dir / "lock"):
                    dump(cache_dir / "results.json", payload)
        """,
    }
    assert flow_findings(files) == []


def test_lock_discipline_trusted_write_is_clean(flow_findings):
    files = {
        "repro/experiments/store.py": """\
            # repro-flow: trusted-write -- test double of the atomic writer
            def atomic_dump(path, payload):
                path.write_text(payload)


            def persist(cache_dir, payload):
                atomic_dump(cache_dir / "results.json", payload)
        """,
    }
    assert flow_findings(files) == []


# -- flow-fork-safety -----------------------------------------------------


FORK_POSITIVE = {
    "repro/experiments/fork.py": """\
        class Job:
            def __init__(self, payload):
                self.payload = payload


        def make_job(core):
            sink = core.enable_telemetry()
            return Job(sink)


        def launch(pool, core):
            job = make_job(core)
            pool.submit(job)
    """,
}


def test_fork_safety_through_helper(flow_findings):
    findings = flow_findings(FORK_POSITIVE)
    assert [f.rule for f in findings] == ["flow-fork-safety"]
    assert findings[0].line == 13
    assert "proclocal" in findings[0].message


def test_fork_safety_needs_interprocedural(flow_findings):
    assert flow_findings(FORK_POSITIVE, interprocedural=False) == []


def test_fork_safety_plain_payload_is_clean(flow_findings):
    files = {
        "repro/experiments/fork.py": """\
            def make_spec(core):
                return {"workload": "seeded"}


            def launch(pool, core):
                spec = make_spec(core)
                pool.submit(spec)
        """,
    }
    assert flow_findings(files) == []


# -- flow-telemetry-purity ------------------------------------------------


TELEMETRY_POSITIVE = {
    "repro/uarch/model.py": """\
        class Model:
            def __init__(self):
                self.scale = 0

            def absorb(self, value):
                self.scale = value


        def feedback(core):
            model = Model()
            sink = core.enable_telemetry()
            reading = sink.counters()
            model.absorb(reading)
    """,
}


def test_telemetry_purity_through_method_summary(flow_findings):
    findings = flow_findings(TELEMETRY_POSITIVE)
    assert [f.rule for f in findings] == ["flow-telemetry-purity"]
    assert findings[0].line == 13
    assert "teldata" in findings[0].message


def test_telemetry_purity_needs_interprocedural(flow_findings):
    assert flow_findings(TELEMETRY_POSITIVE,
                         interprocedural=False) == []


def test_telemetry_purity_report_direction_is_clean(flow_findings):
    # The allowed direction: telemetry data flowing into *report*
    # state (metrics is not a model package).
    files = {
        "repro/metrics/view.py": """\
            class View:
                def __init__(self):
                    self.reading = 0

                def absorb(self, value):
                    self.reading = value


            def collect(core):
                view = View()
                sink = core.enable_telemetry()
                view.absorb(sink.counters())
        """,
    }
    assert flow_findings(files) == []


# -- waivers and annotations under the flow tag ---------------------------


def test_flow_waiver_suppresses_and_carries_reason(flow_tree):
    files = dict(LOCK_POSITIVE)
    files["repro/experiments/store.py"] = """\
        def dump(path, payload):
            path.write_text(payload)


        def persist(cache_dir, payload):
            # repro-flow: waive[flow-lock-discipline] -- single writer by construction
            dump(cache_dir / "results.json", payload)
    """
    report = flow_tree(files)
    assert report.unwaived == []
    assert [f.rule for f in report.waived] == ["flow-lock-discipline"]
    assert report.waived[0].waive_reason \
        == "single writer by construction"


def test_flow_waiver_without_reason_is_bad(flow_findings):
    findings = flow_findings({
        "repro/experiments/mod.py": """\
            # repro-flow: waive[flow-lock-discipline]
            x = 1
        """,
    })
    assert [f.rule for f in findings] == ["bad-waiver"]


def test_unused_flow_waiver_warns(flow_findings):
    findings = flow_findings({
        "repro/experiments/mod.py": """\
            x = 1  # repro-flow: waive[flow-fork-safety] -- nothing here
        """,
    })
    assert [(f.rule, f.severity.value) for f in findings] \
        == [("unused-waiver", "warning")]


def test_annotation_without_reason_is_bad(flow_findings):
    findings = flow_findings({
        "repro/experiments/mod.py": """\
            # repro-flow: sanitizer[wallclock]
            def clean(value):
                return value
        """,
    })
    assert [f.rule for f in findings] == ["bad-annotation"]


def test_sanitizer_with_unknown_label_is_bad(flow_findings):
    findings = flow_findings({
        "repro/experiments/mod.py": """\
            # repro-flow: sanitizer[notalabel] -- oops
            def clean(value):
                return value
        """,
    })
    assert [f.rule for f in findings] == ["bad-annotation"]
    assert "unknown label" in findings[0].message


def test_declared_sink_annotation_is_enforced(flow_findings):
    files = {
        "repro/experiments/mod.py": """\
            import time


            # repro-flow: sink[flow-cache-key-purity] -- addresses the shared store
            def my_key(payload):
                return str(payload)


            def build(name):
                return my_key(f"{name}:{time.time()}")
        """,
    }
    findings = flow_findings(files)
    assert [f.rule for f in findings] == ["flow-cache-key-purity"]
    assert "my_key" in findings[0].message
