"""Positive + negative fixture per lint rule.

Each rule gets at least one fixture that must trip it and one that must
stay clean — the clean one being the sanctioned idiom the rule's
docstring points to.
"""


def rules_hit(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


# -- no-wallclock -----------------------------------------------------------------

def test_wallclock_flagged_in_model_package(lint_one):
    findings = lint_one("repro/uarch/mod.py", """\
        import time
        from datetime import datetime
    """)
    hits = rules_hit(findings, "no-wallclock")
    assert len(hits) == 2
    assert hits[0].line == 1 and hits[1].line == 2


def test_wallclock_allowed_outside_model_packages(lint_one):
    findings = lint_one("repro/telemetry/mod.py", """\
        import time

        def stamp():
            return time.time()
    """)
    assert not rules_hit(findings, "no-wallclock")


# -- no-unseeded-random -----------------------------------------------------------

def test_unseeded_random_flagged(lint_one):
    findings = lint_one("repro/workloads/mod.py", """\
        import random
        from random import choice
        import os

        def gen():
            random.shuffle([1, 2])
            rng = random.Random()
            return os.urandom(4)
    """)
    messages = [f.message for f in rules_hit(findings, "no-unseeded-random")]
    assert len(messages) == 4
    assert any("random.shuffle" in m for m in messages)
    assert any("without a seed" in m for m in messages)
    assert any("os.urandom" in m for m in messages)
    assert any("from random import choice" in m for m in messages)


def test_seeded_random_is_clean(lint_one):
    findings = lint_one("repro/workloads/mod.py", """\
        from random import Random

        def gen(seed):
            rng = Random(seed)
            return rng.randrange(10)
    """)
    assert not rules_hit(findings, "no-unseeded-random")


def test_random_unscoped_outside_model_packages(lint_one):
    findings = lint_one("repro/metrics/mod.py", """\
        import random

        def jitter():
            return random.random()
    """)
    assert not rules_hit(findings, "no-unseeded-random")


# -- sorted-serialization ---------------------------------------------------------

def test_unsorted_json_dump_flagged(lint_one):
    findings = lint_one("repro/metrics/mod.py", """\
        import json

        def save(payload):
            return json.dumps(payload)
    """)
    hits = rules_hit(findings, "sorted-serialization")
    assert len(hits) == 1 and "sort_keys" in hits[0].message


def test_unordered_feed_flagged(lint_one):
    findings = lint_one("repro/metrics/mod.py", """\
        import json

        def save(writer, payload):
            writer.writerows(payload.values())
            return json.dumps(list(payload.keys()), sort_keys=True)
    """)
    hits = rules_hit(findings, "sorted-serialization")
    assert len(hits) == 2
    assert all("sorted(...)" in f.message for f in hits)


def test_sorted_serialization_clean(lint_one):
    findings = lint_one("repro/metrics/mod.py", """\
        import json

        def save(writer, payload):
            writer.writerows(sorted(payload.items()))
            return json.dumps(payload, indent=1, sort_keys=True)
    """)
    assert not rules_hit(findings, "sorted-serialization")


# -- no-builtin-hash --------------------------------------------------------------

def test_builtin_hash_flagged(lint_one):
    findings = lint_one("repro/experiments/mod.py", """\
        def key(config):
            return hash(config)
    """)
    assert len(rules_hit(findings, "no-builtin-hash")) == 1


def test_hashlib_is_clean(lint_one):
    findings = lint_one("repro/experiments/mod.py", """\
        import hashlib

        def key(config):
            return hashlib.sha256(repr(config).encode()).hexdigest()
    """)
    assert not rules_hit(findings, "no-builtin-hash")


# -- atomic-write -----------------------------------------------------------------

def test_handrolled_atomic_write_flagged(lint_one):
    findings = lint_one("repro/experiments/mod.py", """\
        import os
        import tempfile

        def store(path, data):
            fd, tmp = tempfile.mkstemp(dir=".")
            os.replace(tmp, path)
    """)
    messages = [f.message for f in rules_hit(findings, "atomic-write")]
    assert len(messages) == 2
    assert any("tempfile.mkstemp" in m for m in messages)
    assert any("os.replace" in m for m in messages)


def test_atomic_write_allowed_in_util(lint_one):
    findings = lint_one("repro/util/mod.py", """\
        import os
        import tempfile

        def atomic(path, data):
            fd, tmp = tempfile.mkstemp(dir=".")
            os.replace(tmp, path)
    """)
    assert not rules_hit(findings, "atomic-write")


def test_helper_call_is_clean(lint_one):
    findings = lint_one("repro/experiments/mod.py", """\
        from ..util.locking import atomic_write_text

        def store(path, data):
            atomic_write_text(path, data)
    """)
    assert not rules_hit(findings, "atomic-write")


# -- telemetry-purity -------------------------------------------------------------

def test_telemetry_mutation_flagged(lint_one):
    findings = lint_one("repro/telemetry/mod.py", """\
        class Sink:
            def observe(self, core):
                core.cycle = 0
                core.stats.committed += 1
                core.rob[0] = None
    """)
    hits = rules_hit(findings, "telemetry-purity")
    assert len(hits) == 3
    assert all("'core'" in f.message for f in hits)


def test_telemetry_observation_is_clean(lint_one):
    findings = lint_one("repro/telemetry/mod.py", """\
        class Sink:
            def observe(self, core):
                self.last_cycle = core.cycle
                self.rows[core.cycle] = core.stats.committed
                snapshot = dict(core.stats.__dict__)
    """)
    assert not rules_hit(findings, "telemetry-purity")


def test_telemetry_purity_scoped_to_telemetry(lint_one):
    findings = lint_one("repro/uarch/mod.py", """\
        def tick(core):
            core.cycle += 1
    """)
    assert not rules_hit(findings, "telemetry-purity")


# -- float-free-counters ----------------------------------------------------------

def test_float_field_flagged(lint_one):
    findings = lint_one("repro/metrics/mod.py", """\
        from dataclasses import dataclass

        @dataclass
        class SimStats:
            cycles: int = 0
            ipc: float = 0.0
            committed = 1.5
    """)
    hits = rules_hit(findings, "float-free-counters")
    assert len(hits) == 1 and "ipc" in hits[0].message


def test_int_counters_with_property_clean(lint_one):
    findings = lint_one("repro/metrics/mod.py", """\
        from dataclasses import dataclass

        @dataclass
        class SimStats:
            cycles: int = 0
            committed: int = 0

            @property
            def ipc(self) -> float:
                return self.committed / self.cycles if self.cycles else 0.0
    """)
    assert not rules_hit(findings, "float-free-counters")


# -- main-guard -------------------------------------------------------------------

def test_unguarded_cli_flagged(lint_one):
    findings = lint_one("repro/experiments/cli_mod.py", """\
        import argparse

        def main():
            parser = argparse.ArgumentParser()
            parser.parse_args()

        main()
    """)
    hits = rules_hit(findings, "main-guard")
    assert len(hits) == 1 and hits[0].line == 0


def test_guarded_cli_clean(lint_one):
    findings = lint_one("repro/experiments/cli_mod.py", """\
        import argparse

        def main():
            parser = argparse.ArgumentParser()
            parser.parse_args()

        if __name__ == "__main__":
            main()
    """)
    assert not rules_hit(findings, "main-guard")


def test_non_cli_module_needs_no_guard(lint_one):
    findings = lint_one("repro/experiments/mod.py", """\
        def helper():
            return 1
    """)
    assert not rules_hit(findings, "main-guard")


# -- kernel-purity ----------------------------------------------------------------

def test_kernel_purity_flags_mypyc_hostile_patterns(lint_one):
    findings = lint_one("repro/uarch/_kernel/mod.py", """\
        _SCRATCH = []
        TABLE: dict = {}

        def hot(a, **extras):
            return getattr(a, "field")

        def no_return_annotation(x: int):
            setattr(x, "y", 1)
    """)
    messages = [f.message for f in rules_hit(findings, "kernel-purity")]
    assert len(messages) == 8  # hot() also lacks a return annotation
    assert any("_SCRATCH" in m and "a list" in m for m in messages)
    assert any("TABLE" in m and "a dict" in m for m in messages)
    assert any("**extras" in m for m in messages)
    assert any("unannotated parameter(s) a" in m for m in messages)
    assert any("getattr()" in m for m in messages)
    assert any("setattr()" in m for m in messages)
    assert any("no_return_annotation() has no return annotation" in m
               for m in messages)


def test_kernel_purity_accepts_the_sanctioned_idiom(lint_one):
    findings = lint_one("repro/uarch/_kernel/mod.py", """\
        from typing import List, Tuple

        SHIFT: int = 20
        NAMES: Tuple[str, ...] = ("a", "b")


        class Pool:
            slots: List[int]

            def __init__(self, capacity: int) -> None:
                self.slots = [0] * capacity

            def alloc(self, seq: int, *, cycle: int) -> int:
                return seq + cycle
    """)
    assert not rules_hit(findings, "kernel-purity")


def test_kernel_purity_scoped_to_kernel_package(lint_one):
    findings = lint_one("repro/uarch/mod.py", """\
        _CACHE = {}

        def loose(a, **kw):
            return getattr(a, "x")
    """)
    assert not rules_hit(findings, "kernel-purity")


# -- monotonic-tracing ------------------------------------------------------------

def test_wallclock_flagged_in_tracing_modules(lint_one):
    findings = lint_one("repro/telemetry/spans.py", """\
        import time

        def stamp(record):
            record["t_start"] = time.time()
    """)
    assert rules_hit(findings, "monotonic-tracing")


def test_datetime_import_flagged_in_tracing_modules(lint_one):
    findings = lint_one("repro/telemetry/progress.py", """\
        from datetime import datetime

        def stamp():
            return datetime.now().isoformat()
    """)
    assert rules_hit(findings, "monotonic-tracing")


def test_aliased_wallclock_read_flagged(lint_one):
    findings = lint_one("repro/telemetry/progress.py", """\
        from time import time as now

        def stamp():
            return now()
    """)
    assert rules_hit(findings, "monotonic-tracing")


def test_monotonic_clocks_allowed_in_tracing_modules(lint_one):
    findings = lint_one("repro/telemetry/spans.py", """\
        import time

        def width(start):
            time.sleep(0)
            return time.perf_counter() - start

        def age(then):
            return time.monotonic() - then
    """)
    assert not rules_hit(findings, "monotonic-tracing")


def test_monotonic_rule_scoped_to_tracing_modules(lint_one):
    # Other telemetry modules (e.g. manifests) legitimately stamp
    # wallclock; only spans.py/progress.py are in scope.
    findings = lint_one("repro/telemetry/manifest.py", """\
        import time

        def created():
            return time.time()
    """)
    assert not rules_hit(findings, "monotonic-tracing")


# -- select / framework behaviour -------------------------------------------------

def test_select_restricts_rules(lint_one):
    findings = lint_one("repro/uarch/mod.py", """\
        import time

        def key(x):
            return hash(x)
    """, select=["no-builtin-hash"])
    assert {f.rule for f in findings} == {"no-builtin-hash"}


def test_syntax_error_is_a_finding(lint_one):
    findings = lint_one("repro/uarch/mod.py", "def broken(:\n")
    assert [f.rule for f in findings] == ["syntax-error"]
