"""Reporter output: exact text format, JSON shape, byte stability."""

import json

from repro.analysis.reporters import (REPORT_FORMAT, render_json,
                                      render_text, severity_counts)

FIXTURE = {"repro/experiments/mod.py": """\
    def key(x):
        return hash(x)

    def key2(x):
        return hash(x)  # repro-lint: waive[no-builtin-hash] -- memo key, never persisted
"""}


def test_text_report_exact(lint_tree):
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    assert render_text(report) == (
        "repro/experiments/mod.py:2: error [no-builtin-hash] builtin "
        "hash() is salted per process (PYTHONHASHSEED); use hashlib "
        "for any value that crosses a process boundary\n"
        "1 error(s), 0 warning(s), 1 waived, 1 file(s) checked\n")


def test_text_report_show_waived(lint_tree):
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    text = render_text(report, show_waived=True)
    assert "mod.py:5: waived [no-builtin-hash]" in text
    assert "waiver: memo key, never persisted" in text


def test_json_report_shape(lint_tree):
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    payload = json.loads(render_json(report))
    assert payload["format"] == REPORT_FORMAT
    assert payload["exit_code"] == 1
    assert payload["files_checked"] == 1
    assert payload["rules_run"] == ["no-builtin-hash"]
    assert payload["summary"] == {"errors": 1, "waived": 1,
                                  "warnings": 0}
    kinds = [(f["line"], f["waived"]) for f in payload["findings"]]
    assert kinds == [(2, False), (5, True)]


def test_reports_are_byte_stable(lint_tree):
    first = lint_tree(FIXTURE)
    second = lint_tree(FIXTURE)
    assert render_text(first, show_waived=True) \
        == render_text(second, show_waived=True)
    assert render_json(first) == render_json(second)


def test_severity_counts(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        x = 1  # repro-lint: waive[no-builtin-hash] -- nothing here

        def key(y):
            return hash(y)
    """})
    assert severity_counts(report) == {"error": 1, "warning": 1}
