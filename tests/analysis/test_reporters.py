"""Reporter output: exact text format, JSON/SARIF shape, byte
stability."""

import json

from repro.analysis.reporters import (REPORT_FORMAT, SARIF_VERSION,
                                      SCHEMA_VERSION, render_json,
                                      render_sarif, render_text,
                                      severity_counts)

FIXTURE = {"repro/experiments/mod.py": """\
    def key(x):
        return hash(x)

    def key2(x):
        return hash(x)  # repro-lint: waive[no-builtin-hash] -- memo key, never persisted
"""}


def test_text_report_exact(lint_tree):
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    assert render_text(report) == (
        "repro/experiments/mod.py:2: error [no-builtin-hash] builtin "
        "hash() is salted per process (PYTHONHASHSEED); use hashlib "
        "for any value that crosses a process boundary\n"
        "1 error(s), 0 warning(s), 1 waived, 1 file(s) checked\n")


def test_text_report_show_waived(lint_tree):
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    text = render_text(report, show_waived=True)
    assert "mod.py:5: waived [no-builtin-hash]" in text
    assert "waiver: memo key, never persisted" in text


def test_json_report_shape(lint_tree):
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    payload = json.loads(render_json(report))
    assert payload["format"] == REPORT_FORMAT
    assert payload["exit_code"] == 1
    assert payload["files_checked"] == 1
    assert payload["rules_run"] == ["no-builtin-hash"]
    assert payload["summary"] == {"errors": 1, "waived": 1,
                                  "warnings": 0}
    kinds = [(f["line"], f["waived"]) for f in payload["findings"]]
    assert kinds == [(2, False), (5, True)]


def test_reports_are_byte_stable(lint_tree):
    first = lint_tree(FIXTURE)
    second = lint_tree(FIXTURE)
    assert render_text(first, show_waived=True) \
        == render_text(second, show_waived=True)
    assert render_json(first) == render_json(second)
    assert render_sarif(first) == render_sarif(second)


def test_json_schema_version_pinned(lint_tree):
    # The version constant and the payload field move together; bump
    # both (and this pin) when the layout changes shape.
    assert SCHEMA_VERSION == 2
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    payload = json.loads(render_json(report))
    assert payload["schema_version"] == 2


def test_sarif_shape(lint_tree):
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    payload = json.loads(render_sarif(
        report, rules=[("no-builtin-hash", "hash() is salted")]))
    assert payload["version"] == SARIF_VERSION == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rules = {r["id"]: r["shortDescription"]["text"]
             for r in run["tool"]["driver"]["rules"]}
    assert rules["no-builtin-hash"] == "hash() is salted"
    levels = [(r["ruleId"], r["level"]) for r in run["results"]]
    assert levels == [("no-builtin-hash", "error")] * 2
    region = run["results"][0]["locations"][0]["physicalLocation"]
    assert region["artifactLocation"]["uri"] \
        == "repro/experiments/mod.py"
    assert region["region"] == {"startLine": 2}


def test_sarif_waived_findings_become_suppressions(lint_tree):
    report = lint_tree(FIXTURE, select=["no-builtin-hash"])
    payload = json.loads(render_sarif(report))
    suppressed = [r for r in payload["runs"][0]["results"]
                  if "suppressions" in r]
    assert len(suppressed) == 1
    assert suppressed[0]["suppressions"][0]["justification"] \
        == "memo key, never persisted"


def test_severity_counts(lint_tree):
    report = lint_tree({"repro/experiments/mod.py": """\
        x = 1  # repro-lint: waive[no-builtin-hash] -- nothing here

        def key(y):
            return hash(y)
    """})
    assert severity_counts(report) == {"error": 1, "warning": 1}
