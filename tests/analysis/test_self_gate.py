"""The shipped gates, run as tests.

``repro-lint src/`` exiting 0 is an acceptance criterion of the tree,
not just of CI — so the suite runs the same gate.  The mypy gate runs
only where mypy is installed (CI installs it; the runtime environment
does not need it).
"""

import io
import subprocess
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.analysis import Analyzer, default_rules
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_source_tree_is_lint_clean(repo_src):
    report = Analyzer(default_rules()).run([repo_src])
    assert [f.as_dict() for f in report.unwaived] == []
    # Waivers carry their justification or they would be findings.
    assert all(f.waive_reason for f in report.waived)


def test_cli_gate_exits_zero_on_src(repo_src):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main([str(repo_src)])
    assert code == 0
    assert buffer.getvalue().strip().endswith("file(s) checked")


def test_cli_list_rules_names_every_default_rule():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["--list-rules"])
    assert code == 0
    listed = buffer.getvalue()
    for rule in default_rules():
        assert rule.id in listed


def test_cli_rejects_unknown_rule_listing_available(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "no-such-rule", "src"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown rule(s): no-such-rule" in err
    assert "available:" in err
    assert "no-builtin-hash" in err


def test_cli_json_format(repo_src):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["--format", "json", str(repo_src)])
    assert code == 0
    assert buffer.getvalue().startswith("{")


def test_cli_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "repro" / "uarch" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n")
    assert main([str(tmp_path)]) == 1
    assert "no-wallclock" in capsys.readouterr().out


def test_mypy_gate():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
