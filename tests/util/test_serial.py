"""canonical_dumps: byte compatibility + the invariants it enforces."""

import json

import pytest

from repro.util import canonical_dumps, validate_canonical


class TestByteCompatibility:
    def test_identical_to_sorted_dumps(self):
        payload = {"b": 1, "a": [1, 2, {"z": None, "y": True}],
                   "c": {"nested": "x"}}
        assert canonical_dumps(payload) == json.dumps(
            payload, indent=1, sort_keys=True)

    def test_int_keys_sort_numerically(self):
        payload = {10: "ten", 2: "two"}
        text = canonical_dumps(payload)
        assert text == json.dumps(payload, indent=1, sort_keys=True)
        assert text.index('"2"') < text.index('"10"')

    def test_insertion_order_is_erased(self):
        assert canonical_dumps({"a": 1, "b": 2}) \
            == canonical_dumps({"b": 2, "a": 1})

    def test_indent_none_compact_form(self):
        assert canonical_dumps({"b": 1, "a": 2}, indent=None) \
            == '{"a": 2, "b": 1}'


class TestRejections:
    def test_mixed_key_types(self):
        with pytest.raises(ValueError, match="mixed str/int"):
            canonical_dumps({"1": "str", 2: "int"})

    def test_mixed_keys_in_nested_dict_named_in_context(self):
        with pytest.raises(ValueError, match=r"payload\['outer'\]"):
            canonical_dumps({"outer": {"1": 0, 2: 0}})

    def test_bool_keys(self):
        with pytest.raises(ValueError, match="bool dict keys"):
            canonical_dumps({True: 1})

    def test_unsortable_key_type(self):
        with pytest.raises(ValueError, match="unsortable dict key"):
            canonical_dumps({(1, 2): "tuple key"})

    def test_non_finite_float(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_dumps({"x": float("nan")})

    def test_non_jsonable_object(self):
        with pytest.raises(ValueError, match="not JSON-representable"):
            canonical_dumps({"x": object()})


class TestValidateCanonical:
    def test_accepts_canonical_payloads(self):
        validate_canonical({"a": [1, 2.5, "s", None, False],
                            "b": {2: "int-keyed", 10: "histogram"}})

    def test_walks_lists_and_tuples(self):
        with pytest.raises(ValueError, match=r"payload\[1\]\[0\]"):
            validate_canonical(["fine", [{1: 0, "1": 0}]])
