"""atomic_write_bytes/_text: the single sanctioned store-write path."""

import pytest

from repro.util import atomic_write_bytes, atomic_write_text


def test_writes_bytes(tmp_path):
    target = tmp_path / "store" / "entry.bin"
    atomic_write_bytes(target, b"\x00payload")
    assert target.read_bytes() == b"\x00payload"


def test_writes_text(tmp_path):
    target = tmp_path / "entry.json"
    atomic_write_text(target, '{"a": 1}\n')
    assert target.read_text() == '{"a": 1}\n'


def test_creates_parent_directories(tmp_path):
    target = tmp_path / "a" / "b" / "c.txt"
    atomic_write_text(target, "deep")
    assert target.read_text() == "deep"


def test_replaces_existing_content(tmp_path):
    target = tmp_path / "entry.txt"
    atomic_write_text(target, "old")
    atomic_write_text(target, "new")
    assert target.read_text() == "new"


def test_no_temp_files_left_behind(tmp_path):
    target = tmp_path / "entry.txt"
    atomic_write_text(target, "data")
    assert [p.name for p in tmp_path.iterdir()] == ["entry.txt"]


def test_failed_write_leaves_no_temp_and_keeps_old(tmp_path):
    target = tmp_path / "entry.txt"
    atomic_write_text(target, "original")

    class Exploding:
        def encode(self, encoding):
            return self  # not bytes: handle.write() raises

    with pytest.raises(TypeError):
        atomic_write_text(target, Exploding())
    assert target.read_text() == "original"
    assert [p.name for p in tmp_path.iterdir()] == ["entry.txt"]
