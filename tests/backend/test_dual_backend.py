"""Cross-backend byte-identity: the dual-backend test wall.

Every test here parameterizes over :func:`available_backends` — on a
pure-Python checkout that is ``("python",)`` and the cross-checks
degrade to determinism checks (same backend, two runs, identical
bytes); with the mypyc extension built (the CI ``compiled`` job) the
same tests compare the two implementations against each other:

* ``SimStats.canonical_json()`` byte-identical across backends for a
  representative config slice (the *full* golden corpus re-runs under
  ``REPRO_BACKEND=compiled`` in CI — this is the in-process variant);
* experiment cache files byte-identical, and the cache key free of any
  backend identity — a cached result must hit regardless of which
  backend produced or reads it;
* fresh kernel pool slots match the façade's ``_SCALAR_DEFAULTS`` spec
  table (the kernel writes its grow/reset code out field by field; this
  is the cross-check that keeps code and spec from drifting);
* the ``run_ff`` driver reports the same (pc, executed, status) triples.
"""

from pathlib import Path

import pytest

from repro import assemble
from repro.backend import available_backends, use
from repro.experiments.runner import ExperimentRunner
from repro.functional.compiled import CompiledProgram, HALT
from repro.functional.simulator import ArchState
from repro.uarch.config import (
    base_config,
    hybrid_config,
    ir_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore
from repro.workloads import get_workload

BACKENDS = available_backends()

CONFIGS = [base_config, ir_config, vp_config, hybrid_config]

INSTRUCTIONS = 2_000
MAX_CYCLES = 200_000


def _stats_bytes(backend_name, factory):
    with use(backend_name):
        spec = get_workload("compress")
        core = OutOfOrderCore(factory(), spec.program("ref"))
        core.skip(spec.skip_instructions)
        stats = core.run(max_cycles=MAX_CYCLES,
                         max_instructions=INSTRUCTIONS)
    return stats.canonical_json()


@pytest.mark.parametrize("factory", CONFIGS,
                         ids=lambda f: f.__name__)
def test_simstats_byte_identical_across_backends(factory):
    # One run per available backend, plus a repeat of the first: with a
    # single backend this still pins run-to-run determinism.
    runs = [(name, _stats_bytes(name, factory)) for name in BACKENDS]
    runs.append((f"{BACKENDS[0]} (repeat)",
                 _stats_bytes(BACKENDS[0], factory)))
    reference_name, reference = runs[0]
    for name, blob in runs[1:]:
        assert blob == reference, (
            f"SimStats diverge between {reference_name} and {name}")


def test_cache_files_byte_identical_across_backends(tmp_path):
    per_backend = {}
    for name in BACKENDS:
        cache = tmp_path / name
        with use(name):
            runner = ExperimentRunner(max_instructions=500,
                                      max_cycles=60_000,
                                      cache_dir=cache,
                                      manifests=False, quiet=True)
            runner.run("compress", base_config())
            runner.run("compress", ir_config())
        per_backend[name] = {p.name: p.read_bytes()
                             for p in cache.glob("*.json")}
    names = {frozenset(files) for files in per_backend.values()}
    assert len(names) == 1, "cache keys differ between backends"
    for filename in next(iter(names)):
        # The backend must never leak into the key: a million users on
        # mixed installs share one cache.
        assert "backend" not in filename
        assert "compiled" not in filename
        assert "python" not in filename
        blobs = {per_backend[name][filename] for name in per_backend}
        assert len(blobs) == 1, (
            f"cache file {filename} differs between backends")


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_fresh_slots_match_scalar_defaults(backend_name):
    """The kernel's explicit ``_grow`` matches the façade's spec table."""
    from repro.uarch.entry import _SCALAR_DEFAULTS
    with use(backend_name) as active:
        pool = active.entry_pool.EntryPool(8)
        for field, default in _SCALAR_DEFAULTS:
            column = getattr(pool, field)
            assert len(column) == 8, field
            for value in column:
                assert value == default, field
                assert type(value) is type(default), field


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_run_ff_statuses_and_state(backend_name):
    program = assemble("""
    main: li $t0, 3
    loop: addi $t0, $t0, -1
          bnez $t0, loop
          halt
    """)
    compiled = CompiledProgram(program)
    with use(backend_name) as active:
        ffexec = active.ffexec

        # Budget exhausted strictly before the halt.
        state = ArchState(program)
        pc, executed, status = ffexec.run_ff(
            compiled.ff_entry, HALT, state, state.pc, 2, False)
        assert (executed, status) == (2, ffexec.FF_BUDGET)

        # Run into the halt; the PC parks on it either way, and
        # execute_halt picks the caller's counting convention.
        state = ArchState(program)
        pc, executed, status = ffexec.run_ff(
            compiled.ff_entry, HALT, state, state.pc,
            ffexec.FF_UNBOUNDED, False)
        assert status == ffexec.FF_HALT
        assert executed == 7  # li + 3x(addi, bnez)
        halt_pc = pc
        state = ArchState(program)
        pc2, executed2, status2 = ffexec.run_ff(
            compiled.ff_entry, HALT, state, state.pc,
            ffexec.FF_UNBOUNDED, True)
        assert (pc2, executed2, status2) == (
            halt_pc, 8, ffexec.FF_HALT)

        # A PC with no instruction reports FF_BAD_PC (raising is the
        # caller's job).
        state = ArchState(program)
        pc3, executed3, status3 = ffexec.run_ff(
            lambda _pc: None, HALT, state, state.pc, 5, False)
        assert (executed3, status3) == (0, ffexec.FF_BAD_PC)
