"""Backend-selection semantics (repro.backend).

The contract under test:

* an unknown ``REPRO_BACKEND`` value and an explicit ``compiled``
  request without a built extension both **fail loudly**
  (:class:`BackendError`), in-process and end-to-end through the env
  variable;
* ``auto`` without the extension falls back to the interpreted kernel
  silently, leaving exactly one note on the ``repro.backend`` logger;
* ``activate``/``use`` switch and restore the cached choice;
* the façade (``repro.uarch.entry``) and the core's historical event
  constants resolve to the kernel's, identically on every backend.
"""

import logging
import os
import subprocess
import sys

import pytest

from repro import backend
from repro.backend import (
    BACKEND_CHOICES,
    BackendError,
    available_backends,
    compiled_available,
    get_backend,
    resolve_backend,
    use,
)


class TestResolution:
    def test_unknown_name_fails_loudly(self):
        with pytest.raises(BackendError, match="unknown REPRO_BACKEND"):
            resolve_backend("fortran")

    def test_choices_are_documented(self):
        assert BACKEND_CHOICES == ("auto", "python", "compiled")

    def test_python_always_available(self):
        assert "python" in available_backends()
        resolved = resolve_backend("python")
        assert resolved.name == "python"
        assert not resolved.compiled
        assert resolved.extension_version == ""
        assert resolved.summary() == "backend=python"

    def test_auto_resolves_to_an_available_backend(self):
        resolved = resolve_backend("auto")
        assert resolved.name in available_backends()
        assert resolved.requested == "auto"

    def test_compiled_absent_errors_loudly(self):
        if compiled_available():
            pytest.skip("compiled extension present in this environment")
        with pytest.raises(BackendError, match="REPRO_BACKEND=compiled"):
            resolve_backend("compiled")

    def test_auto_fallback_leaves_one_log_note(self, caplog):
        if compiled_available():
            pytest.skip("compiled extension present in this environment")
        with caplog.at_level(logging.INFO, logger="repro.backend"):
            resolved = resolve_backend("auto")
        assert resolved.name == "python"
        assert resolved.fallback_reason
        notes = [r for r in caplog.records if r.name == "repro.backend"]
        assert len(notes) == 1
        assert "interpreted kernel" in notes[0].getMessage()

    def test_explicit_python_never_logs_a_fallback(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.backend"):
            resolved = resolve_backend("python")
        assert resolved.fallback_reason == ""
        assert not [r for r in caplog.records
                    if r.name == "repro.backend"]


class TestActivation:
    def test_get_backend_is_cached(self):
        assert get_backend() is get_backend()

    def test_use_restores_previous_backend(self):
        before = get_backend()
        with use("python") as inner:
            assert get_backend() is inner
            assert inner.name == "python"
        assert get_backend() is before

    def test_activate_switches_the_cached_backend(self):
        before = get_backend()
        try:
            switched = backend.activate("python")
            assert get_backend() is switched
        finally:
            backend._active = before


class TestEnvEndToEnd:
    """The env variable drives a real process (subprocess: the cached
    selection is per-process state)."""

    def _run(self, value):
        env = dict(os.environ, REPRO_BACKEND=value)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-c",
             "from repro import OutOfOrderCore, assemble, base_config\n"
             "program = assemble('main: li $t0, 1\\nhalt\\n')\n"
             "stats = OutOfOrderCore(base_config(), program).run()\n"
             "from repro.backend import get_backend\n"
             "print(get_backend().name, stats.committed)\n"],
            capture_output=True, text=True, env=env, timeout=120)

    def test_compiled_env_fails_loudly_when_absent(self):
        if compiled_available():
            pytest.skip("compiled extension present in this environment")
        result = self._run("compiled")
        assert result.returncode != 0
        assert "REPRO_BACKEND=compiled" in result.stderr
        assert "REPRO_BUILD_COMPILED=1" in result.stderr  # how to fix it

    def test_auto_env_runs_on_an_available_backend(self):
        result = self._run("auto")
        assert result.returncode == 0, result.stderr
        name, committed = result.stdout.split()
        assert name in ("python", "compiled")
        assert int(committed) > 0

    def test_bad_env_value_fails_loudly(self):
        result = self._run("jit")
        assert result.returncode != 0
        assert "unknown REPRO_BACKEND" in result.stderr


class TestKernelConstantsParity:
    def test_facade_constants_match_kernel(self):
        from repro.uarch import entry
        from repro.uarch._kernel import entry_pool
        assert entry.SEQ_SHIFT == entry_pool.SEQ_SHIFT
        assert entry.IDX_MASK == entry_pool.IDX_MASK
        assert entry.REG_SHIFT == entry_pool.REG_SHIFT
        assert entry.REG_MASK == entry_pool.REG_MASK

    def test_core_event_constants_match_kernel(self):
        from repro.uarch import core
        from repro.uarch._kernel import events
        assert core._EVENT_COMPLETE == events.EVENT_COMPLETE
        assert core._EVENT_RESOLVE == events.EVENT_RESOLVE
        assert core._FAR_FUTURE == events.FAR_FUTURE

    def test_facade_resolves_classes_through_backend(self):
        from repro.uarch import entry
        active = get_backend()
        assert entry.EntryPool is active.entry_pool.EntryPool
        assert entry.CommittedOp is active.entry_pool.CommittedOp

    def test_facade_unknown_attribute_raises(self):
        from repro.uarch import entry
        with pytest.raises(AttributeError):
            entry.InflightOp
