"""Tests for the confidence-gated stride/LVP/FCM hybrid selector.

The selector's promise: per static instruction it converges on the
component whose model matches that instruction's value stream — LVP for
constants, stride for arithmetic sequences, FCM for repeating patterns —
and stays quiet when no component has earned confidence.
"""

import pytest

from repro.uarch.config import PredictorKind, VPConfig
from repro.vp.hybrid_select import COMPONENTS, HybridSelectPredictor
from repro.vp.predictors import make_predictor


def config(threshold=2, entries=64):
    return VPConfig(enabled=True, kind=PredictorKind.HYBRID_SELECT,
                    confidence_threshold=threshold, entries=entries)


def feed(p, pc, values):
    """Predict+train a committed sequence with no in-flight overlap."""
    results = []
    for value in values:
        results.append(p.predict_result(pc, value))
        p.train_result(pc, value, results[-1])
    return results


class TestComponentSelection:
    def test_constant_stream_predicted(self):
        results = feed(HybridSelectPredictor(config()), 0x1000, [42] * 12)
        assert results[-1] == 42

    def test_stride_stream_predicted(self):
        values = list(range(0, 80, 4))
        results = feed(HybridSelectPredictor(config()), 0x1000, values)
        assert results[-1] == values[-1]

    def test_alternating_stream_routed_to_fcm(self):
        p = HybridSelectPredictor(config())
        results = feed(p, 0x1000, [7, 9] * 14)
        assert results[-1] == 9
        assert p.component_predictions["fcm"] > 0

    def test_each_pc_converges_independently(self):
        p = HybridSelectPredictor(config())
        constant = feed(p, 0x1000, [5] * 14)
        alternating = feed(p, 0x2000, [7, 9] * 7)
        assert constant[-1] == 5
        assert alternating[-1] == 9

    def test_random_stream_stays_quiet(self):
        values = [1, 17, 5, 99, 3, 54, 23, 8, 71, 12, 66, 2]
        results = feed(HybridSelectPredictor(config()), 0x1000, values)
        assert all(r is None for r in results)


class TestSelectorState:
    def test_selector_entry_per_static_instruction(self):
        p = HybridSelectPredictor(config())
        feed(p, 0x1000, [1, 1, 1])
        feed(p, 0x2000, [2, 2, 2])
        assert len(p.selector) == 2

    def test_wrong_component_loses_confidence(self):
        p = HybridSelectPredictor(config())
        key = p.key(0x1000, 0)
        # Constant phase builds LVP confidence, then a stride phase
        # must drag the selector off the now-wrong LVP component.
        feed(p, 0x1000, [5] * 8)
        lvp_index = COMPONENTS.index("lvp")
        confident_before = p.selector[key][lvp_index]
        results = feed(p, 0x1000, list(range(100, 180, 4)))
        assert p.selector[key][lvp_index] < confident_before
        assert results[-1] == 176

    def test_outstanding_tracked_across_dispatches(self):
        p = HybridSelectPredictor(config())
        for value in range(0, 64, 4):
            p.train_result(0x1000, value, None)
        # Back-to-back dispatches before any commit: stride candidates
        # must advance by one stride per in-flight instance.
        assert p.predict_result(0x1000, 0) == 64
        assert p.predict_result(0x1000, 0) == 68
        p.abort_result(0x1000)
        assert p.predict_result(0x1000, 0) == 68

    def test_telemetry_snapshot(self):
        p = HybridSelectPredictor(config())
        feed(p, 0x1000, [7, 9] * 10)
        snapshot = p.telemetry_snapshot()
        assert snapshot["kind"] == "select"
        assert snapshot["selector_entries"] == 1
        assert set(COMPONENTS) == {
            name.rsplit("_", 1)[0] for name in snapshot
            if name.endswith("_predictions")}


class TestInterface:
    def test_factory_dispatch(self):
        assert isinstance(make_predictor(config()), HybridSelectPredictor)

    def test_addresses_gated_by_config(self):
        import dataclasses
        cfg = dataclasses.replace(config(), predict_addresses=False)
        p = HybridSelectPredictor(cfg)
        for value in [4, 8] * 8:
            p.train_address(0x1000, value, None)
        assert p.predict_address(0x1000, 0) is None

    def test_address_stream_predicted(self):
        p = HybridSelectPredictor(config())
        for value in [0x100, 0x104] * 10:
            predicted = p.predict_address(0x1000, value)
            p.train_address(0x1000, value, predicted)
        assert p.predict_address(0x1000, 0) in (0x100, 0x104)
