"""Unit tests for the Value Prediction Table."""

from repro.uarch.config import VPConfig
from repro.vp.table import KIND_ADDRESS, KIND_RESULT, ValuePredictionTable


def make_table(entries=64, assoc=4, threshold=2):
    return ValuePredictionTable(VPConfig(
        enabled=True, entries=entries, associativity=assoc,
        confidence_threshold=threshold))


class TestInsertionAndConfidence:
    def test_new_value_starts_unconfident(self):
        table = make_table()
        table.update(0x1000, KIND_RESULT, 42)
        assert table.confident_instances(0x1000, KIND_RESULT) == []
        assert len(table.instances(0x1000, KIND_RESULT)) == 1

    def test_value_becomes_confident_after_repeats(self):
        table = make_table()
        table.update(0x1000, KIND_RESULT, 42)
        table.update(0x1000, KIND_RESULT, 42)
        confident = table.confident_instances(0x1000, KIND_RESULT)
        assert [inst.value for inst in confident] == [42]

    def test_confidence_saturates(self):
        table = make_table()
        for _ in range(10):
            table.update(0x1000, KIND_RESULT, 42)
        instance = table.instances(0x1000, KIND_RESULT)[0]
        assert instance.confidence == 3  # 2-bit counter

    def test_misprediction_decrements(self):
        table = make_table()
        for _ in range(4):
            table.update(0x1000, KIND_RESULT, 42)
        table.update(0x1000, KIND_RESULT, actual=43, mispredicted=42)
        values = {inst.value: inst.confidence
                  for inst in table.instances(0x1000, KIND_RESULT)}
        assert values[42] == 2  # decremented from saturation
        assert values[43] == 1  # newly inserted

    def test_confidence_floor_is_zero(self):
        table = make_table()
        table.update(0x1000, KIND_RESULT, 42)
        for _ in range(5):
            table.update(0x1000, KIND_RESULT, actual=1, mispredicted=42)
        values = {inst.value: inst.confidence
                  for inst in table.instances(0x1000, KIND_RESULT)}
        assert values[42] == 0


class TestInstanceManagement:
    def test_up_to_assoc_instances(self):
        table = make_table(assoc=4)
        for value in range(4):
            table.update(0x1000, KIND_RESULT, value)
        assert len(table.instances(0x1000, KIND_RESULT)) == 4

    def test_lru_eviction_beyond_assoc(self):
        table = make_table(assoc=4)
        for value in range(5):
            table.update(0x1000, KIND_RESULT, value)
        values = [inst.value for inst in table.instances(0x1000, KIND_RESULT)]
        assert 0 not in values  # LRU victim
        assert set(values) == {1, 2, 3, 4}

    def test_update_refreshes_lru(self):
        table = make_table(assoc=4)
        for value in range(4):
            table.update(0x1000, KIND_RESULT, value)
        table.update(0x1000, KIND_RESULT, 0)  # value 0 becomes MRU
        table.update(0x1000, KIND_RESULT, 9)  # evicts value 1
        values = {inst.value for inst in table.instances(0x1000, KIND_RESULT)}
        assert 0 in values and 1 not in values

    def test_result_and_address_spaces_are_disjoint(self):
        table = make_table()
        table.update(0x1000, KIND_RESULT, 42)
        table.update(0x1000, KIND_ADDRESS, 0x8000)
        assert [i.value for i in table.instances(0x1000, KIND_RESULT)] == [42]
        assert [i.value for i in table.instances(0x1000, KIND_ADDRESS)] \
            == [0x8000]

    def test_distinct_pcs_distinct_instances(self):
        table = make_table(entries=1 << 16)
        table.update(0x1000, KIND_RESULT, 1)
        table.update(0x2000, KIND_RESULT, 2)
        assert [i.value for i in table.instances(0x1000, KIND_RESULT)] == [1]
        assert [i.value for i in table.instances(0x2000, KIND_RESULT)] == [2]

    def test_paper_geometry(self):
        table = ValuePredictionTable(VPConfig(enabled=True))
        assert table.num_sets * table.assoc == 16 * 1024
        assert table.assoc == 4
