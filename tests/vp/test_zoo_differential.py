"""Differential fuzz: the predictor zoo over generated workloads.

The repository's strongest invariant, extended to the full zoo: for ANY
generated program — at every corner of the generator's knob space — and
ANY predictor configuration (base, IR, VP_Magic/LVP/stride/FCM/the
hybrid selector/the perfect oracle, with and without the variable-fetch-
rate frontend), the timing core must commit architectural state
byte-identical to the in-order functional simulator.
``verify_commits=True`` checks every committed destination write in
lockstep, so a pass covers the whole commit stream.

Hypothesis runs with ``derandomize=True``: the CI fuzz job is
deterministic and time-bounded, per the repository determinism contract.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.functional import FunctionalSimulator
from repro.isa import NUM_REGS, assemble
from repro.uarch.config import (
    PredictorKind,
    base_config,
    ir_config,
    vfr_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore
from repro.workloads import GeneratorKnobs, generated_program

#: Every predictor kind end-to-end, plus IR and the throttled frontend.
ZOO_CONFIGS = (
    [base_config(), ir_config()]
    + [vp_config(kind) for kind in PredictorKind]
    + [vp_config(PredictorKind.FCM, verify_latency=1),
       vp_config(PredictorKind.HYBRID_SELECT, verify_latency=1),
       vfr_config(),  # throttled frontend, no VP
       vfr_config(PredictorKind.HYBRID_SELECT)]
)

#: The generator's knob-space corners plus the centre point.
KNOB_CORNERS = [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0),
                (0.5, 0.5)]

# Small programs keep the full (corner x config) product CI-affordable;
# a generated program's structure does not grow with trips.
_SIZE = 24
_TRIPS = 4


def check_generated(knobs: GeneratorKnobs, configs=ZOO_CONFIGS,
                    max_cycles=400_000):
    program = assemble(generated_program(knobs))
    reference = FunctionalSimulator(program)
    reference.run(max_instructions=500_000)
    assert reference.halted, f"{knobs.name} did not halt functionally"
    for config in configs:
        config = dataclasses.replace(config, verify_commits=True)
        core = OutOfOrderCore(config, program)
        stats = core.run(max_cycles=max_cycles)
        assert stats.halted, f"{config.name} did not halt on {knobs.name}"
        assert stats.committed == reference.instructions_retired, (
            f"{config.name} on {knobs.name}: committed {stats.committed}, "
            f"functional ran {reference.instructions_retired}")
        for reg in range(NUM_REGS):
            assert core.spec.regs[reg] == reference.state.regs[reg], (
                f"{config.name} on {knobs.name}: "
                f"register {reg} diverged")


class TestKnobCorners:
    """One deterministic seed at every corner of the knob space."""

    @pytest.mark.parametrize("redundancy,entropy", KNOB_CORNERS)
    def test_corner(self, redundancy, entropy):
        check_generated(GeneratorKnobs(
            seed=1, size=_SIZE, trips=_TRIPS,
            result_redundancy=redundancy, branch_entropy=entropy))


class TestFuzz:
    """Hypothesis sweeps seeds and knobs (derandomized: CI-stable)."""

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           redundancy=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
           entropy=st.sampled_from([0.0, 0.5, 1.0]))
    def test_zoo_matches_functional(self, seed, redundancy, entropy):
        check_generated(GeneratorKnobs(
            seed=seed, size=_SIZE, trips=_TRIPS,
            result_redundancy=redundancy, branch_entropy=entropy))

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_new_predictors_on_larger_programs(self, seed):
        """The new kinds alone, on bigger/longer programs: more dynamic
        instructions per config without the full config product."""
        check_generated(
            GeneratorKnobs(seed=seed, size=48, trips=12,
                           result_redundancy=0.6, branch_entropy=0.4),
            configs=[vp_config(PredictorKind.FCM),
                     vp_config(PredictorKind.HYBRID_SELECT),
                     vfr_config(PredictorKind.FCM)])
