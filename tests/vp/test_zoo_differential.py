"""Differential fuzz: the predictor zoo over generated workloads.

The repository's strongest invariant, extended to the full zoo: for ANY
generated program — at every corner of the generator's knob space — and
ANY predictor configuration (base, IR, VP_Magic/LVP/stride/FCM/the
hybrid selector/the perfect oracle, with and without the variable-fetch-
rate frontend), the timing core must commit architectural state
byte-identical to the in-order functional simulator.
``verify_commits=True`` checks every committed destination write in
lockstep, so a pass covers the whole commit stream.

The structure-of-arrays core adds a second, independent checking path:
a ``core.on_commit`` observer that rebuilds each committed instruction
as a :class:`~repro.uarch.entry.CommittedOp` view from the pool arrays
and replays it on a functional simulator stepped in lockstep —
architectural-state equality *at commit*, per instruction, not just at
halt.  The tiny-window class drives the same programs through a 6-entry
ROB so every pool slot is recycled dozens of times under squash
pressure.

Hypothesis runs with ``derandomize=True``: the CI fuzz job is
deterministic and time-bounded, per the repository determinism contract.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.functional import FunctionalSimulator
from repro.isa import NUM_REGS, assemble
from repro.uarch.config import (
    PredictorKind,
    base_config,
    ir_config,
    vfr_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore
from repro.workloads import GeneratorKnobs, generated_program

#: Every predictor kind end-to-end, plus IR and the throttled frontend.
ZOO_CONFIGS = (
    [base_config(), ir_config()]
    + [vp_config(kind) for kind in PredictorKind]
    + [vp_config(PredictorKind.FCM, verify_latency=1),
       vp_config(PredictorKind.HYBRID_SELECT, verify_latency=1),
       vfr_config(),  # throttled frontend, no VP
       vfr_config(PredictorKind.HYBRID_SELECT)]
)

#: The generator's knob-space corners plus the centre point.
KNOB_CORNERS = [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0),
                (0.5, 0.5)]

# Small programs keep the full (corner x config) product CI-affordable;
# a generated program's structure does not grow with trips.
_SIZE = 24
_TRIPS = 4


def _nonzero_pages(memory):
    """Memory as {page: bytes}, ignoring pages that are all zero.

    Untouched memory reads as zero, so a page one simulator allocated
    but never wrote nonzero bytes to is architecturally invisible.
    """
    return {number: page
            for number, page in memory.snapshot_pages().items()
            if any(page)}


def check_generated(knobs: GeneratorKnobs, configs=ZOO_CONFIGS,
                    max_cycles=400_000):
    program = assemble(generated_program(knobs))
    reference = FunctionalSimulator(program)
    reference.run(max_instructions=500_000)
    assert reference.halted, f"{knobs.name} did not halt functionally"
    reference_pages = _nonzero_pages(reference.state.memory)
    for config in configs:
        config = dataclasses.replace(config, verify_commits=True)
        core = OutOfOrderCore(config, program)
        stats = core.run(max_cycles=max_cycles)
        assert stats.halted, f"{config.name} did not halt on {knobs.name}"
        assert stats.committed == reference.instructions_retired, (
            f"{config.name} on {knobs.name}: committed {stats.committed}, "
            f"functional ran {reference.instructions_retired}")
        for reg in range(NUM_REGS):
            assert core.spec.regs[reg] == reference.state.regs[reg], (
                f"{config.name} on {knobs.name}: "
                f"register {reg} diverged")
        assert _nonzero_pages(core.spec.memory) == reference_pages, (
            f"{config.name} on {knobs.name}: memory diverged")
        # The run drained cleanly: commit and squash are both pure array
        # resets, so a halted core holds no live or pinned pool slots.
        assert core.pool.live == 0 and core.pool.pinned == 0, (
            f"{config.name} on {knobs.name}: leaked pool slots "
            f"(live={core.pool.live}, pinned={core.pool.pinned})")


class _CommitLockstep:
    """``on_commit`` observer replaying each commit on a reference.

    Exercises the pool's :class:`CommittedOp` view path (the per-object
    snapshot built from the arrays at commit, before the slot's edges
    drop) and checks every committed instruction's architectural effect
    — PC, register writes, memory access, control outcome, next PC —
    against an in-order functional simulator stepped in lockstep.
    """

    _FIELDS = ("operand_a", "operand_b", "next_pc", "result",
               "result_hi", "writes", "mem_addr", "mem_value", "taken")

    def __init__(self, program):
        self.reference = FunctionalSimulator(program)
        self.mismatches = []

    def __call__(self, view, cycle):
        reference = self.reference
        if reference.halted:
            self.mismatches.append(
                (view.seq, "commit after the reference halted"))
            return
        expect = reference.step()
        got = view.outcome
        if view.inst.pc != expect.inst.pc:
            # The commit streams diverged; later field diffs are noise.
            self.mismatches.append(
                (view.seq,
                 f"pc {view.inst.pc:#x} != {expect.inst.pc:#x}"))
            return
        for field in self._FIELDS:
            if field == "next_pc" and reference.halted:
                # step() pins the halt's next_pc to its own address; the
                # core's outcome records the (never-fetched) fall-through.
                continue
            if getattr(got, field) != getattr(expect, field):
                self.mismatches.append(
                    (view.seq, f"pc={view.inst.pc:#x}",
                     f"{field}: {getattr(got, field)!r} != "
                     f"{getattr(expect, field)!r}"))


#: The lockstep sweep uses one representative per scheme family — the
#: observer cost is per commit, so the full zoo product is reserved for
#: the end-state check above.
LOCKSTEP_CONFIGS = [base_config(), ir_config(),
                    vp_config(PredictorKind.STRIDE),
                    vp_config(PredictorKind.HYBRID_SELECT),
                    vfr_config()]


def check_commit_lockstep(knobs: GeneratorKnobs, configs=None,
                          max_cycles=400_000):
    program = assemble(generated_program(knobs))
    for config in (LOCKSTEP_CONFIGS if configs is None else configs):
        core = OutOfOrderCore(config, program)
        observer = _CommitLockstep(program)
        core.on_commit = observer
        stats = core.run(max_cycles=max_cycles)
        assert stats.halted, f"{config.name} did not halt on {knobs.name}"
        assert not observer.mismatches, (
            f"{config.name} on {knobs.name}: commit stream diverged: "
            f"{observer.mismatches[:5]}")
        assert observer.reference.halted, (
            f"{config.name} on {knobs.name}: core halted before the "
            f"reference")
        assert observer.reference.instructions_retired == stats.committed


class TestKnobCorners:
    """One deterministic seed at every corner of the knob space."""

    @pytest.mark.parametrize("redundancy,entropy", KNOB_CORNERS)
    def test_corner(self, redundancy, entropy):
        check_generated(GeneratorKnobs(
            seed=1, size=_SIZE, trips=_TRIPS,
            result_redundancy=redundancy, branch_entropy=entropy))


class TestCommitLockstep:
    """Per-commit architectural equality through the CommittedOp path."""

    @pytest.mark.parametrize("redundancy,entropy", KNOB_CORNERS)
    def test_corner(self, redundancy, entropy):
        check_commit_lockstep(GeneratorKnobs(
            seed=1, size=_SIZE, trips=_TRIPS,
            result_redundancy=redundancy, branch_entropy=entropy))

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           redundancy=st.sampled_from([0.0, 0.5, 1.0]),
           entropy=st.sampled_from([0.0, 0.5, 1.0]))
    def test_lockstep_fuzz(self, seed, redundancy, entropy):
        check_commit_lockstep(GeneratorKnobs(
            seed=seed, size=_SIZE, trips=_TRIPS,
            result_redundancy=redundancy, branch_entropy=entropy))


class TestTinyWindows:
    """Slot-recycling pressure: windows far smaller than the program.

    A 6-entry ROB over a dynamic stream hundreds of instructions long
    forces the entry pool to recycle every slot dozens of times, with
    squashes landing on freshly recycled ids — the free-list aliasing
    scenario the SoA core must survive without a stale token ever
    validating.
    """

    _TINY = [dataclasses.replace(config, rob_size=6, lsq_size=4,
                                 fetch_queue_size=4,
                                 max_unresolved_branches=4)
             for config in (base_config(), ir_config(),
                            vp_config(PredictorKind.HYBRID_SELECT),
                            vfr_config())]

    @pytest.mark.parametrize("redundancy,entropy", KNOB_CORNERS)
    def test_corner(self, redundancy, entropy):
        knobs = GeneratorKnobs(seed=2, size=_SIZE, trips=_TRIPS,
                               result_redundancy=redundancy,
                               branch_entropy=entropy)
        check_generated(knobs, configs=self._TINY)
        check_commit_lockstep(knobs, configs=self._TINY)

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_recycling_fuzz(self, seed):
        check_generated(
            GeneratorKnobs(seed=seed, size=_SIZE, trips=8,
                           result_redundancy=0.5, branch_entropy=0.5),
            configs=self._TINY)


class TestFuzz:
    """Hypothesis sweeps seeds and knobs (derandomized: CI-stable)."""

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           redundancy=st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
           entropy=st.sampled_from([0.0, 0.5, 1.0]))
    def test_zoo_matches_functional(self, seed, redundancy, entropy):
        check_generated(GeneratorKnobs(
            seed=seed, size=_SIZE, trips=_TRIPS,
            result_redundancy=redundancy, branch_entropy=entropy))

    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_new_predictors_on_larger_programs(self, seed):
        """The new kinds alone, on bigger/longer programs: more dynamic
        instructions per config without the full config product."""
        check_generated(
            GeneratorKnobs(seed=seed, size=48, trips=12,
                           result_redundancy=0.6, branch_entropy=0.4),
            configs=[vp_config(PredictorKind.FCM),
                     vp_config(PredictorKind.HYBRID_SELECT),
                     vfr_config(PredictorKind.FCM)])
