"""Tests for the stride value predictor (extension).

The stride predictor targets the paper's *derivable* redundancy category
(Figure 8): results on a stride repeat nothing — IR and the last-value /
magic predictors capture none of it — but are perfectly predictable.
"""

import dataclasses

import pytest

from repro.isa import assemble
from repro.uarch.config import PredictorKind, VPConfig, base_config, vp_config
from repro.uarch.core import OutOfOrderCore
from repro.vp.predictors import ValuePredictor, make_predictor
from repro.vp.stride import StridePredictor


def predictor(threshold=2, assoc=1, entries=64):
    return StridePredictor(VPConfig(
        enabled=True, kind=PredictorKind.STRIDE,
        confidence_threshold=threshold, associativity=assoc,
        entries=entries))


def feed(p, pc, values):
    """Predict+train a committed sequence with no in-flight overlap."""
    results = []
    for value in values:
        results.append(p.predict_result(pc, value))
        p.train_result(pc, value, results[-1])
    return results


class TestLearning:
    def test_learns_constant_stride(self):
        results = feed(predictor(), 0x1000, [4, 8, 12, 16, 20, 24])
        assert results[-1] == 24
        assert results[-2] == 20

    def test_no_prediction_until_confident(self):
        results = feed(predictor(), 0x1000, [4, 8, 12])
        assert all(r is None for r in results)

    def test_zero_stride_is_last_value(self):
        results = feed(predictor(), 0x1000, [7, 7, 7, 7, 7])
        assert results[-1] == 7

    def test_negative_stride(self):
        values = [100, 97, 94, 91, 88, 85]
        results = feed(predictor(), 0x1000, values)
        assert results[-1] == 85

    def test_two_delta_survives_one_off_jump(self):
        p = predictor()
        feed(p, 0x1000, [4, 8, 12, 16, 20])
        # one irregular value, then the stride resumes
        p.train_result(0x1000, 100, None)
        p.train_result(0x1000, 104, None)
        p.train_result(0x1000, 108, None)
        assert p.predict_result(0x1000, 112) == 112

    def test_stride_change_relearned(self):
        p = predictor()
        feed(p, 0x1000, [4, 8, 12, 16])
        results = feed(p, 0x1000, [26, 36, 46, 56, 66])
        assert results[-1] == 66

    def test_wraps_32_bits(self):
        base = 0xFFFFFFF0
        values = [(base + 8 * i) & 0xFFFFFFFF for i in range(6)]
        results = feed(predictor(), 0x1000, values)
        assert results[-1] == values[-1]


class TestOutstandingTracking:
    def test_in_flight_predictions_advance(self):
        p = predictor()
        feed(p, 0x1000, [4, 8, 12, 16, 20])
        # three predictions before any of them commits
        assert p.predict_result(0x1000, 0) == 24
        assert p.predict_result(0x1000, 0) == 28
        assert p.predict_result(0x1000, 0) == 32

    def test_commits_rebalance(self):
        p = predictor()
        feed(p, 0x1000, [4, 8, 12, 16, 20])
        first = p.predict_result(0x1000, 0)
        p.train_result(0x1000, 24, first)
        assert p.predict_result(0x1000, 0) == 28

    def test_abort_rolls_back(self):
        p = predictor()
        feed(p, 0x1000, [4, 8, 12, 16, 20])
        p.predict_result(0x1000, 0)  # wrong-path instance
        p.abort_result(0x1000)
        assert p.predict_result(0x1000, 0) == 24

    def test_untrained_abort_is_noop(self):
        predictor().abort_result(0x9999)  # must not raise


class TestFactory:
    def test_make_predictor_dispatch(self):
        stride_config = VPConfig(enabled=True, kind=PredictorKind.STRIDE)
        assert isinstance(make_predictor(stride_config), StridePredictor)
        magic_config = VPConfig(enabled=True, kind=PredictorKind.MAGIC)
        assert isinstance(make_predictor(magic_config), ValuePredictor)

    def test_table_predictors_have_abort_interface(self):
        vp = ValuePredictor(VPConfig(enabled=True))
        vp.abort_result(0x1000)
        vp.abort_address(0x1000)


class TestEndToEnd:
    STRIDE_CODE = """
    main:   li $s0, 500
    loop:   addi $t0, $t0, 4
            add $t1, $t0, $t0
            add $t2, $t1, $t0
            addi $s0, $s0, -1
            bnez $s0, loop
            halt
    """

    def _run(self, config):
        config = dataclasses.replace(config, verify_commits=True)
        core = OutOfOrderCore(config, assemble(self.STRIDE_CODE))
        return core.run(max_cycles=200_000)

    def test_captures_derivable_redundancy(self):
        stats = self._run(vp_config(PredictorKind.STRIDE))
        assert stats.vp_result_correct > 0.5 * stats.committed

    def test_magic_captures_nothing_here(self):
        stats = self._run(vp_config(PredictorKind.MAGIC))
        assert stats.vp_result_correct == 0

    def test_speedup_over_base(self):
        base = self._run(base_config())
        stride = self._run(vp_config(PredictorKind.STRIDE))
        assert stride.cycles < base.cycles

    def test_accuracy_with_in_flight_iterations(self):
        stats = self._run(vp_config(PredictorKind.STRIDE))
        assert stats.vp_result_correct > 0.98 * stats.vp_result_predicted
