"""Unit tests for the VP_Magic and VP_LVP predictors."""

from repro.uarch.config import PredictorKind, VPConfig
from repro.vp.predictors import ValuePredictor


def magic(**kw):
    return ValuePredictor(VPConfig(enabled=True, kind=PredictorKind.MAGIC,
                                   associativity=4, **kw))


def lvp(**kw):
    return ValuePredictor(VPConfig(enabled=True,
                                   kind=PredictorKind.LAST_VALUE,
                                   associativity=1, **kw))


def train(predictor, pc, values, times=1):
    for _ in range(times):
        for value in values:
            predictor.train_result(pc, value, None)


class TestVPMagic:
    def test_no_prediction_when_cold(self):
        assert magic().predict_result(0x1000, oracle=5) is None

    def test_oracle_selection_picks_correct_instance(self):
        predictor = magic()
        train(predictor, 0x1000, [10, 20, 30], times=3)
        # all three values confident; the oracle selects the right one
        assert predictor.predict_result(0x1000, oracle=20) == 20
        assert predictor.predict_result(0x1000, oracle=30) == 30

    def test_falls_back_to_most_confident(self):
        predictor = magic()
        train(predictor, 0x1000, [10], times=5)
        train(predictor, 0x1000, [20], times=2)
        # oracle value 99 is not stored: most confident (10) is predicted
        assert predictor.predict_result(0x1000, oracle=99) == 10

    def test_unconfident_instances_not_used(self):
        predictor = magic()
        predictor.train_result(0x1000, 10, None)  # confidence 1 < 2
        assert predictor.predict_result(0x1000, oracle=10) is None

    def test_four_instances_per_instruction(self):
        predictor = magic()
        train(predictor, 0x1000, [1, 2, 3, 4], times=3)
        for value in (1, 2, 3, 4):
            assert predictor.predict_result(0x1000, oracle=value) == value
        # a fifth value evicts the LRU instance
        train(predictor, 0x1000, [5], times=3)
        assert predictor.predict_result(0x1000, oracle=5) == 5

    def test_address_prediction_independent(self):
        predictor = magic()
        for _ in range(3):
            predictor.train_address(0x1000, 0x8000, None)
        assert predictor.predict_address(0x1000, oracle=0x8000) == 0x8000
        assert predictor.predict_result(0x1000, oracle=0x8000) is None

    def test_address_prediction_can_be_disabled(self):
        predictor = ValuePredictor(VPConfig(
            enabled=True, kind=PredictorKind.MAGIC,
            predict_addresses=False))
        for _ in range(3):
            predictor.train_address(0x1000, 0x8000, None)
        assert predictor.predict_address(0x1000, oracle=0x8000) is None


class TestVPLVP:
    def test_single_instance(self):
        predictor = lvp()
        train(predictor, 0x1000, [10], times=3)
        train(predictor, 0x1000, [20], times=1)
        # 20 replaced 10 (assoc 1); 20 is not yet confident
        assert predictor.predict_result(0x1000, oracle=20) is None
        train(predictor, 0x1000, [20], times=1)
        assert predictor.predict_result(0x1000, oracle=20) == 20

    def test_no_oracle_advantage(self):
        """LVP predicts the last value even when the oracle differs."""
        predictor = lvp()
        train(predictor, 0x1000, [10], times=3)
        assert predictor.predict_result(0x1000, oracle=77) == 10

    def test_alternating_values_never_confident(self):
        predictor = lvp()
        for _ in range(8):
            predictor.train_result(0x1000, 1, None)
            predictor.train_result(0x1000, 2, None)
        assert predictor.predict_result(0x1000, oracle=1) is None


class TestPerfectPredictor:
    def _make(self, **kw):
        from repro.uarch.config import PredictorKind, VPConfig
        from repro.vp.predictors import PerfectPredictor, make_predictor
        config = VPConfig(enabled=True, kind=PredictorKind.PERFECT, **kw)
        predictor = make_predictor(config)
        assert isinstance(predictor, PerfectPredictor)
        return predictor

    def test_always_predicts_oracle(self):
        predictor = self._make()
        assert predictor.predict_result(0x1000, 42) == 42
        assert predictor.predict_address(0x1000, 0x8000) == 0x8000

    def test_respects_address_disable(self):
        predictor = self._make(predict_addresses=False)
        assert predictor.predict_address(0x1000, 0x8000) is None

    def test_training_and_abort_are_noops(self):
        predictor = self._make()
        predictor.train_result(0x1000, 1, 2)
        predictor.abort_result(0x1000)

    def test_bounds_realistic_predictors(self):
        """VP_Perfect is a true upper bound on any predictor's cycles."""
        import dataclasses
        from repro.isa import assemble
        from repro.uarch.config import PredictorKind, vp_config
        from repro.uarch.core import OutOfOrderCore
        source = """
        main:   li $s0, 300
        loop:   li $t0, 9
                add $t1, $t0, $t0
                add $t2, $t1, $t1
                addi $s0, $s0, -1
                bnez $s0, loop
                halt
        """
        def cycles(kind):
            config = dataclasses.replace(vp_config(kind),
                                         verify_commits=True)
            core = OutOfOrderCore(config, assemble(source))
            return core.run(max_cycles=100_000).cycles
        assert cycles(PredictorKind.PERFECT) <= cycles(PredictorKind.MAGIC)
        assert cycles(PredictorKind.PERFECT) \
            <= cycles(PredictorKind.LAST_VALUE)
