"""Tests for the order-2 finite-context-method predictor (extension).

FCM targets the slice neither LVP nor stride can reach: results that
*repeat in a pattern* (alternations, short cycles).  The tests pin the
two-level structure, the confidence gating, the chained lookahead that
keeps tight loops on-pattern with predictions in flight, and the
determinism of the context hash.
"""

import pytest

from repro.uarch.config import PredictorKind, VPConfig
from repro.vp.fcm import FCMPredictor, FCMTable, mix_context
from repro.vp.predictors import make_predictor


def config(threshold=2, entries=64, order=2):
    return VPConfig(enabled=True, kind=PredictorKind.FCM,
                    confidence_threshold=threshold, entries=entries,
                    fcm_order=order)


def feed(p, pc, values):
    """Predict+train a committed sequence with no in-flight overlap."""
    results = []
    for value in values:
        results.append(p.predict_result(pc, value))
        p.train_result(pc, value, results[-1])
    return results


class TestMixContext:
    def test_deterministic(self):
        assert mix_context(5, (1, 2)) == mix_context(5, (1, 2))

    def test_order_sensitive(self):
        assert mix_context(5, (1, 2)) != mix_context(5, (2, 1))

    def test_key_sensitive(self):
        assert mix_context(5, (1, 2)) != mix_context(6, (1, 2))

    def test_32_bit(self):
        assert 0 <= mix_context(123456, (0xFFFFFFFF, 7)) <= 0xFFFFFFFF


class TestLearning:
    def test_learns_alternating_pattern(self):
        # 7,9,7,9,... destroys a last-value predictor but is a trivial
        # order-2 context pattern.
        values = [7, 9] * 12
        results = feed(FCMPredictor(config()), 0x1000, values)
        assert results[-4:] == values[-4:]

    def test_learns_period_three_cycle(self):
        values = [3, 5, 8] * 10
        results = feed(FCMPredictor(config()), 0x1000, values)
        assert results[-3:] == values[-3:]

    def test_no_prediction_without_context(self):
        p = FCMPredictor(config())
        assert p.predict_result(0x1000, 1) is None

    def test_no_prediction_until_confident(self):
        results = feed(FCMPredictor(config()), 0x1000, [7, 9] * 3)
        # Context fills, then each transition needs 2 confirmations.
        assert results[:4] == [None] * 4

    def test_constant_stream(self):
        results = feed(FCMPredictor(config()), 0x1000, [42] * 10)
        assert results[-1] == 42

    def test_random_stream_stays_quiet(self):
        values = [1, 17, 5, 99, 3, 54, 23, 8, 71, 12]
        results = feed(FCMPredictor(config()), 0x1000, values)
        assert all(r is None for r in results)


class TestChainedLookahead:
    def test_peek_chains_through_own_predictions(self):
        table = FCMTable(config())
        key = table.key(0x1000, FCMTable.KIND_RESULT)
        for value in [7, 9] * 8:
            table.train(key, value)
        # Committed context ends ...7,9 -> next is 7, then 9, then 7.
        assert table.peek(key, ahead=1) == 7
        assert table.peek(key, ahead=2) == 9
        assert table.peek(key, ahead=3) == 7

    def test_outstanding_predictions_advance_the_chain(self):
        p = FCMPredictor(config())
        for value in [7, 9] * 8:
            p.train_result(0x1000, value, None)
        # Three dispatches before any commit: each must look one link
        # further ahead (the in-flight lag of a tight loop).
        assert p.predict_result(0x1000, 0) == 7
        assert p.predict_result(0x1000, 0) == 9
        assert p.predict_result(0x1000, 0) == 7

    def test_abort_rewinds_the_chain(self):
        p = FCMPredictor(config())
        for value in [7, 9] * 8:
            p.train_result(0x1000, value, None)
        assert p.predict_result(0x1000, 0) == 7
        p.abort_result(0x1000)  # squashed before commit
        assert p.predict_result(0x1000, 0) == 7

    def test_train_retires_outstanding(self):
        p = FCMPredictor(config())
        for value in [7, 9] * 8:
            p.train_result(0x1000, value, None)
        first = p.predict_result(0x1000, 0)
        p.train_result(0x1000, 7, first)
        # The commit consumed the outstanding slot: next dispatch is
        # again one link past the (new) committed context.
        assert p.predict_result(0x1000, 0) == 9


class TestStructure:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FCMTable(config(entries=48))

    def test_distinct_pcs_are_independent(self):
        p = FCMPredictor(config())
        feed(p, 0x1000, [7, 9] * 8)
        assert p.predict_result(0x2000, 1) is None

    def test_order_one_behaves_like_last_value_context(self):
        p = FCMPredictor(config(order=1))
        results = feed(p, 0x1000, [7, 9] * 8)
        assert results[-1] in (7, 9)

    def test_addresses_gated_by_config(self):
        import dataclasses
        cfg = dataclasses.replace(config(), predict_addresses=False)
        p = FCMPredictor(cfg)
        for value in [4, 8] * 8:
            p.train_address(0x1000, value, None)
        assert p.predict_address(0x1000, 0) is None

    def test_factory_dispatch(self):
        assert isinstance(make_predictor(config()), FCMPredictor)

    def test_telemetry_snapshot(self):
        p = FCMPredictor(config())
        feed(p, 0x1000, [7, 9] * 4)
        snapshot = p.telemetry_snapshot()
        assert snapshot["kind"] == "fcm"
        assert snapshot["fcm_order"] == 2
        assert snapshot["fcm_contexts"] >= 1
