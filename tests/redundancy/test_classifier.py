"""Unit tests for the Figure 8 redundancy classifier."""

from repro.functional import FunctionalSimulator
from repro.isa import assemble
from repro.redundancy import RedundancyClassifier


def classify_program(source, max_instructions=50_000, **kw):
    classifier = RedundancyClassifier(**kw)
    sim = FunctionalSimulator(assemble(source))
    for outcome in sim.stream(max_instructions):
        classifier.observe(outcome)
    return classifier


class TestCategories:
    def test_constant_loop_is_repeated(self):
        classifier = classify_program("""
        main: li $s0, 100
        loop: li $t0, 42
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        counts = classifier.counts
        # `li $t0, 42` produces 42 a hundred times: 1 unique + 99 repeated
        assert counts.repeated >= 99

    def test_stride_is_derivable(self):
        classifier = classify_program("""
        main: li $s0, 100
        loop: addi $t0, $t0, 4
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        counts = classifier.counts
        # t0 walks a +4 stride: after two samples, every value derivable
        assert counts.derivable >= 97

    def test_down_counter_is_derivable(self):
        classifier = classify_program("""
        main: li $s0, 50
        loop: addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        assert classifier.counts.derivable >= 47

    def test_fresh_values_are_unique(self):
        classifier = classify_program("""
        main: li $s0, 60
              li $t0, 1
        loop: sll $t1, $t0, 2
              add $t0, $t1, $t0
              addi $t0, $t0, 7
              xor $t2, $t0, $s0
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        counts = classifier.counts
        # t0 follows x -> 5x + 7: ever-fresh values dominate
        assert counts.unique > 0.3 * counts.producing

    def test_non_producing_instructions_excluded(self):
        classifier = classify_program("""
        .data
        buf: .space 8
        .text
        main: li $s0, 20
        loop: sw $s0, buf
              beqz $zero, next
        next: addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        assert classifier.counts.non_producing > 0

    def test_buffer_cap_produces_unaccounted(self):
        classifier = classify_program("""
        main: li $s0, 200
        loop: xor $t0, $t0, $s0
              sll $t0, $t0, 1
              or  $t0, $t0, $s0
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """, max_instructions=50_000, max_instances=4)
        assert classifier.counts.unaccounted > 0

    def test_static_instruction_count(self):
        classifier = classify_program("""
        main: li $t0, 1
              li $t1, 2
              halt
        """)
        assert classifier.static_instructions == 2


class TestDerivedQuantities:
    def test_percentages_sum_to_100(self):
        classifier = classify_program("""
        main: li $s0, 100
        loop: li $t0, 7
              addi $t1, $t1, 3
              add $t2, $t1, $s0
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        pct = classifier.counts.as_percentages()
        assert abs(sum(pct.values()) - 100.0) < 1e-6

    def test_redundant_is_repeated_plus_derivable(self):
        classifier = classify_program("main: li $t0, 1\n halt")
        counts = classifier.counts
        assert counts.redundant == counts.repeated + counts.derivable

    def test_empty_stream(self):
        classifier = RedundancyClassifier()
        assert classifier.counts.producing == 0
        assert classifier.counts.fraction(0) == 0.0
