"""Unit tests for the Figure 9/10 reusability analyzer."""

from repro.functional import FunctionalSimulator
from repro.isa import assemble
from repro.redundancy import ReusabilityAnalyzer


def analyze(source, max_instructions=50_000, **kw):
    analyzer = ReusabilityAnalyzer(**kw)
    sim = FunctionalSimulator(assemble(source))
    for outcome in sim.stream(max_instructions):
        analyzer.observe(outcome)
    return analyzer


CONSTANT_CHAIN = """
main: li $s0, 200
loop: li $t0, 5
      add $t1, $t0, $t0
      add $t2, $t1, $t1
      addi $s0, $s0, -1
      bnez $s0, loop
      halt
"""


class TestReusableChains:
    def test_constant_chain_is_reusable(self):
        analyzer = analyze(CONSTANT_CHAIN)
        counts = analyzer.counts
        assert counts.reusable > 0.8 * counts.repeated

    def test_chain_counts_as_producers_reused(self):
        analyzer = analyze(CONSTANT_CHAIN)
        pct = analyzer.counts.readiness_percentages()
        assert pct["producers_reused"] > 50.0

    def test_repeated_result_with_fresh_inputs_not_reusable(self):
        """The paper's 'different inputs' case: a logical op repeats its
        result (1 xor 3 == 3 xor 1) with an operand pair never seen
        together, so the operand-based test cannot validate it."""
        analyzer = analyze("""
        main: li $s0, 10
        loop: andi $t9, $s0, 1
              beqz $t9, even
              li $t0, 1
              li $t1, 3
              j pad
        even: li $t0, 3
              li $t1, 1
        pad:  li $t8, 30            # >50 dynamic insts of padding, so the
        padl: addi $t8, $t8, -1     # operand producers count as 'far'
              bnez $t8, padl
              xor $t2, $t0, $t1     # 1^3 == 3^1: repeated, new operands
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        assert analyzer.counts.different_inputs > 0

    def test_store_invalidates_load_reuse(self):
        analyzer = analyze("""
        .data
        cell: .word 0
        .text
        main: li $s0, 100
        loop: sw $s0, cell
              lw $t0, cell
              andi $t1, $s0, 3
              sw $t1, cell
              lw $t2, cell
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        assert analyzer.counts.memory_invalidated > 0

    def test_stable_memory_loads_are_reusable(self):
        analyzer = analyze("""
        .data
        tbl: .word 9, 8, 7, 6
        .text
        main: li $s0, 200
        loop: lw $t0, tbl
              lw $t1, tbl+4
              add $t2, $t0, $t1
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        counts = analyzer.counts
        assert counts.reusable > 0.5 * counts.repeated


class TestReadinessHorizon:
    def test_distance_threshold_matters(self):
        """A repeated value whose producer is an unreused neighbour counts
        as not-ready under a wide horizon, ready under a narrow one."""
        source = """
        main: li $s0, 300
        loop: andi $t0, $s0, 1
              sll $t1, $t0, 2
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """
        wide = analyze(source, producer_distance=50)
        narrow = analyze(source, producer_distance=2)
        assert narrow.counts.producers_near \
            <= wide.counts.producers_near

    def test_architectural_inputs_are_ready(self):
        """Instructions whose sources were never written in-window."""
        analyzer = analyze("""
        main: li $s0, 100
        loop: add $t0, $s1, $s2
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """)
        pct = analyzer.counts.readiness_percentages()
        assert pct["producers_near"] < 50.0


class TestAggregates:
    def test_figure10_fraction_bounded(self):
        analyzer = analyze(CONSTANT_CHAIN)
        fraction = analyzer.counts.reusable_fraction_of_redundant
        assert 0.0 <= fraction <= 1.0

    def test_empty_counts(self):
        analyzer = ReusabilityAnalyzer()
        assert analyzer.counts.reusable_fraction_of_redundant == 0.0
        pct = analyzer.counts.readiness_percentages()
        assert pct["producers_reused"] == 0.0
