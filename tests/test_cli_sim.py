"""Tests for the repro-sim command-line tool."""

import pytest

from repro.cli_sim import CONFIG_FACTORIES, build_parser, main

PROGRAM = """
main:   li $s0, 60
loop:   li $t0, 5
        add $t1, $t0, $t0
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(PROGRAM)
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["prog.s"])
        assert args.config == ["base"]
        assert args.instructions == 50_000

    def test_all_config_names_resolve(self):
        for name, factory in CONFIG_FACTORIES.items():
            config = factory()
            assert config.name  # constructible

    def test_multiple_configs(self):
        args = build_parser().parse_args(
            ["prog.s", "--config", "base", "ir", "hybrid"])
        assert args.config == ["base", "ir", "hybrid"]


class TestMain:
    def test_runs_source_file(self, source_file, capsys):
        assert main([str(source_file), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "IPC" in out

    def test_compares_configs(self, source_file, capsys):
        assert main([str(source_file), "--config", "base", "ir", "vp",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "reuse-n+d" in out
        assert "vp-magic" in out

    def test_breakdown_flag(self, source_file, capsys):
        assert main([str(source_file), "--config", "ir",
                     "--breakdown"]) == 0
        out = capsys.readouterr().out
        assert "Per-class breakdown" in out

    def test_trace_flag(self, source_file, capsys):
        assert main([str(source_file), "--config", "base",
                     "--trace", "5"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline trace" in out

    def test_workload_mode(self, capsys):
        assert main(["--workload", "m88ksim", "--instructions", "2000",
                     "--config", "ir"]) == 0
        out = capsys.readouterr().out
        assert "m88ksim" in out

    def test_missing_input_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_generated_workload_mode(self, capsys):
        assert main(["--workload", "gen-s3-n16-t8-r500-b250",
                     "--instructions", "2000",
                     "--config", "vp-select", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "gen-s3-n16-t8-r500-b250" in out
        assert "vp-select" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["--workload", "gen-bogus"])
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["--workload", "spice"])
