"""Tests for the hybrid VP+IR machine (the paper's suggested direction).

The hybrid dispatches the reuse test first; instructions the RB cannot
validate fall back to value prediction.  Reuse keeps its non-speculative
guarantees (a reused result never needs verification), while VP extends
coverage to redundancy the operand-based test cannot capture.
"""

import dataclasses

import pytest

from repro.isa import assemble
from repro.uarch.config import (
    PredictorKind,
    base_config,
    hybrid_config,
    ir_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore
from repro.workloads import get_workload, random_program


def run(source, config, max_cycles=400_000, max_instructions=None):
    config = dataclasses.replace(config, verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    stats = core.run(max_cycles=max_cycles, max_instructions=max_instructions)
    return core, stats


REDUNDANT = """
main:   li $s0, 400
loop:   li $t0, 9
        add $t1, $t0, $t0
        add $t2, $t1, $t1
        add $t3, $t2, $t2
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""

# One loop with two kinds of redundancy: a constant-rooted chain that IR
# captures at decode, and a stride-rooted chain whose inputs are never
# ready for the reuse test (the paper's IR restriction) but whose values
# VP_Magic predicts.  The hybrid should engage both engines.
STRIDY = """
main:   li $s0, 800
loop:   li $t5, 13           # reusable chain
        add $t6, $t5, $t5
        add $t7, $t6, $t6
        addi $t0, $t0, 1     # stride-rooted chain: VP territory
        andi $t1, $t0, 3
        sll $t2, $t1, 2
        addi $t3, $t2, 7
        add $t4, $t3, $t3
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


class TestConfiguration:
    def test_both_engines_enabled(self):
        config = hybrid_config()
        assert config.vp.enabled and config.ir.enabled and config.hybrid

    def test_non_hybrid_double_enable_rejected(self):
        config = dataclasses.replace(hybrid_config(), hybrid=False)
        with pytest.raises(ValueError, match="hybrid"):
            OutOfOrderCore(config, assemble("main: halt"))


class TestHybridBehaviour:
    def test_architectural_correctness(self):
        core, stats = run(REDUNDANT, hybrid_config())
        assert stats.halted
        assert core.spec.regs[11] == 9 * 8  # $t3

    def test_reuse_takes_priority(self):
        """Fully reusable code should be served by the RB, not the VPT."""
        _, stats = run(REDUNDANT, hybrid_config())
        assert stats.ir_result_reused > stats.vp_result_predicted

    def test_vp_covers_reuse_misses(self):
        """On stride-rooted code reuse misses the root but VP predicts
        downstream values: both engines contribute."""
        _, stats = run(STRIDY, hybrid_config())
        assert stats.ir_result_reused > 0
        assert stats.vp_result_predicted > 0

    def test_hybrid_at_least_as_fast_as_pure_ir(self):
        _, ir = run(STRIDY, ir_config())
        _, hybrid = run(STRIDY, hybrid_config())
        assert hybrid.cycles <= ir.cycles * 1.02

    def test_random_programs_correct(self):
        for seed in range(4):
            source = random_program(seed, size=40)
            _, stats = run(source, hybrid_config(), max_cycles=2_000_000)
            assert stats.halted

    def test_lvp_hybrid_also_correct(self):
        _, stats = run(STRIDY, hybrid_config(PredictorKind.LAST_VALUE))
        assert stats.halted


class TestHybridOnWorkloads:
    @pytest.mark.parametrize("name", ["m88ksim", "compress"])
    def test_workload_runs_verified(self, name):
        spec = get_workload(name)
        config = dataclasses.replace(hybrid_config(), verify_commits=True)
        core = OutOfOrderCore(config, spec.program())
        core.skip(spec.skip_instructions)
        stats = core.run(max_instructions=6_000, max_cycles=300_000)
        assert stats.committed >= 5_500
        assert stats.ir_result_reused > 0
        assert stats.vp_result_predicted > 0
