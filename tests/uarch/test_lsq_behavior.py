"""Behavioural tests of load/store-queue timing (Table 1 memory rules).

* loads execute only after all preceding store addresses are known;
* store->load forwarding bypasses the data cache;
* under VP address prediction, disambiguation is speculative and
  memory-order violations replay the offending loads.
"""

import dataclasses

from repro.isa import assemble
from repro.uarch.config import base_config, vp_config
from repro.uarch.core import OutOfOrderCore


def run(source, config=None, max_cycles=300_000):
    config = dataclasses.replace(config or base_config(),
                                 verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    stats = core.run(max_cycles=max_cycles)
    assert stats.halted
    return core, stats


class TestStoreAddressGating:
    def test_load_stalls_on_unknown_store_address(self):
        """A slow store address computation delays a younger independent
        load (conservative disambiguation)."""
        gated = """
        .data
        a: .word 11
        b: .word 22
        .text
        main:  li $s0, 60
        loop:  li $t0, 1000
               li $t1, 13
               div $t2, $t0, $t1     # 20-cycle divide
               andi $t2, $t2, 28
               la $t3, a
               add $t3, $t3, $t2
               sw $t1, 0($t3)        # address depends on the divide
               lw $t4, b             # independent load must wait anyway
               add $s2, $s2, $t4
               addi $s0, $s0, -1
               bnez $s0, loop
               halt
        """
        ungated = gated.replace("sw $t1, 0($t3)", "add $t5, $t1, $t3")

        def mean_load_issue_delay(source):
            config = dataclasses.replace(base_config(), verify_commits=True)
            program = assemble(source)
            core = OutOfOrderCore(config, program)
            delays = []

            def hook(op, cycle):
                if op.is_load and op.issue_cycle is not None:
                    delays.append(op.issue_cycle - op.dispatch_cycle)

            core.on_commit = hook
            core.run(max_cycles=300_000)
            return sum(delays) / len(delays)

        # the gated load waits for the divide-dependent store address
        assert mean_load_issue_delay(gated) \
            > mean_load_issue_delay(ungated) + 5

    def test_dcache_not_accessed_when_forwarding(self):
        source = """
        .data
        cell: .word 0
        .text
        main:  li $s0, 100
        loop:  sw $s0, cell
               lw $t0, cell          # always forwards from the store
               add $s2, $s2, $t0
               addi $s0, $s0, -1
               bnez $s0, loop
               halt
        """
        _, stats = run(source)
        # most loads forward; far fewer cache accesses than loads
        assert stats.dcache_accesses < 0.5 * stats.memory_ops

    def test_forwarded_value_correct_through_sizes(self):
        core, _ = run("""
        .data
        cell: .word 0
        .text
        main:  li $t0, 0x11223344
               sw $t0, cell
               lbu $t1, cell+1       # forwards a byte out of the word
               halt
        """)
        assert core.spec.regs[9] == 0x33


class TestAddressPredictionSpeculation:
    STRIDE_STORES = """
    .data
    buf: .space 512
    .text
    main:  li $s0, 100
           la $s1, buf
    loop:  andi $t0, $s0, 31
           sll $t0, $t0, 2
           add $t1, $s1, $t0
           sw $s0, 0($t1)          # store address varies over buf
           lw $t2, buf             # load from a fixed location
           add $s2, $s2, $t2
           addi $s0, $s0, -1
           bnez $s0, loop
           halt
    """

    def test_results_correct_under_address_prediction(self):
        core, stats = run(self.STRIDE_STORES, vp_config())
        # every commit was verified against the functional simulator
        assert stats.committed > 0

    def test_disambiguation_still_correct_when_conflicting(self):
        """Load aliases the store every 32nd iteration: speculative
        disambiguation must replay, never produce a wrong value."""
        core, _ = run(self.STRIDE_STORES, vp_config())
        total = core.spec.regs[18]
        # reference: functional semantics computed by the oracle already;
        # reaching here with verify_commits on is the assertion.
        assert total == core.spec.regs[18]
