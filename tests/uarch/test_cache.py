"""Unit tests for the set-associative cache model and port arbitration."""

from repro.uarch.cache import PortTracker, SetAssocCache
from repro.uarch.config import CacheConfig


def small_cache(size=1024, assoc=2, line=32, miss=6):
    return SetAssocCache(CacheConfig(size_bytes=size, associativity=assoc,
                                     line_bytes=line, miss_latency=miss))


class TestSetAssocCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True

    def test_same_line_hits(self):
        cache = small_cache(line=32)
        cache.access(0x1000)
        assert cache.access(0x101F) is True  # same 32-byte line
        assert cache.access(0x1020) is False  # next line

    def test_lru_eviction_within_set(self):
        cache = small_cache(size=128, assoc=2, line=32)  # 2 sets
        set_stride = 2 * 32  # addresses mapping to the same set
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert cache.access(b) is True
        assert cache.access(a) is False

    def test_lru_updated_on_hit(self):
        cache = small_cache(size=128, assoc=2, line=32)
        set_stride = 64
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_access_latency(self):
        cache = small_cache(miss=6)
        assert cache.access_latency(0x2000) == 6
        assert cache.access_latency(0x2000) == 0

    def test_miss_rate_accounting(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.accesses == 3
        assert cache.misses == 1
        assert abs(cache.miss_rate() - 1 / 3) < 1e-9

    def test_paper_geometry(self):
        config = CacheConfig()
        assert config.num_sets == 1024  # 64KB / (32B * 2 ways)

    def test_lookup_does_not_disturb(self):
        cache = small_cache()
        assert cache.lookup(0x3000) is False
        assert cache.misses == 0
        cache.access(0x3000)
        assert cache.lookup(0x3000) is True
        assert cache.hits == 0


class TestPortTracker:
    def test_grants_up_to_port_count(self):
        ports = PortTracker(2)
        assert ports.try_acquire(5)
        assert ports.try_acquire(5)
        assert not ports.try_acquire(5)

    def test_resets_next_cycle(self):
        ports = PortTracker(1)
        assert ports.try_acquire(5)
        assert not ports.try_acquire(5)
        assert ports.try_acquire(6)

    def test_available(self):
        ports = PortTracker(2)
        assert ports.available(7) == 2
        ports.try_acquire(7)
        assert ports.available(7) == 1
        assert ports.available(8) == 2

    def test_denial_accounting(self):
        ports = PortTracker(1)
        ports.try_acquire(1)
        ports.try_acquire(1)
        assert ports.grants == 1
        assert ports.denials == 1
