"""Unit tests for the fetch unit (Table 1 front-end constraints)."""

from repro.isa import assemble
from repro.uarch.branch_predictor import BranchPredictorUnit
from repro.uarch.config import BranchPredictorConfig, base_config
from repro.uarch.fetch import FetchUnit


def make_fetch(source, config=None):
    config = config or base_config()
    program = assemble(source)
    predictor = BranchPredictorUnit(config.bpred)
    return FetchUnit(config, program, predictor), program


def warm(fetch, cycles=40):
    """Step until the first fetch lands (cold I-cache misses resolved)."""
    cycle = 0
    while not fetch.queue and cycle < cycles:
        cycle += 1
        fetch.step(max(cycle, fetch.stall_until))
    return cycle


class TestFetchWidth:
    def test_fetches_up_to_four(self):
        fetch, _ = make_fetch("main:" + "\n nop" * 16 + "\n halt")
        cycle = warm(fetch)
        assert len(fetch.queue) == 4

    def test_respects_queue_capacity(self):
        fetch, _ = make_fetch("main:" + "\n nop" * 32 + "\n halt")
        for cycle in range(1, 6):
            fetch.step(cycle)
        assert len(fetch.queue) <= fetch.config.fetch_queue_size

    def test_line_boundary_stops_group(self):
        # 32-byte lines hold 8 instructions; start 2 before a boundary.
        source = "main:" + "\n nop" * 32 + "\n halt"
        fetch, program = make_fetch(source)
        fetch.fetch_pc = program.entry_point + 6 * 4  # 2 insts left in line
        warm(fetch)
        assert len(fetch.queue) == 2

    def test_icache_miss_stalls(self):
        fetch, _ = make_fetch("main:" + "\n nop" * 16 + "\n halt")
        assert fetch.step(cycle=1) == 0 or fetch.stall_until <= 1
        # first access cold-misses: next fetch happens after miss latency
        fetch2, _ = make_fetch("main:" + "\n nop" * 16 + "\n halt")
        fetch2.icache.sets = [[] for _ in range(fetch2.icache.num_sets)]
        got = fetch2.step(cycle=1)
        if got == 0:
            assert fetch2.stall_until == 1 + fetch2.config.icache.miss_latency


class TestControlFlow:
    def test_one_taken_branch_per_cycle(self):
        source = """
        main: j next
        next: j after
        after: halt
        """
        fetch, _ = make_fetch(source)
        # warm the icache line first
        fetch.step(cycle=1)
        fetched_per_cycle = [len(fetch.queue)]
        assert fetched_per_cycle[0] <= 1 or fetch.queue[0][0].opcode.name == "j"

    def test_taken_branch_redirects(self):
        source = """
        main: j target
              nop
              nop
        target: halt
        """
        fetch, program = make_fetch(source)
        while not fetch.queue and fetch.fetch_pc == program.entry_point:
            fetch.step(fetch.stall_until + 1)
        assert fetch.fetch_pc == program.symbol("target")

    def test_halt_blocks_fetch(self):
        fetch, _ = make_fetch("main: halt\n nop")
        cycle = 1
        while not fetch.queue:
            cycle = max(cycle + 1, fetch.stall_until)
            fetch.step(cycle)
        assert fetch.blocked

    def test_invalid_pc_blocks(self):
        fetch, program = make_fetch("main: nop\n halt")
        fetch.fetch_pc = 0xDEAD000
        fetch.step(cycle=1)
        assert fetch.blocked

    def test_redirect_clears_queue_and_unblocks(self):
        fetch, program = make_fetch("main: halt\n target: nop\n halt")
        cycle = 1
        while not fetch.queue:
            cycle = max(cycle + 1, fetch.stall_until)
            fetch.step(cycle)
        fetch.redirect(program.symbol("target"), cycle)
        assert len(fetch.queue) == 0
        assert not fetch.blocked
        assert fetch.fetch_pc == program.symbol("target")


class TestPredictionsAttached:
    def test_branches_carry_predictions(self):
        source = """
        main: beq $t0, $t1, main
              halt
        """
        fetch, _ = make_fetch(source)
        cycle = 1
        while not fetch.queue:
            cycle = max(cycle + 1, fetch.stall_until)
            fetch.step(cycle)
        op, prediction, _ = fetch.queue[0]
        assert op.opcode.name == "beq"
        assert prediction is not None

    def test_plain_ops_have_no_prediction(self):
        fetch, _ = make_fetch("main: nop\n halt")
        cycle = 1
        while not fetch.queue:
            cycle = max(cycle + 1, fetch.stall_until)
            fetch.step(cycle)
        assert fetch.queue[0][1] is None

    def test_call_pushes_ras_for_return(self):
        source = """
        main: jal fn
              halt
        fn:   jr $ra
        """
        fetch, program = make_fetch(source)
        for cycle in range(1, 30):
            fetch.step(max(cycle, fetch.stall_until))
            if fetch.queue and fetch.queue[-1][0].is_return:
                break
        returns = [f for f in fetch.queue if f[0].is_return]
        if returns:
            assert returns[0][1].target == program.symbol("main") + 4


class TestVariableFetchRate:
    """The confidence-throttled frontend (config.variable_fetch_rate)."""

    SOURCE = """
    main: nop
          beq $zero, $zero, next
    next: nop
          nop
          nop
          nop
          nop
          nop
          nop
          nop
          halt
    """

    def make_vfr(self, **overrides):
        from repro.uarch.config import vfr_config
        return make_fetch(self.SOURCE, config=vfr_config(**overrides))

    def test_weak_branch_ends_group_and_throttles(self):
        fetch, _ = self.make_vfr()
        warm(fetch)
        # Fresh gshare counters are weak: the branch ends the group...
        assert fetch.vfr_throttles == 1
        assert len(fetch.queue) == 2
        # ...and the next cycle runs at the reduced width.
        landed = fetch.queue[-1][2]
        fetch.step(landed + 1)
        assert len(fetch.queue) == 2 + fetch.config.vfr_low_conf_width
        # The cycle after that is back to full width.
        fetch.step(landed + 2)
        assert len(fetch.queue) == 2 + fetch.config.vfr_low_conf_width + 4

    def test_low_conf_width_configurable(self):
        fetch, _ = self.make_vfr(low_conf_width=1)
        warm(fetch)
        fetch.step(fetch.queue[-1][2] + 1)
        assert len(fetch.queue) == 3  # 2 from the group + width 1

    def test_confident_branch_does_not_throttle(self):
        fetch, _ = self.make_vfr()
        # Saturate every direction counter: high confidence everywhere.
        fetch.predictor.gshare.counters = bytearray(
            [3] * len(fetch.predictor.gshare.counters))
        warm(fetch)
        assert fetch.vfr_throttles == 0

    def test_base_config_never_throttles(self):
        fetch, _ = make_fetch(self.SOURCE)
        cycle = warm(fetch)
        fetch.step(cycle + 1)
        assert fetch.vfr_throttles == 0
        assert not fetch.config.variable_fetch_rate

    def test_jumps_do_not_throttle(self):
        from repro.uarch.config import vfr_config
        source = """
        main: j next
        next: nop
              nop
              halt
        """
        fetch, _ = make_fetch(source, config=vfr_config())
        cycle = warm(fetch)
        fetch.step(cycle + 1)
        assert fetch.vfr_throttles == 0

    def test_redirect_clears_pending_throttle(self):
        fetch, program = self.make_vfr()
        warm(fetch)
        assert fetch.vfr_throttles == 1
        landed = fetch.queue[-1][2]
        fetch.redirect(program.symbol("next"), landed)
        # The throttling branch was squashed: the next group is full.
        fetch.step(landed + 1)
        assert len(fetch.queue) == 4
