"""Differential test over the real workloads: timing core vs functional.

``tests/uarch/test_differential.py`` covers hand-written kernels and
random programs; this file runs the *actual benchmark analogs* — the
programs every paper table and figure is computed from — for a few
thousand committed instructions under ``verify_commits=True`` and checks
the committed architectural state against an independent
:class:`FunctionalSimulator` instance:

* ``verify_commits`` makes the core cross-check every committed
  instruction's writes and PC against its internal oracle in lockstep
  (a divergence raises ``SimulationError``);
* on top of that, this test replays the committed write stream into a
  private register file / store log and compares both against a
  functional simulator that never interacted with the core.
"""

import dataclasses

import pytest

from repro.functional import FunctionalSimulator
from repro.isa import NUM_REGS
from repro.uarch.config import PredictorKind, base_config, ir_config, \
    vp_config
from repro.uarch.core import OutOfOrderCore
from repro.workloads import get_workload, workload_names

WINDOW = 2_500  # committed instructions per (workload, config) run
MAX_CYCLES = 200_000

CONFIGS = [base_config(), ir_config(), vp_config(PredictorKind.MAGIC)]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("workload", workload_names())
def test_committed_state_matches_functional(workload, config):
    spec = get_workload(workload)
    config = dataclasses.replace(config, verify_commits=True)

    core = OutOfOrderCore(config, spec.program())
    core.skip(spec.skip_instructions)

    # Reconstruct architectural state purely from the commit stream.
    regs = list(core.spec.regs)
    stores = {}

    def on_commit(op, cycle):
        for reg, value in op.outcome.writes:
            regs[reg] = value
        if op.inst.opcode.is_store:
            stores[op.outcome.mem_addr] = op.outcome.mem_value

    core.on_commit = on_commit
    stats = core.run(max_cycles=MAX_CYCLES, max_instructions=WINDOW)
    assert stats.committed >= WINDOW, (
        f"{workload}/{config.name} committed only {stats.committed} "
        f"instructions in {MAX_CYCLES} cycles")

    reference = FunctionalSimulator(spec.program())
    reference.skip(spec.skip_instructions)
    ref_stores = {}
    for outcome in reference.stream(stats.committed):
        if outcome.inst.opcode.is_store:
            ref_stores[outcome.mem_addr] = outcome.mem_value

    assert reference.instructions_retired \
        == spec.skip_instructions + stats.committed

    for reg in range(NUM_REGS):
        assert regs[reg] == reference.state.regs[reg], (
            f"{workload}/{config.name}: register {reg} diverged after "
            f"{stats.committed} committed instructions")
    assert stores == ref_stores, (
        f"{workload}/{config.name}: committed store stream diverged")
