"""Behavioural tests: value prediction in the timing core.

These check the Section 3/4 mechanisms: dependence collapse through
predicted values, verification and selective re-execution (only the chain
head pays the penalty), the SB/NSB branch-resolution policies, spurious
squashes, multiple-execution accounting, and verification latency.
"""

import dataclasses

from repro.isa import assemble
from repro.uarch.config import (
    BranchPolicy,
    PredictorKind,
    ReexecPolicy,
    base_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore


def run(source, config, max_instructions=None, max_cycles=400_000):
    config = dataclasses.replace(config, verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    stats = core.run(max_cycles=max_cycles, max_instructions=max_instructions)
    return core, stats


# Long dependent chain recomputed with identical values each iteration:
# perfectly predictable, dataflow-bound on the base machine.
_CHAIN = "\n".join(
    f"        add $t{i % 4 + 1}, $t{(i - 1) % 4 + 1}, $t{(i - 1) % 4 + 1}"
    for i in range(1, 12))
PREDICTABLE = f"""
main:   li $s0, 400
loop:   li $t1, 21
{_CHAIN}
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""

# The chain values alternate between two sets per iteration parity: the
# last-value predictor mispredicts persistently, VP_Magic does not.
ALTERNATING = """
main:   li $s0, 400
loop:   andi $t0, $s0, 1
        sll $t1, $t0, 3
        addi $t2, $t1, 5
        add $t3, $t2, $t2
        add $t4, $t3, $t3
        add $t5, $t4, $t4
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


class TestPredictionEngagement:
    def test_predictable_chain_speeds_up(self):
        _, base = run(PREDICTABLE, base_config())
        _, vp = run(PREDICTABLE, vp_config())
        assert vp.cycles < base.cycles

    def test_predictions_are_counted(self):
        _, stats = run(PREDICTABLE, vp_config())
        assert stats.vp_result_predicted > 0.5 * stats.committed
        assert stats.vp_result_correct >= 0.95 * stats.vp_result_predicted

    def test_predicted_instructions_still_execute(self):
        """Unlike IR, VP validates late: every instruction executes."""
        _, base = run(PREDICTABLE, base_config())
        _, vp = run(PREDICTABLE, vp_config())
        assert vp.execution_attempts >= base.execution_attempts

    def test_architectural_results_unchanged(self):
        core, _ = run(PREDICTABLE, vp_config())
        assert core.spec.regs[12] == 21 * (1 << 11)

    def test_magic_beats_lvp_on_alternating_values(self):
        _, magic = run(ALTERNATING, vp_config(PredictorKind.MAGIC))
        _, lvp = run(ALTERNATING, vp_config(PredictorKind.LAST_VALUE))
        assert magic.vp_result_correct > lvp.vp_result_correct
        assert (magic.vp_result_predicted - magic.vp_result_correct) \
            <= (lvp.vp_result_predicted - lvp.vp_result_correct)


# Values stay stable for 64 iterations then change: the last-value
# predictor becomes confident and then mispredicts at each phase change.
PHASED = """
main:   li $s0, 1600
loop:   srl $t0, $s0, 6
        addi $t1, $t0, 3
        add $t2, $t1, $t1
        add $t3, $t2, $t2
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


class TestMispredictionRecovery:
    def test_wrong_predictions_trigger_reexecution(self):
        _, stats = run(PHASED, vp_config(PredictorKind.LAST_VALUE))
        mispredicted = stats.vp_result_predicted - stats.vp_result_correct
        assert mispredicted > 0
        multi = sum(count for times, count
                    in stats.exec_count_histogram.items() if times >= 2)
        assert multi > 0

    def test_nme_limits_executions_to_two(self):
        _, stats = run(PHASED,
                       vp_config(PredictorKind.LAST_VALUE,
                                 reexec=ReexecPolicy.SINGLE))
        assert max(stats.exec_count_histogram) <= 2

    def test_most_instructions_execute_once(self):
        """Table 6: even under heavy misprediction, multiple execution is
        rare because only actual consumers of wrong values replay."""
        _, stats = run(PHASED, vp_config(PredictorKind.LAST_VALUE))
        assert stats.exec_count_fraction(1) > 0.6


class TestBranchPolicies:
    def test_nsb_has_no_extra_squashes(self):
        _, base = run(ALTERNATING, base_config())
        _, nsb = run(ALTERNATING,
                     vp_config(PredictorKind.LAST_VALUE,
                               branches=BranchPolicy.NON_SPECULATIVE))
        assert nsb.spurious_squashes == 0
        assert nsb.branch_squashes <= base.branch_squashes + 2

    def test_sb_resolves_branches_sooner_than_nsb(self):
        _, sb = run(PREDICTABLE, vp_config(
            branches=BranchPolicy.SPECULATIVE, verify_latency=1))
        _, nsb = run(PREDICTABLE, vp_config(
            branches=BranchPolicy.NON_SPECULATIVE, verify_latency=1))
        assert (sb.mean_branch_resolution_latency
                <= nsb.mean_branch_resolution_latency)

    def test_spurious_squashes_under_sb_with_bad_predictions(self):
        # branch condition depends on a value LVP persistently mispredicts
        source = """
        main:   li $s0, 400
        loop:   andi $t0, $s0, 1
                addi $t1, $t0, 1
                beq $t1, $zero, never
                addi $s1, $s1, 1
        never:  addi $s0, $s0, -1
                bnez $s0, loop
                halt
        """
        _, stats = run(source, vp_config(PredictorKind.LAST_VALUE,
                                         branches=BranchPolicy.SPECULATIVE))
        _, base = run(source, base_config())
        assert stats.branch_squashes >= base.branch_squashes


class TestVerificationLatency:
    def test_latency_delays_nsb_more_than_sb(self):
        """Figure 6: 1-cycle verification hurts NSB configurations more."""
        def cycles(branches, latency):
            _, stats = run(PREDICTABLE,
                           vp_config(branches=branches,
                                     verify_latency=latency))
            return stats.cycles

        sb_cost = cycles(BranchPolicy.SPECULATIVE, 1) \
            - cycles(BranchPolicy.SPECULATIVE, 0)
        nsb_cost = cycles(BranchPolicy.NON_SPECULATIVE, 1) \
            - cycles(BranchPolicy.NON_SPECULATIVE, 0)
        assert nsb_cost >= sb_cost

    def test_latency_never_helps(self):
        for branches in (BranchPolicy.SPECULATIVE,
                         BranchPolicy.NON_SPECULATIVE):
            _, v0 = run(PREDICTABLE, vp_config(branches=branches,
                                               verify_latency=0))
            _, v1 = run(PREDICTABLE, vp_config(branches=branches,
                                               verify_latency=1))
            assert v1.cycles >= v0.cycles


class TestAddressPrediction:
    LOADS = """
    .data
    tbl: .word 11, 22, 33, 44
    .text
    main:   li $s0, 400
    loop:   li $t0, 8
            lw $t1, tbl($t0)
            add $t2, $t1, $t1
            addi $s0, $s0, -1
            bnez $s0, loop
            halt
    """

    def test_load_addresses_predicted(self):
        _, stats = run(self.LOADS, vp_config())
        assert stats.vp_addr_correct > 0.5 * stats.memory_ops

    def test_address_prediction_preserves_results(self):
        core, _ = run(self.LOADS, vp_config())
        assert core.spec.regs[10] == 66  # $t2 = 33 + 33


class TestRegressionSqueezeCascade:
    def test_nsb_finalize_cascade_on_memory_heavy_workload(self):
        """Regression: a load-finalize cascade that resolves a branch used
        to mutate the LSQ while it was being iterated (NME-NSB on the
        ijpeg analog)."""
        from repro.workloads import get_workload
        spec = get_workload("ijpeg")
        config = dataclasses.replace(
            vp_config(PredictorKind.MAGIC, ReexecPolicy.SINGLE,
                      BranchPolicy.NON_SPECULATIVE, 0),
            verify_commits=True)
        core = OutOfOrderCore(config, spec.program())
        core.skip(spec.skip_instructions)
        stats = core.run(max_instructions=8_000, max_cycles=300_000)
        assert stats.committed >= 8_000
