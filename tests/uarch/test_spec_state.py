"""Unit tests for the checkpointed speculative state."""

import pytest

from repro.isa import assemble
from repro.uarch.spec_state import SpeculativeState


@pytest.fixture
def state():
    return SpeculativeState(assemble("main: halt"))


class TestRegisters:
    def test_r0_write_ignored(self, state):
        state.write_reg(0, 99)
        assert state.read_reg(0) == 0

    def test_write_wraps_32_bits(self, state):
        state.write_reg(8, -1)
        assert state.read_reg(8) == 0xFFFFFFFF

    def test_sp_initialised(self, state):
        assert state.read_reg(29) != 0


class TestCheckpointing:
    def test_restore_registers(self, state):
        state.write_reg(8, 111)
        checkpoint = state.take_checkpoint(pc=0x1000)
        state.write_reg(8, 222)
        state.restore(checkpoint)
        assert state.read_reg(8) == 111
        state.release_checkpoint(checkpoint)

    def test_restore_memory(self, state):
        state.write_mem(0x9000, 5, 4)
        checkpoint = state.take_checkpoint(pc=0)
        state.write_mem(0x9000, 77, 4)
        state.write_mem(0x9004, 88, 4)
        state.restore(checkpoint)
        assert state.read_mem(0x9000, 4, False) == 5
        assert state.read_mem(0x9004, 4, False) == 0
        state.release_checkpoint(checkpoint)

    def test_nested_checkpoints_restore_independently(self, state):
        state.write_mem(0x100, 1, 4)
        outer = state.take_checkpoint(pc=0)
        state.write_mem(0x100, 2, 4)
        inner = state.take_checkpoint(pc=4)
        state.write_mem(0x100, 3, 4)
        state.restore(inner)
        assert state.read_mem(0x100, 4, False) == 2
        state.release_checkpoint(inner)
        state.restore(outer)
        assert state.read_mem(0x100, 4, False) == 1
        state.release_checkpoint(outer)

    def test_checkpoint_reusable_after_restore(self, state):
        checkpoint = state.take_checkpoint(pc=0)
        state.write_mem(0x200, 9, 4)
        state.restore(checkpoint)
        state.write_mem(0x200, 10, 4)
        state.restore(checkpoint)
        assert state.read_mem(0x200, 4, False) == 0
        state.release_checkpoint(checkpoint)

    def test_journal_cleared_when_no_checkpoints(self, state):
        checkpoint = state.take_checkpoint(pc=0)
        state.write_mem(0x300, 1, 4)
        state.release_checkpoint(checkpoint)
        assert state.journal_length == 0

    def test_no_journaling_without_checkpoints(self, state):
        state.write_mem(0x400, 1, 4)
        assert state.journal_length == 0

    def test_partial_byte_store_restores(self, state):
        state.write_mem(0x500, 0x11223344, 4)
        checkpoint = state.take_checkpoint(pc=0)
        state.write_mem(0x501, 0xFF, 1)
        state.restore(checkpoint)
        assert state.read_mem(0x500, 4, False) == 0x11223344
        state.release_checkpoint(checkpoint)


class TestProgramImage:
    def test_data_loaded(self):
        program = assemble("""
        .data
        v: .word 42
        .text
        main: halt
        """)
        state = SpeculativeState(program)
        assert state.read_mem(program.symbol("v"), 4, False) == 42
