"""Property-based tests against simple reference models (hypothesis).

The cache, memory and gshare implementations are checked operation-by-
operation against trivially-correct Python reference models over random
operation sequences — the structures every timing result depends on.
"""

from hypothesis import given, settings, strategies as st

from repro.functional import Memory
from repro.uarch.branch_predictor import Gshare
from repro.uarch.cache import SetAssocCache
from repro.uarch.config import BranchPredictorConfig, CacheConfig


# --------------------------------------------------------------------- cache --

class ReferenceCache:
    """LRU set-associative cache as an obviously-correct dict of lists."""

    def __init__(self, num_sets, assoc, line_bytes):
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_shift = line_bytes.bit_length() - 1
        self.sets = {index: [] for index in range(num_sets)}

    def access(self, address):
        line = address >> self.line_shift
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self.sets[index]
        hit = tag in ways
        if hit:
            ways.remove(tag)
        ways.insert(0, tag)
        del ways[self.assoc:]
        return hit


@settings(max_examples=60, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=0xFFFF),
                          min_size=1, max_size=120))
def test_cache_matches_reference(addresses):
    config = CacheConfig(size_bytes=512, associativity=2, line_bytes=32)
    cache = SetAssocCache(config)
    reference = ReferenceCache(config.num_sets, 2, 32)
    for address in addresses:
        assert cache.access(address) == reference.access(address)


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=0xFFFF),
                          min_size=1, max_size=80),
       assoc=st.sampled_from([1, 2, 4]))
def test_cache_matches_reference_any_assoc(addresses, assoc):
    config = CacheConfig(size_bytes=32 * 8 * assoc, associativity=assoc,
                         line_bytes=32)
    cache = SetAssocCache(config)
    reference = ReferenceCache(config.num_sets, assoc, 32)
    for address in addresses:
        assert cache.access(address) == reference.access(address)


# -------------------------------------------------------------------- memory --

_mem_ops = st.lists(
    st.tuples(
        st.sampled_from(["w1", "w2", "w4", "r1", "r2", "r4"]),
        st.integers(min_value=0, max_value=0x2100),  # straddles pages
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    ),
    min_size=1, max_size=120)


@settings(max_examples=60, deadline=None)
@given(operations=_mem_ops)
def test_memory_matches_byte_dict(operations):
    memory = Memory()
    reference = {}
    for op, address, value in operations:
        nbytes = int(op[1])
        if op[0] == "w":
            memory.write(address, value, nbytes)
            for offset in range(nbytes):
                reference[address + offset] = (value >> (8 * offset)) & 0xFF
        else:
            expected = 0
            for offset in range(nbytes):
                expected |= reference.get(address + offset, 0) << (8 * offset)
            assert memory.read(address, nbytes) == expected


@settings(max_examples=40, deadline=None)
@given(address=st.integers(min_value=0, max_value=0x3000),
       value=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_memory_word_round_trip(address, value):
    memory = Memory()
    memory.write_word(address, value)
    assert memory.read_word(address) == value


# -------------------------------------------------------------------- gshare --

class ReferenceGshare:
    def __init__(self, history_bits, entries):
        self.mask = entries - 1
        self.hmask = (1 << history_bits) - 1
        self.counters = {}
        self.history = 0

    def predict(self, pc):
        index = ((pc >> 2) ^ self.history) & self.mask
        taken = self.counters.get(index, 2) >= 2
        self.history = ((self.history << 1) | int(taken)) & self.hmask
        return taken

    def update(self, pc, taken, history_before):
        index = ((pc >> 2) ^ history_before) & self.mask
        counter = self.counters.get(index, 2)
        self.counters[index] = min(3, counter + 1) if taken \
            else max(0, counter - 1)


@settings(max_examples=40, deadline=None)
@given(events=st.lists(
    st.tuples(st.integers(min_value=0, max_value=0x3FC).map(lambda x: x * 4),
              st.booleans()),
    min_size=1, max_size=150))
def test_gshare_matches_reference(events):
    config = BranchPredictorConfig(history_bits=6, counter_entries=256)
    gshare = Gshare(config)
    reference = ReferenceGshare(6, 256)
    for pc, actual in events:
        history = gshare.history
        predicted = gshare.predict(pc)
        assert predicted == reference.predict(pc)
        gshare.update(pc, actual, history)
        reference.update(pc, actual, history)
        # resolve: repair both histories with the actual outcome
        gshare.repair(history, actual)
        reference.history = ((history << 1) | int(actual)) & reference.hmask
