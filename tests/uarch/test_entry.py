"""Unit tests for InflightOp dataflow helpers (HI/LO awareness etc.)."""

import dataclasses

from repro.isa import REG_HI, REG_LO, assemble
from repro.uarch.config import base_config
from repro.uarch.core import OutOfOrderCore


def committed(source):
    config = dataclasses.replace(base_config(), verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    ops = []
    core.on_commit = lambda op, cycle: ops.append(op)
    core.run(max_cycles=50_000)
    return ops


MULT_PROGRAM = """
main: li $t0, 6
      li $t1, 7
      mult $t0, $t1
      mfhi $t2
      mflo $t3
      halt
"""


class TestHiLoDataflow:
    def test_mult_entry_carries_both_halves(self):
        ops = committed(MULT_PROGRAM)
        mult = next(op for op in ops if op.inst.opcode.name == "mult")
        assert mult.value_for_reg(REG_LO) == 42
        assert mult.value_for_reg(REG_HI) == 0
        assert mult.final_value_for_reg(REG_LO) == 42
        assert mult.final_value_for_reg(REG_HI) == 0

    def test_consumers_wired_to_right_halves(self):
        ops = committed(MULT_PROGRAM)
        mfhi = next(op for op in ops if op.inst.opcode.name == "mfhi")
        mflo = next(op for op in ops if op.inst.opcode.name == "mflo")
        assert mfhi.outcome.result == 0
        assert mflo.outcome.result == 42
        assert REG_HI in mfhi.producers
        assert REG_LO in mflo.producers

    def test_hi_ready_tracked_separately(self):
        ops = committed(MULT_PROGRAM)
        mult = next(op for op in ops if op.inst.opcode.name == "mult")
        assert mult.reg_ready_cycle(REG_HI) is not None
        assert mult.reg_ready_cycle(REG_LO) is not None


class TestClassification:
    def test_flags(self):
        ops = committed("""
        main: add $t0, $t1, $t2
              lw $t3, 0($sp)
              sw $t3, 4($sp)
              beq $t0, $t3, skip
        skip: jal fn
              halt
        fn:   jr $ra
        """)
        by_name = {op.inst.opcode.name: op for op in ops}
        assert by_name["lw"].is_load and by_name["lw"].is_mem
        assert by_name["sw"].is_store and by_name["sw"].is_mem
        assert by_name["beq"].is_cond_branch and by_name["beq"].is_control
        assert by_name["beq"].needs_checkpoint
        assert by_name["jal"].is_control
        assert not by_name["jal"].needs_checkpoint  # direct target
        assert by_name["jr"].needs_checkpoint  # indirect
        assert not by_name["add"].is_control

    def test_executes_flag(self):
        ops = committed("""
        main: add $t0, $t1, $t2
              j next
        next: nop
              jr $ra
        """)
        # jr $ra with empty RAS redirects to 0 -> bad path; just inspect
        by_name = {}
        for op in ops:
            by_name.setdefault(op.inst.opcode.name, op)
        assert by_name["add"].executes
        assert not by_name["j"].executes
        assert not by_name["nop"].executes


class TestOracleSnapshot:
    def test_src_values_captured_at_dispatch(self):
        ops = committed("""
        main: li $t0, 11
              add $t1, $t0, $t0
              addi $t0, $t0, 1
              add $t2, $t0, $t0
              halt
        """)
        adds = [op for op in ops if op.inst.opcode.name == "add"]
        assert adds[0].src_values == {8: 11}
        assert adds[1].src_values == {8: 12}

    def test_inputs_match_oracle(self):
        ops = committed("main: li $t0, 5\n add $t1, $t0, $t0\n halt")
        add = next(op for op in ops if op.inst.opcode.name == "add")
        assert add.inputs_match_oracle({8: 5})
        assert not add.inputs_match_oracle({8: 6})
