"""Behavioural tests: instruction reuse in the timing core.

These check the *mechanisms* of Section 2/4.1.2: dependent-chain collapse
at decode, early branch resolution, wrong-path work recovery, store
invalidation, and the early-vs-late validation gap.
"""

import dataclasses

from repro.isa import assemble
from repro.uarch.config import IRValidation, base_config, ir_config
from repro.uarch.core import OutOfOrderCore


def run(source, config, skip=0, max_instructions=None, max_cycles=400_000):
    config = dataclasses.replace(config, verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    if skip:
        core.skip(skip)
    stats = core.run(max_cycles=max_cycles, max_instructions=max_instructions)
    return core, stats


# A loop whose body recomputes an identical long dependent chain every
# iteration: ideal reuse fodder, and long enough that the base machine is
# dataflow-bound rather than fetch-bound.
_CHAIN_OPS = "\n".join(
    f"        add $t{i % 4 + 1}, $t{(i - 1) % 4 + 1}, $t{(i - 1) % 4 + 1}"
    for i in range(1, 12))
REDUNDANT_CHAIN = f"""
main:   li $s0, 400
loop:   li $t1, 21
{_CHAIN_OPS}
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


class TestReuseEngagement:
    def test_redundant_chain_is_reused(self):
        _, stats = run(REDUNDANT_CHAIN, ir_config())
        assert stats.ir_result_reused > 0.5 * stats.committed

    def test_reuse_speeds_up_redundant_code(self):
        _, base = run(REDUNDANT_CHAIN, base_config())
        _, reuse = run(REDUNDANT_CHAIN, ir_config())
        assert reuse.cycles < base.cycles

    def test_no_reuse_without_redundancy(self):
        source = """
        main:   li $s0, 300
        loop:   add $t0, $t0, $s0
                xor $t1, $t1, $t0
                addi $s0, $s0, -1
                bnez $s0, loop
                halt
        """
        _, stats = run(source, ir_config())
        # accumulators never repeat values: only trivial reuse remains
        assert stats.ir_result_rate < 0.2

    def test_reused_instructions_do_not_execute(self):
        _, base = run(REDUNDANT_CHAIN, base_config())
        _, reuse = run(REDUNDANT_CHAIN, ir_config())
        assert reuse.execution_attempts < base.execution_attempts

    def test_architectural_results_unchanged(self):
        core, _ = run(REDUNDANT_CHAIN, ir_config())
        assert core.spec.regs[12] == 21 * (1 << 11)  # $t4 after 11 doublings


class TestEarlyVsLateValidation:
    def test_early_beats_late(self):
        """Figure 3: early validation buys most of the IR benefit."""
        _, base = run(REDUNDANT_CHAIN, base_config())
        _, early = run(REDUNDANT_CHAIN, ir_config(IRValidation.EARLY))
        _, late = run(REDUNDANT_CHAIN, ir_config(IRValidation.LATE))
        assert early.cycles <= late.cycles <= base.cycles

    def test_late_validation_still_executes(self):
        _, early = run(REDUNDANT_CHAIN, ir_config(IRValidation.EARLY))
        _, late = run(REDUNDANT_CHAIN, ir_config(IRValidation.LATE))
        assert late.execution_attempts > early.execution_attempts

    def test_strict_late_detection_loses_chains(self):
        """Deferring validation keeps the reuse test non-speculative, so
        dependent chains can no longer chain-detect: hit rates drop."""
        _, early = run(REDUNDANT_CHAIN, ir_config(IRValidation.EARLY))
        _, late = run(REDUNDANT_CHAIN, ir_config(IRValidation.LATE))
        assert late.ir_result_reused < early.ir_result_reused

    def test_relaxed_late_detection_matches_early_rates(self):
        """With late_chain_detection=True, detection is identical to the
        early scheme and only the validation point moves."""
        import dataclasses as _dc
        relaxed = ir_config(IRValidation.LATE)
        relaxed = _dc.replace(
            relaxed, ir=_dc.replace(relaxed.ir, late_chain_detection=True))
        _, early = run(REDUNDANT_CHAIN, ir_config(IRValidation.EARLY))
        _, late = run(REDUNDANT_CHAIN, relaxed)
        assert abs(early.ir_result_reused - late.ir_result_reused) \
            <= 0.1 * max(early.ir_result_reused, 1)


class TestBranchReuse:
    # A data-dependent branch whose condition chain repeats per iteration.
    BRANCHY = """
    .data
    flags: .word 1, 0, 1, 1, 0, 1, 0, 0
    .text
    main:   li $s0, 300
    outer:  li $t0, 0
    inner:  sll $t1, $t0, 2
            lw $t2, flags($t1)
            beqz $t2, skip
            addi $s2, $s2, 1
    skip:   addi $t0, $t0, 1
            slti $t3, $t0, 8
            bnez $t3, inner
            addi $s0, $s0, -1
            bnez $s0, outer
            halt
    """

    def test_branches_resolve_at_dispatch_when_reused(self):
        _, stats = run(self.BRANCHY, ir_config(), max_instructions=15000)
        assert stats.reused_branches > 0

    def test_reuse_reduces_branch_resolution_latency(self):
        _, base = run(self.BRANCHY, base_config(), max_instructions=15000)
        _, reuse = run(self.BRANCHY, ir_config(), max_instructions=15000)
        assert (reuse.mean_branch_resolution_latency
                < base.mean_branch_resolution_latency)

    def test_squashed_work_recovered(self):
        """Table 5: wrong-path results inserted into the RB get reused."""
        _, stats = run(self.BRANCHY, ir_config(), max_instructions=15000)
        assert stats.squashed_executed > 0
        assert stats.squashed_recovered > 0


class TestMemoryReuse:
    def test_load_results_reused_when_memory_stable(self):
        source = """
        .data
        tbl: .word 5, 6, 7, 8
        .text
        main:   li $s0, 300
        loop:   lw $t0, tbl
                lw $t1, tbl+4
                add $t2, $t0, $t1
                addi $s0, $s0, -1
                bnez $s0, loop
                halt
        """
        _, stats = run(source, ir_config())
        assert stats.ir_result_rate > 0.3

    def test_store_invalidates_load_reuse(self):
        """A store that overwrites the loaded location must kill result
        reuse of the stale value — architectural correctness is enforced
        by the commit-time oracle check."""
        source = """
        .data
        cell: .word 0
        .text
        main:   li $s0, 200
        loop:   lw $t0, cell
                addi $t0, $t0, 1
                sw $t0, cell
                addi $s0, $s0, -1
                bnez $s0, loop
                halt
        """
        core, stats = run(source, ir_config())
        assert core.spec.memory.read_word(
            core.program.symbol("cell")) == 200

    def test_address_reuse_without_result_reuse(self):
        """compress signature: fixed addresses, changing values."""
        source = """
        .data
        counter: .word 0
        .text
        main:   li $s0, 300
        loop:   lw $t0, counter
                addi $t0, $t0, 1
                sw $t0, counter
                addi $s0, $s0, -1
                bnez $s0, loop
                halt
        """
        _, stats = run(source, ir_config())
        assert stats.ir_addr_rate > 0.5
        assert stats.ir_addr_reused > stats.ir_result_reused


class TestChainCollapse:
    def test_dependent_chain_reuses_in_one_cycle(self):
        """Figure 2: a whole dependent chain completes together.  With
        reuse the loop body's chain takes ~1 cycle instead of ~4."""
        _, base = run(REDUNDANT_CHAIN, base_config())
        _, reuse = run(REDUNDANT_CHAIN, ir_config())
        # 400 iterations x 11-instruction dependent chain collapsed: the
        # base machine pays ~11 cycles of dataflow per iteration, the
        # reuse machine is fetch/commit bound (~4)
        assert base.cycles - reuse.cycles > 400


class TestDependenceChaining:
    def test_s_n_reuses_less_than_s_n_plus_d(self):
        """Disabling the 'd' of S_{n+d} collapses chain reuse: interior
        chain links can no longer be validated in the same cycle."""
        import dataclasses as _dc
        no_chain = ir_config()
        no_chain = _dc.replace(
            no_chain, ir=_dc.replace(no_chain.ir,
                                     dependence_chaining=False))
        _, full = run(REDUNDANT_CHAIN, ir_config())
        _, weak = run(REDUNDANT_CHAIN, no_chain)
        assert weak.ir_result_reused < full.ir_result_reused
        assert weak.cycles >= full.cycles
