"""Behavioural tests of the out-of-order core on the base configuration.

Every run uses ``verify_commits=True``: each committed instruction is
checked against an independent in-order functional execution, so these
tests validate both timing plumbing and architectural correctness.
"""

import dataclasses

import pytest

from repro.isa import assemble
from repro.uarch.config import CacheConfig, MachineConfig, base_config
from repro.uarch.core import OutOfOrderCore


def run_core(source, config=None, max_cycles=500_000):
    config = config or base_config()
    config = dataclasses.replace(config, verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    stats = core.run(max_cycles=max_cycles)
    assert stats.halted, "program did not halt in the timing core"
    return core, stats


COUNTED_LOOP = """
main:   li $t0, 50
loop:   addi $t0, $t0, -1
        bnez $t0, loop
        halt
"""


class TestBasicExecution:
    def test_halts_and_commits_everything(self):
        core, stats = run_core(COUNTED_LOOP)
        assert stats.committed == 1 + 100 + 1

    def test_architectural_result(self):
        core, stats = run_core("""
        main: li $t0, 7
              li $t1, 8
              add $t2, $t0, $t1
              halt
        """)
        assert core.spec.regs[10] == 15

    def test_ipc_between_zero_and_width(self):
        _, stats = run_core(COUNTED_LOOP)
        assert 0 < stats.ipc <= 4.0

    def test_dependent_chain_is_serialised(self):
        """A pure dependence chain commits ~1 IPC (Figure 2 base pipeline)."""
        chain = "main: li $t0, 0\n"
        chain += "\n".join(f"      addi $t0, $t0, 1" for _ in range(64))
        chain += "\n      halt"
        _, stats = run_core(chain)
        assert stats.ipc < 1.6

    def test_independent_ops_run_wide(self):
        body = "\n".join(
            f"      addi $t{i % 4}, $zero, {i}" for i in range(16))
        source = f"""
        main: li $s0, 40
        loop: {body.strip()}
              addi $s0, $s0, -1
              bnez $s0, loop
              halt
        """
        _, stats = run_core(source)
        assert stats.ipc > 2.0

    def test_mult_latency_observed(self):
        """mult (3 cycles) chains slower than add (1 cycle) chains."""
        adds = "main: li $t0, 3\n" + "\n".join(
            "      add $t0, $t0, $t0" for _ in range(40)) + "\n      halt"
        mults = "main: li $t0, 3\n" + "\n".join(
            "      mult $t0, $t0\n      mflo $t0" for _ in range(40)
        ) + "\n      halt"
        _, add_stats = run_core(adds)
        _, mult_stats = run_core(mults)
        assert mult_stats.cycles > add_stats.cycles + 40

    def test_div_non_pipelined(self):
        """Back-to-back independent divides serialise on the single divider."""
        source = "main: li $t0, 100\n li $t1, 7\n" + "\n".join(
            f"      div $t{2 + (i % 2)}, $t0, $t1" for i in range(8)
        ) + "\n      halt"
        _, stats = run_core(source)
        # 8 divides x 19-cycle issue interval dominates.
        assert stats.cycles > 8 * 19


class TestMemorySystem:
    def test_store_load_forwarding_value(self):
        core, _ = run_core("""
        .data
        buf: .space 8
        .text
        main: la $t0, buf
              li $t1, 123
              sw $t1, 0($t0)
              lw $t2, 0($t0)
              halt
        """)
        assert core.spec.regs[10] == 123

    def test_dcache_miss_slower_than_hit(self):
        """Striding across lines (all misses) is slower than one line."""
        hits = """
        .data
        buf: .space 4096
        .text
        main: la $t0, buf
              li $t1, 200
        loop: lw $t2, 0($t0)
              addi $t1, $t1, -1
              bnez $t1, loop
              halt
        """
        tiny_cache = dataclasses.replace(
            base_config(),
            dcache=CacheConfig(size_bytes=256, associativity=1,
                               line_bytes=32, miss_latency=6))
        _, hit_stats = run_core(hits)
        misses = """
        .data
        buf: .space 65536
        .text
        main: la $t0, buf
              li $t1, 200
              li $t3, 0
        loop: lw $t2, 0($t0)
              addi $t0, $t0, 512
              addi $t1, $t1, -1
              bnez $t1, loop
              halt
        """
        _, miss_stats = run_core(misses, config=tiny_cache)
        assert miss_stats.cycles > hit_stats.cycles
        assert miss_stats.dcache_misses > 150

    def test_loads_wait_for_store_addresses(self):
        """A load after a store to an unrelated address still commits the
        functionally correct value (conservative disambiguation)."""
        core, _ = run_core("""
        .data
        a: .word 5
        b: .word 9
        .text
        main: la $t0, a
              la $t1, b
              li $t2, 77
              sw $t2, 0($t1)
              lw $t3, 0($t0)
              halt
        """)
        assert core.spec.regs[11] == 5

    def test_partial_store_overlap(self):
        core, _ = run_core("""
        .data
        w: .word 0x11223344
        .text
        main: la $t0, w
              li $t1, 0xFF
              sb $t1, 1($t0)
              lw $t2, 0($t0)
              halt
        """)
        assert core.spec.regs[10] == 0x1122FF44


class TestControlFlow:
    def test_branch_misprediction_recovers(self):
        """Data-dependent unpredictable branches still commit correctly."""
        core, stats = run_core("""
        .data
        vals: .word 1, 0, 1, 1, 0, 1, 0, 0, 1, 0, 0, 1, 1, 0, 1, 0
        .text
        main:  li $s0, 0
               li $s1, 16
               li $s2, 0
        loop:  sll $t0, $s0, 2
               lw $t1, vals($t0)
               beqz $t1, skip
               addi $s2, $s2, 10
        skip:  addi $s0, $s0, 1
               bne $s0, $s1, loop
               halt
        """)
        assert core.spec.regs[18] == 80  # eight 1-entries x 10
        assert stats.branch_squashes > 0

    def test_calls_and_returns(self):
        core, stats = run_core("""
        main:   li $s0, 0
                li $s1, 20
        loop:   move $a0, $s0
                jal square
                add $s2, $s2, $v0
                addi $s0, $s0, 1
                bne $s0, $s1, loop
                halt
        square: mult $a0, $a0
                mflo $v0
                jr $ra
        """)
        assert core.spec.regs[18] == sum(i * i for i in range(20))
        assert stats.returns == 20
        assert stats.return_prediction_rate > 0.9

    def test_indirect_jump_table(self):
        core, _ = run_core("""
        .data
        table: .word case0, case1, case2
        .text
        main:  li $s0, 0
               li $s1, 30
               li $s3, 0
        loop:  li $t7, 3
               div $t0, $s0, $t7
               mfhi $t0
               sll $t0, $t0, 2
               lw $t1, table($t0)
               jr $t1
        case0: addi $s3, $s3, 1
               j next
        case1: addi $s3, $s3, 100
               j next
        case2: addi $s3, $s3, 10000
               j next
        next:  addi $s0, $s0, 1
               bne $s0, $s1, loop
               halt
        """)
        assert core.spec.regs[19] == 10 * 1 + 10 * 100 + 10 * 10000

    def test_branch_prediction_rate_tracked(self):
        _, stats = run_core(COUNTED_LOOP)
        assert stats.cond_branches == 50
        assert 0.0 <= stats.branch_prediction_rate <= 1.0

    def test_max_cycles_guard(self):
        config = dataclasses.replace(base_config(), verify_commits=True)
        core = OutOfOrderCore(config, assemble("main: j main"))
        stats = core.run(max_cycles=200)
        assert not stats.halted
        assert stats.cycles <= 200


class TestStructuralLimits:
    def test_rob_limits_window(self):
        """A long-latency head op stalls commit; the window fills but the
        machine neither deadlocks nor reorders commits."""
        source = """
        main: li $t0, 1000
              li $t1, 7
              div $t2, $t0, $t1
        """ + "\n".join(f"      addi $s0, $s0, 1" for _ in range(60)) + """
              halt
        """
        core, stats = run_core(source)
        assert core.spec.regs[16] == 60

    def test_fetch_respects_taken_branch_per_cycle(self):
        # A chain of taken jumps fetches at most one per cycle.
        hops = "\n".join(f"l{i}: j l{i + 1}" for i in range(32))
        source = f"main: {hops}\nl32: halt"
        _, stats = run_core(source)
        assert stats.cycles >= 32
