"""Unit tests for gshare, RAS and indirect prediction."""

from repro.uarch.branch_predictor import (
    BranchPredictorUnit,
    Gshare,
    IndirectPredictor,
    ReturnAddressStack,
)
from repro.uarch.config import BranchPredictorConfig


def make_gshare(history_bits=10, entries=16 * 1024):
    return Gshare(BranchPredictorConfig(history_bits=history_bits,
                                        counter_entries=entries))


class TestGshare:
    def test_initial_prediction_weakly_taken(self):
        assert make_gshare().predict(0x1000) is True

    def test_learns_not_taken(self):
        predictor = make_gshare()
        pc = 0x1000
        for _ in range(4):
            history = predictor.history
            predictor.predict(pc)
            predictor.update(pc, False, history)
            predictor.repair(history, False)
        history = predictor.history
        assert predictor.predict(pc) is False
        predictor.repair(history, False)

    def test_learns_alternating_with_history(self):
        """Gshare distinguishes outcomes via global history correlation."""
        predictor = make_gshare(history_bits=4, entries=1024)
        pattern = [True, False] * 64
        correct = 0
        for taken in pattern:
            history = predictor.history
            prediction = predictor.predict(0x2000)
            predictor.update(0x2000, taken, history)
            predictor.repair(history, taken)
            correct += prediction == taken
        # After warm-up the alternating pattern is fully predictable.
        assert correct > 100

    def test_speculative_history_update(self):
        predictor = make_gshare()
        before = predictor.history
        predictor.predict(0x1000)
        assert predictor.history != before or predictor.history == (
            (before << 1) | 1) & predictor.history_mask

    def test_repair_rewinds_history(self):
        predictor = make_gshare()
        before = predictor.history
        predictor.predict(0x1000)
        predictor.predict(0x2000)
        predictor.repair(before, actual_taken=False)
        assert predictor.history == ((before << 1) | 0) & predictor.history_mask

    def test_counter_saturation(self):
        predictor = make_gshare()
        slot = predictor.index(0x1000, 0)
        for _ in range(10):
            predictor.update(0x1000, True, 0)
        assert predictor.counters[slot] == 3
        for _ in range(10):
            predictor.update(0x1000, False, 0)
        assert predictor.counters[slot] == 0

    def test_table_1_default_sizes(self):
        predictor = make_gshare()
        assert predictor.table_size == 16 * 1024
        assert predictor.history_mask == (1 << 10) - 1


class TestReturnAddressStack:
    def test_lifo_order(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_empty_pop_returns_none(self):
        assert ReturnAddressStack(8).pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_snapshot_restore(self):
        ras = ReturnAddressStack(8)
        ras.push(1)
        snap = ras.snapshot()
        ras.push(2)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.pop() == 1


class TestIndirectPredictor:
    def test_last_target(self):
        predictor = IndirectPredictor(64)
        assert predictor.predict(0x1000) is None
        predictor.update(0x1000, 0x4000)
        assert predictor.predict(0x1000) == 0x4000

    def test_distinct_pcs(self):
        predictor = IndirectPredictor(64)
        predictor.update(0x1000, 0x4000)
        predictor.update(0x1004, 0x5000)
        assert predictor.predict(0x1000) == 0x4000
        assert predictor.predict(0x1004) == 0x5000


class TestBranchPredictorUnit:
    def test_call_pushes_return_address(self):
        unit = BranchPredictorUnit(BranchPredictorConfig())
        unit.predict_call(0x1000, 0x1004, 0x8000)
        prediction = unit.predict_return(0x9000)
        assert prediction.target == 0x1004

    def test_return_prediction_nests(self):
        unit = BranchPredictorUnit(BranchPredictorConfig())
        unit.predict_call(0x1000, 0x1004, 0x8000)
        unit.predict_call(0x8000, 0x8004, 0x9000)
        assert unit.predict_return(0x9100).target == 0x8004
        assert unit.predict_return(0x8100).target == 0x1004

    def test_repair_restores_ras(self):
        unit = BranchPredictorUnit(BranchPredictorConfig())
        unit.predict_call(0x1000, 0x1004, 0x8000)
        branch_prediction = unit.predict_branch(0x8000, 0x8100)
        unit.predict_call(0x8004, 0x8008, 0x9000)  # wrong path call
        unit.repair(branch_prediction, actual_taken=True, is_conditional=True)
        assert unit.predict_return(0x9100).target == 0x1004

    def test_not_taken_branch_has_no_target(self):
        unit = BranchPredictorUnit(BranchPredictorConfig())
        pc = 0x3000
        history = unit.gshare.history
        for _ in range(4):
            unit.gshare.update(pc, False, history)
        prediction = unit.predict_branch(pc, 0x4000)
        if not prediction.taken:
            assert prediction.target is None
