"""Differential and property-based tests: timing core vs functional sim.

The invariant: VP and IR are pure performance techniques — for ANY program
and ANY configuration, the committed architectural state must equal what
the in-order functional simulator produces.  ``verify_commits=True``
additionally checks every committed instruction's destination writes
in lockstep, so a pass here covers the full commit stream, not only the
final state.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.functional import FunctionalSimulator
from repro.isa import NUM_REGS, assemble
from repro.uarch.config import (
    BranchPolicy,
    IRValidation,
    PredictorKind,
    ReexecPolicy,
    base_config,
    hybrid_config,
    ir_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore
from repro.workloads.random_program import random_program

ALL_CONFIGS = (
    [base_config(), ir_config(), ir_config(validation=IRValidation.LATE),
     hybrid_config(), hybrid_config(verify_latency=1),
     hybrid_config(branches=BranchPolicy.NON_SPECULATIVE)]
    + [vp_config(PredictorKind.STRIDE),
       vp_config(PredictorKind.STRIDE, verify_latency=1),
       vp_config(PredictorKind.STRIDE,
                 branches=BranchPolicy.NON_SPECULATIVE)]
    + [vp_config(kind, reexec, branches, latency)
       for kind in (PredictorKind.MAGIC, PredictorKind.LAST_VALUE)
       for reexec in (ReexecPolicy.MULTIPLE, ReexecPolicy.SINGLE)
       for branches in (BranchPolicy.SPECULATIVE,
                        BranchPolicy.NON_SPECULATIVE)
       for latency in (0, 1)]
)


def functional_result(program):
    sim = FunctionalSimulator(program)
    sim.run(max_instructions=2_000_000)
    assert sim.halted
    return sim


def check_program(source, configs=ALL_CONFIGS, max_cycles=2_000_000):
    program = assemble(source)
    reference = functional_result(program)
    for config in configs:
        config = dataclasses.replace(config, verify_commits=True)
        core = OutOfOrderCore(config, program)
        stats = core.run(max_cycles=max_cycles)
        assert stats.halted, f"{config.name} did not halt"
        assert stats.committed == reference.instructions_retired, (
            f"{config.name} committed {stats.committed}, functional ran "
            f"{reference.instructions_retired}")
        for reg in range(NUM_REGS):
            assert core.spec.regs[reg] == reference.state.regs[reg], (
                f"{config.name}: register {reg} diverged")


class TestDifferentialFixed:
    """Hand-picked programs that stress specific mechanisms."""

    def test_redundant_inner_loop(self):
        check_program("""
        .data
        tbl: .word 3, 7, 1, 9
        .text
        main:   li $s0, 0
                li $s1, 30
        outer:  li $t0, 0
        inner:  sll $t1, $t0, 2
                lw $t2, tbl($t1)
                mul $t3, $t2, $t2
                add $s3, $s3, $t3
                addi $t0, $t0, 1
                slti $t4, $t0, 4
                bnez $t4, inner
                addi $s0, $s0, 1
                bne $s0, $s1, outer
                halt
        """)

    def test_unpredictable_branches_with_stores(self):
        """Wrong-path stores must be rolled back in every configuration."""
        check_program("""
        .data
        flags: .word 1, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 0, 1, 0
        out:   .space 64
        .text
        main:  li $s0, 0
               li $s1, 16
        loop:  sll $t0, $s0, 2
               lw $t1, flags($t0)
               beqz $t1, skip
               sw $s0, out($t0)
               addi $s2, $s2, 1
        skip:  addi $s0, $s0, 1
               bne $s0, $s1, loop
               halt
        """)

    def test_store_load_aliasing_chain(self):
        check_program("""
        .data
        buf: .space 32
        .text
        main:  la $t0, buf
               li $s0, 0
               li $s1, 40
        loop:  sw $s0, 0($t0)
               lw $t1, 0($t0)
               addi $t1, $t1, 3
               sw $t1, 4($t0)
               lw $t2, 4($t0)
               add $s2, $s2, $t2
               addi $s0, $s0, 1
               bne $s0, $s1, loop
               halt
        """)

    def test_recursive_calls(self):
        check_program("""
        main:  li $a0, 8
               jal fib
               move $s0, $v0
               halt
        fib:   slti $t0, $a0, 2
               beqz $t0, rec
               move $v0, $a0
               jr $ra
        rec:   addi $sp, $sp, -12
               sw $ra, 0($sp)
               sw $a0, 4($sp)
               addi $a0, $a0, -1
               jal fib
               sw $v0, 8($sp)
               lw $a0, 4($sp)
               addi $a0, $a0, -2
               jal fib
               lw $t1, 8($sp)
               add $v0, $v0, $t1
               lw $ra, 0($sp)
               addi $sp, $sp, 12
               jr $ra
        """)

    def test_value_divergence_feeding_branch(self):
        """Changing values feeding a branch: stresses spurious resolution."""
        check_program("""
        main:  li $s0, 0
               li $s1, 64
        loop:  andi $t0, $s0, 7
               slti $t1, $t0, 4
               beqz $t1, other
               addi $s2, $s2, 1
               j next
        other: addi $s3, $s3, 2
        next:  addi $s0, $s0, 1
               bne $s0, $s1, loop
               halt
        """)

    def test_hi_lo_interleaving(self):
        check_program("""
        main:  li $s0, 1
               li $s1, 12
        loop:  mult $s0, $s1
               mfhi $t0
               mflo $t1
               add $s2, $s2, $t1
               div $s1, $s0
               mflo $t2
               mfhi $t3
               add $s3, $s3, $t2
               addi $s0, $s0, 1
               slti $t4, $s0, 12
               bnez $t4, loop
               halt
        """)


class TestDifferentialRandom:
    """Seeded sweep: every configuration agrees on random programs."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_program_all_configs(self, seed):
        check_program(random_program(seed, size=50))


class TestDifferentialHypothesis:
    """Hypothesis-driven exploration of the generator's seed space.

    Runs the cheapest meaningful configuration set to keep runtime sane;
    the parametrised sweep above covers all 16 VP variants.
    """

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_base_and_ir_match_functional(self, seed):
        check_program(
            random_program(seed, size=40),
            configs=[base_config(), ir_config(),
                     vp_config(PredictorKind.MAGIC)])
