"""Structural-limit sensitivity: the Table 1 resources actually bind.

Each test shrinks one machine resource far below the paper's value and
checks that performance degrades on a workload that stresses it — which
demonstrates the limit is modelled at all, and in the right place.
"""

import dataclasses

from repro.isa import assemble
from repro.uarch.config import CacheConfig, base_config
from repro.uarch.core import OutOfOrderCore


def cycles(source, config, max_cycles=400_000):
    config = dataclasses.replace(config, verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    stats = core.run(max_cycles=max_cycles)
    assert stats.halted
    return stats.cycles


BRANCHY = """
.data
flags: .word 1, 0, 1, 1, 0, 0, 1, 0
.text
main:   li $s0, 200
outer:  li $t0, 0
inner:  sll $t1, $t0, 2
        lw $t2, flags($t1)
        li $t3, 500
        li $t4, 7
        div $t5, $t3, $t4       # slow producer keeps branches unresolved
        andi $t6, $t5, 1
        beq $t6, $t2, skip      # condition waits on the 20-cycle divide
        addi $s2, $s2, 1
skip:   addi $t0, $t0, 1
        slti $t7, $t0, 8
        bnez $t7, inner
        addi $s0, $s0, -1
        bnez $s0, outer
        halt
"""

WIDE = """
main:   li $s0, 400
loop:   addi $t0, $zero, 1
        addi $t1, $zero, 2
        addi $t2, $zero, 3
        addi $t3, $zero, 4
        addi $t4, $zero, 5
        addi $t5, $zero, 6
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""

MEMORY = """
.data
buf: .space 256
.text
main:   li $s0, 300
loop:   lw $t0, buf
        lw $t1, buf+8
        lw $t2, buf+16
        lw $t3, buf+24
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


class TestWindowLimits:
    def test_unresolved_branch_limit_binds(self):
        full = cycles(BRANCHY, base_config())
        tight = cycles(BRANCHY, dataclasses.replace(
            base_config(), max_unresolved_branches=1))
        assert tight > full

    def test_rob_size_binds(self):
        full = cycles(WIDE, base_config())
        tiny = cycles(WIDE, dataclasses.replace(base_config(), rob_size=4))
        assert tiny > full * 1.3

    def test_lsq_size_binds(self):
        full = cycles(MEMORY, base_config())
        tiny = cycles(MEMORY, dataclasses.replace(base_config(), lsq_size=2))
        assert tiny > full

    def test_fetch_queue_binds(self):
        full = cycles(WIDE, base_config())
        tiny = cycles(WIDE, dataclasses.replace(base_config(),
                                                fetch_queue_size=1))
        assert tiny > full


class TestBandwidthLimits:
    def test_narrow_commit_binds(self):
        full = cycles(WIDE, base_config())
        narrow = cycles(WIDE, dataclasses.replace(base_config(),
                                                  commit_width=1))
        assert narrow > full * 1.5

    def test_single_alu_binds(self):
        full = cycles(WIDE, base_config())
        one_alu = cycles(WIDE, dataclasses.replace(base_config(),
                                                   int_alus=1))
        assert one_alu > full

    def test_single_dcache_port_binds(self):
        full = cycles(MEMORY, base_config())
        one_port = cycles(MEMORY, dataclasses.replace(
            base_config(),
            dcache=CacheConfig(ports=1)))
        assert one_port >= full

    def test_issue_width_binds(self):
        full = cycles(WIDE, base_config())
        narrow = cycles(WIDE, dataclasses.replace(base_config(),
                                                  issue_width=1))
        assert narrow > full
