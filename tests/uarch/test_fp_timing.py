"""Timing tests for the FP side of the machine (Table 1 FP units),
including VP/IR interaction with floating-point code."""

import dataclasses

from repro.isa import assemble
from repro.isa.opcodes import REG_F0, bits_to_float
from repro.uarch.config import base_config, ir_config, vp_config
from repro.uarch.core import OutOfOrderCore


def run(source, config=None, max_cycles=300_000):
    config = dataclasses.replace(config or base_config(),
                                 verify_commits=True)
    core = OutOfOrderCore(config, assemble(source))
    stats = core.run(max_cycles=max_cycles)
    assert stats.halted
    return core, stats


class TestFpTiming:
    def test_fp_add_chain_two_cycles_per_link(self):
        chain = "main: li.s $f1, 1.0\n" + "\n".join(
            "      add.s $f1, $f1, $f1" for _ in range(30)) + "\n      halt"
        straight = "main: li.s $f1, 1.0\n" + "\n".join(
            f"      add.s $f{2 + i % 4}, $f1, $f1" for i in range(30)
        ) + "\n      halt"
        _, serial = run(chain)
        _, parallel = run(straight)
        # the dependent chain pays ~2 cycles per add; independent adds
        # run 4 wide on the 4 FP adders
        assert serial.cycles > parallel.cycles + 30

    def test_sqrt_not_pipelined(self):
        source = "main: li.s $f1, 2.0\n" + "\n".join(
            f"      sqrt.s $f{2 + i % 4}, $f1" for i in range(6)
        ) + "\n      halt"
        _, stats = run(source)
        assert stats.cycles > 6 * 24  # 24-cycle issue interval serialises

    def test_fp_div_serialises_on_single_unit(self):
        source = "main: li.s $f1, 2.0\n li.s $f2, 3.0\n" + "\n".join(
            f"      div.s $f{3 + i % 4}, $f2, $f1" for i in range(6)
        ) + "\n      halt"
        _, stats = run(source)
        assert stats.cycles > 6 * 12

    def test_architectural_results(self):
        core, _ = run("""
        .data
        v: .float 2.0, 8.0
        .text
        main: la $t0, v
              lwc1 $f1, 0($t0)
              lwc1 $f2, 4($t0)
              div.s $f3, $f2, $f1
              sqrt.s $f4, $f2
              halt
        """)
        assert bits_to_float(core.spec.regs[REG_F0 + 3]) == 4.0


FP_REDUNDANT = """
.data
coef: .float 1.5, 2.5, 0.25, 4.0
.text
main:   li $s0, 250
loop:   la $t0, coef
        lwc1 $f1, 0($t0)
        lwc1 $f2, 4($t0)
        mul.s $f3, $f1, $f2      # identical FP work every iteration
        add.s $f4, $f3, $f1
        sub.s $f5, $f4, $f2
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


class TestTechniquesOnFp:
    def test_ir_reuses_fp_work(self):
        _, base = run(FP_REDUNDANT)
        _, reuse = run(FP_REDUNDANT, ir_config())
        assert reuse.ir_result_reused > 0.3 * reuse.committed
        assert reuse.cycles < base.cycles

    def test_vp_predicts_fp_results(self):
        _, stats = run(FP_REDUNDANT, vp_config())
        assert stats.vp_result_correct > 0.3 * stats.committed

    def test_fp_results_identical_across_techniques(self):
        values = []
        for config in (base_config(), ir_config(), vp_config()):
            core, _ = run(FP_REDUNDANT, config)
            values.append(core.spec.regs[REG_F0 + 5])
        assert len(set(values)) == 1

    def test_reuse_skips_the_fp_units(self):
        _, base = run(FP_REDUNDANT)
        _, reuse = run(FP_REDUNDANT, ir_config())
        assert reuse.execution_attempts < base.execution_attempts
