"""Golden-stats regression corpus: the byte-exact contract of the core.

Every (workload x configuration) pair in the corpus was simulated once
and its canonical ``SimStats`` serialization committed under
``tests/golden/``.  These tests re-run each pair on the current core and
assert **byte identity** — not approximate equality, not same-IPC: the
exact per-instruction event counts the paper's limit-study methodology
depends on (Sodani & Sohi count executions, squashes, reuses and
predictions individually; a core change that shifts any counter by one
changes the paper's tables).

Performance work on the core hot path is only allowed to land when this
corpus is untouched.  To *intentionally* change timing behaviour,
regenerate with::

    PYTHONPATH=src python -m pytest tests/uarch/test_golden_stats.py \
        --regen-golden

and justify the diff of ``tests/golden/`` in the commit message.
"""

import os
import subprocess
from pathlib import Path

import pytest

from repro.uarch.config import (
    PredictorKind,
    base_config,
    hybrid_config,
    ir_config,
    vfr_config,
    vp_config,
)
from repro.uarch.core import OutOfOrderCore
from repro.workloads import get_workload, workload_names

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

# Budgets are part of the contract: regeneration must use the same ones.
INSTRUCTIONS = 4_000
MAX_CYCLES = 200_000

CONFIG_FACTORIES = {
    "base": base_config,
    "vp": vp_config,
    "ir": ir_config,
    "hybrid": hybrid_config,
}


def _vp_stride():
    return vp_config(PredictorKind.STRIDE)


def _vp_fcm():
    return vp_config(PredictorKind.FCM)


def _vp_select():
    return vp_config(PredictorKind.HYBRID_SELECT)


def _vfr_select():
    return vfr_config(PredictorKind.HYBRID_SELECT)


#: The predictor zoo is pinned on one workload (compress: the paper's
#: load-heavy analog) rather than the full matrix — one byte-exact cell
#: per new kind locks its timing behaviour without doubling the corpus.
ZOO_FACTORIES = {
    "vp-stride": _vp_stride,
    "vp-fcm": _vp_fcm,
    "vp-select": _vp_select,
    "vfr-select": _vfr_select,
}
ZOO_WORKLOAD = "compress"

ALL_FACTORIES = {**CONFIG_FACTORIES, **ZOO_FACTORIES}

#: Generated-workload cells (repro-gen): canonical ``gen-…`` names
#: materialise on demand, so these are corpus rows like any other — but
#: with *chosen* characteristics.  Three knob corners (redundant and
#: predictable / fresh and noisy / middle) each pinned under two of the
#: speculation schemes, so every scheme family (vp, ir, hybrid, fcm,
#: select) owns at least one synthetic cell whose behaviour is known by
#: construction rather than inherited from a paper analog.
GENERATED_CASES = [
    ("gen-s7-n48-t120-r800-b150", "ir"),
    ("gen-s7-n48-t120-r800-b150", "vp"),
    ("gen-s11-n64-t100-r250-b700", "hybrid"),
    ("gen-s11-n64-t100-r250-b700", "vp-fcm"),
    ("gen-s13-n40-t150-r500-b400", "vp-select"),
    ("gen-s13-n40-t150-r500-b400", "ir"),
]

CASES = [(workload, key)
         for workload in sorted(workload_names())
         for key in sorted(CONFIG_FACTORIES)] \
    + [(ZOO_WORKLOAD, key) for key in sorted(ZOO_FACTORIES)] \
    + GENERATED_CASES


def golden_path(workload: str, config_key: str) -> Path:
    return GOLDEN_DIR / f"{workload}__{config_key}.json"


def run_case(workload: str, config_key: str):
    """One corpus run: warm skip, then a fixed committed-inst budget."""
    spec = get_workload(workload)
    config = ALL_FACTORIES[config_key]()
    core = OutOfOrderCore(config, spec.program("ref"))
    core.skip(spec.skip_instructions)
    stats = core.run(max_cycles=MAX_CYCLES, max_instructions=INSTRUCTIONS)
    stats.workload_name = workload
    return stats


def _dirty_tracked_files() -> list:
    """Tracked files with uncommitted changes, except the corpus itself.

    Regenerating golden stats over a dirty tree bakes unreviewed source
    edits into the byte-exact contract — the resulting corpus diff can
    never be attributed to one commit.  Untracked files and pending
    edits under ``tests/golden/`` (a partially regenerated corpus) are
    fine; anything else blocks regeneration.
    """
    repo_root = GOLDEN_DIR.parents[1]
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=repo_root, capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return []  # no git available: nothing to check against
    if out.returncode != 0:
        return []  # not a git checkout (tarball / exported tree)
    dirty = []
    for line in out.stdout.splitlines():
        path = line[3:].split(" -> ")[-1].strip().strip('"')
        if not path.startswith("tests/golden/"):
            dirty.append(path)
    return dirty


@pytest.fixture(scope="session")
def regen(request):
    flag = request.config.getoption("--regen-golden")
    if flag and not os.environ.get("REPRO_REGEN_ALLOW_DIRTY"):
        dirty = _dirty_tracked_files()
        if dirty:
            pytest.exit(
                "--regen-golden refused: the working tree has uncommitted "
                "changes outside tests/golden/ (%s). Commit or stash them "
                "first so the corpus diff is attributable to one change, "
                "or set REPRO_REGEN_ALLOW_DIRTY=1 to override."
                % ", ".join(sorted(dirty)[:8]), returncode=2)
    return flag


@pytest.mark.parametrize("workload,config_key", CASES)
def test_golden_stats(workload, config_key, regen):
    stats = run_case(workload, config_key)
    text = stats.canonical_json() + "\n"
    path = golden_path(workload, config_key)
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden file {path.name}; generate the corpus with "
        f"--regen-golden")
    golden = path.read_text()
    if golden != text:
        # Surface which counters moved, not just "bytes differ".
        import json

        from repro.metrics.stats import SimStats
        want = SimStats.from_dict(json.loads(golden))
        diff = stats.diff(want)
        raise AssertionError(
            f"{path.name}: stats diverged from the golden corpus: {diff}")


@pytest.fixture(scope="session")
def warm_store(tmp_path_factory):
    """One on-disk checkpoint store shared by every warm-restore case."""
    from repro.functional.checkpoint import CheckpointStore
    return CheckpointStore(tmp_path_factory.mktemp("checkpoints"))


@pytest.mark.parametrize("workload,config_key", CASES)
def test_golden_stats_from_checkpoint(workload, config_key, regen,
                                      warm_store):
    """Checkpoint-restored runs are byte-identical to cold-start runs.

    This is the contract that makes the warm-state store a pure
    optimisation: for every golden (workload x config) pair, restoring
    the captured warm state must reproduce the committed stats exactly
    (same bytes the cold ``core.skip`` path produced).
    """
    if regen:
        pytest.skip("corpus regeneration uses the cold path only")
    spec = get_workload(workload)
    program = spec.program("ref")
    core = OutOfOrderCore(ALL_FACTORIES[config_key](), program)
    core.restore_warm(warm_store.get(program, spec.skip_instructions))
    stats = core.run(max_cycles=MAX_CYCLES, max_instructions=INSTRUCTIONS)
    stats.workload_name = workload
    golden = golden_path(workload, config_key).read_text()
    assert stats.canonical_json() + "\n" == golden


def test_corpus_has_no_orphans():
    """Every committed golden file corresponds to a live corpus case."""
    expected = {golden_path(w, k).name for w, k in CASES}
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual == expected
