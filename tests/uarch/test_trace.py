"""Tests for the pipeline tracer."""

import dataclasses

from repro.isa import assemble
from repro.uarch.config import base_config, ir_config, vp_config
from repro.uarch.core import OutOfOrderCore
from repro.uarch.trace import (
    PipelineTracer,
    TraceRecord,
    records_from_events,
    render_trace_table,
)

SOURCE = """
main:   li $s0, 30
loop:   li $t0, 4
        add $t1, $t0, $t0
        add $t2, $t1, $t1
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


def traced_run(config, limit=64, start_cycle=0):
    config = dataclasses.replace(config, verify_commits=True)
    core = OutOfOrderCore(config, assemble(SOURCE))
    tracer = PipelineTracer(core, limit=limit, start_cycle=start_cycle)
    core.run(max_cycles=20_000)
    return tracer


class TestRecording:
    def test_records_in_commit_order(self):
        tracer = traced_run(base_config())
        commits = [record.commit for record in tracer.records]
        assert commits == sorted(commits)

    def test_limit_respected(self):
        tracer = traced_run(base_config(), limit=5)
        assert len(tracer.records) == 5

    def test_start_cycle_skips_warmup(self):
        tracer = traced_run(base_config(), start_cycle=50)
        assert all(record.commit >= 50 for record in tracer.records)

    def test_stage_ordering_invariant(self):
        for record in traced_run(base_config()).records:
            assert record.dispatch <= record.complete <= record.commit
            if record.issue is not None:
                assert record.dispatch < record.issue

    def test_origin_labels(self):
        reuse_tracer = traced_run(ir_config(), limit=64)
        assert any(r.origin == "reused" for r in reuse_tracer.records)
        vp_tracer = traced_run(vp_config(), limit=64)
        assert any(r.origin.startswith("predicted")
                   for r in vp_tracer.records)

    def test_executions_counted(self):
        tracer = traced_run(base_config())
        executed = [r for r in tracer.records if r.origin == "executed"
                    and not r.text.startswith(("j ", "jal", "nop", "halt"))]
        assert all(r.executions >= 1 for r in executed)

    def test_detach_restores_hook(self):
        core = OutOfOrderCore(base_config(), assemble(SOURCE))
        tracer = PipelineTracer(core)
        tracer.detach()
        assert core.on_commit is None


class TestRendering:
    def test_render_contains_instructions(self):
        text = traced_run(base_config()).render()
        assert "add" in text and "commit" in text

    def test_render_relative_cycles_start_at_zero(self):
        tracer = traced_run(base_config())
        first_line = tracer.render().splitlines()[2]
        assert " 0 " in first_line or first_line.split()[-5] == "0"

    def test_empty_trace_renders(self):
        core = OutOfOrderCore(base_config(), assemble("main: halt"))
        tracer = PipelineTracer(core, start_cycle=10_000)
        core.run(max_cycles=100)
        assert "no instructions" in tracer.render()

    def test_chain_spread_smaller_with_reuse(self):
        base = traced_run(base_config(), limit=20, start_cycle=40)
        reuse = traced_run(ir_config(), limit=20, start_cycle=40)
        assert reuse.chain_spread() <= base.chain_spread()


def synthetic_record(**overrides):
    kwargs = dict(pc=0x1000, text="add $t1, $t0, $t0", dispatch=0,
                  issue=2, complete=3, commit=4, executions=1,
                  reused=False, predicted=False, prediction_correct=None)
    kwargs.update(overrides)
    return TraceRecord(**kwargs)


class TestAlignment:
    """Column positions must agree on every line, whatever the cell
    widths — long disassembly, huge cycle numbers, or a text column
    narrower than its header."""

    LEFT = ("pc", "instruction", "how")
    RIGHT = ("disp", "issue", "done", "commit")

    def assert_grid(self, text):
        header, separator, *rows = text.splitlines()
        assert set(separator) == {"-"}
        assert len(separator) >= len(header.rstrip())
        for token in self.LEFT:
            start = header.index(token)
            for row in rows:
                assert row[start] != " "
                if start:
                    assert row[start - 1] == " "
        for token in self.RIGHT:
            end = header.index(token) + len(token)
            for row in rows:
                assert row[end - 1] != " "  # right-aligned: digit or '-'
                assert len(row) == end or row[end] == " "

    def test_long_disassembly_does_not_shear_columns(self):
        records = [
            synthetic_record(),
            synthetic_record(pc=0xDEAD0, text="lw $t9, -32768($gp)  ",
                             dispatch=999_000, issue=999_123,
                             complete=1_234_567, commit=1_234_570,
                             reused=True),
            synthetic_record(text="x", issue=None, predicted=True,
                             prediction_correct=False),
        ]
        self.assert_grid(render_trace_table(records, relative=False))

    def test_relative_and_absolute_both_aligned(self):
        records = [synthetic_record(dispatch=500, issue=510,
                                    complete=520, commit=530),
                   synthetic_record(dispatch=501, issue=None,
                                    complete=502, commit=531)]
        self.assert_grid(render_trace_table(records, relative=True))
        self.assert_grid(render_trace_table(records, relative=False))


class TestOfflineReconstruction:
    """records_from_events must rebuild the exact live Figure-2 view
    from a saved telemetry trace (both paths share render_trace_table)."""

    def test_saved_commit_events_reproduce_live_render(self):
        config = dataclasses.replace(ir_config(), verify_commits=True)
        core = OutOfOrderCore(config, assemble(SOURCE))
        tracer = PipelineTracer(core, limit=100_000)
        sink = core.enable_telemetry(interval=100)
        core.run(max_cycles=20_000)
        rebuilt = records_from_events(sink.trace)
        assert len(rebuilt) == len(tracer.records)
        assert render_trace_table(rebuilt) == tracer.render()

    def test_non_commit_events_ignored(self):
        class Event:
            def __init__(self, kind):
                self.kind = kind
                self.cycle, self.seq, self.pc, self.data = 1, 1, 0, {}

        assert records_from_events([Event("dispatch"),
                                    Event("squash")]) == []
