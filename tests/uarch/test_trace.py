"""Tests for the pipeline tracer."""

import dataclasses

from repro.isa import assemble
from repro.uarch.config import base_config, ir_config, vp_config
from repro.uarch.core import OutOfOrderCore
from repro.uarch.trace import PipelineTracer

SOURCE = """
main:   li $s0, 30
loop:   li $t0, 4
        add $t1, $t0, $t0
        add $t2, $t1, $t1
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


def traced_run(config, limit=64, start_cycle=0):
    config = dataclasses.replace(config, verify_commits=True)
    core = OutOfOrderCore(config, assemble(SOURCE))
    tracer = PipelineTracer(core, limit=limit, start_cycle=start_cycle)
    core.run(max_cycles=20_000)
    return tracer


class TestRecording:
    def test_records_in_commit_order(self):
        tracer = traced_run(base_config())
        commits = [record.commit for record in tracer.records]
        assert commits == sorted(commits)

    def test_limit_respected(self):
        tracer = traced_run(base_config(), limit=5)
        assert len(tracer.records) == 5

    def test_start_cycle_skips_warmup(self):
        tracer = traced_run(base_config(), start_cycle=50)
        assert all(record.commit >= 50 for record in tracer.records)

    def test_stage_ordering_invariant(self):
        for record in traced_run(base_config()).records:
            assert record.dispatch <= record.complete <= record.commit
            if record.issue is not None:
                assert record.dispatch < record.issue

    def test_origin_labels(self):
        reuse_tracer = traced_run(ir_config(), limit=64)
        assert any(r.origin == "reused" for r in reuse_tracer.records)
        vp_tracer = traced_run(vp_config(), limit=64)
        assert any(r.origin.startswith("predicted")
                   for r in vp_tracer.records)

    def test_executions_counted(self):
        tracer = traced_run(base_config())
        executed = [r for r in tracer.records if r.origin == "executed"
                    and not r.text.startswith(("j ", "jal", "nop", "halt"))]
        assert all(r.executions >= 1 for r in executed)

    def test_detach_restores_hook(self):
        core = OutOfOrderCore(base_config(), assemble(SOURCE))
        tracer = PipelineTracer(core)
        tracer.detach()
        assert core.on_commit is None


class TestRendering:
    def test_render_contains_instructions(self):
        text = traced_run(base_config()).render()
        assert "add" in text and "commit" in text

    def test_render_relative_cycles_start_at_zero(self):
        tracer = traced_run(base_config())
        first_line = tracer.render().splitlines()[2]
        assert " 0 " in first_line or first_line.split()[-5] == "0"

    def test_empty_trace_renders(self):
        core = OutOfOrderCore(base_config(), assemble("main: halt"))
        tracer = PipelineTracer(core, start_cycle=10_000)
        core.run(max_cycles=100)
        assert "no instructions" in tracer.render()

    def test_chain_spread_smaller_with_reuse(self):
        base = traced_run(base_config(), limit=20, start_cycle=40)
        reuse = traced_run(ir_config(), limit=20, start_cycle=40)
        assert reuse.chain_spread() <= base.chain_spread()
