"""Integration: the experiment CLI's --charts flag end to end."""

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.cli import main


class TestChartsFlag:
    def test_figure8_with_charts(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.cli.default_runner",
            lambda **kw: ExperimentRunner(max_instructions=1_000,
                                          cache_dir=tmp_path, quiet=True))
        assert main(["figure8", "--charts"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "|" in out  # bars rendered

    def test_parser_rejects_unknown_experiment(self):
        from repro.experiments.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["not-an-experiment"])
