"""Unit tests for machine configurations."""

import dataclasses

import pytest

from repro.uarch.config import (
    BranchPolicy,
    CacheConfig,
    IRValidation,
    MachineConfig,
    PredictorKind,
    ReexecPolicy,
    all_vp_configs,
    base_config,
    hybrid_config,
    ir_config,
    vp_config,
)


class TestTable1Defaults:
    def test_widths(self):
        config = base_config()
        assert config.fetch_width == 4
        assert config.issue_width == 4
        assert config.commit_width == 4

    def test_window(self):
        config = base_config()
        assert config.rob_size == 32
        assert config.lsq_size == 32
        assert config.max_unresolved_branches == 8

    def test_functional_units(self):
        config = base_config()
        assert config.int_alus == 8
        assert config.load_store_units == 2
        assert config.int_mult_div_units == 1

    def test_caches(self):
        config = base_config()
        for cache in (config.icache, config.dcache):
            assert cache.size_bytes == 64 * 1024
            assert cache.associativity == 2
            assert cache.line_bytes == 32
            assert cache.miss_latency == 6
        assert config.dcache.ports == 2

    def test_branch_predictor(self):
        config = base_config()
        assert config.bpred.history_bits == 10
        assert config.bpred.counter_entries == 16 * 1024

    def test_vp_ir_disabled_by_default(self):
        config = base_config()
        assert not config.vp.enabled
        assert not config.ir.enabled


class TestSection413Structures:
    def test_vpt_sizing(self):
        config = vp_config()
        assert config.vp.entries == 16 * 1024
        assert config.vp.associativity == 4

    def test_rb_sizing(self):
        config = ir_config()
        assert config.ir.entries == 4 * 1024
        assert config.ir.associativity == 4

    def test_storage_ratio_is_4_to_1(self):
        assert vp_config().vp.entries == 4 * ir_config().ir.entries

    def test_lvp_single_instance(self):
        assert vp_config(PredictorKind.LAST_VALUE).vp.associativity == 1


class TestNamedConstructors:
    def test_vp_matrix_has_four_configs(self):
        configs = all_vp_configs(PredictorKind.MAGIC, 0)
        names = {c.name for c in configs}
        assert len(names) == 4
        assert any("me-sb" in n for n in names)
        assert any("nme-nsb" in n for n in names)

    def test_config_names_encode_parameters(self):
        config = vp_config(PredictorKind.LAST_VALUE, ReexecPolicy.SINGLE,
                           BranchPolicy.NON_SPECULATIVE, 1)
        assert config.name == "vp-lvp-nme-nsb-v1"

    def test_ir_names(self):
        assert ir_config().name == "reuse-n+d"
        assert ir_config(IRValidation.LATE).name == "reuse-late"

    def test_hybrid_enables_both(self):
        config = hybrid_config()
        assert config.hybrid and config.vp.enabled and config.ir.enabled

    def test_with_name(self):
        assert base_config().with_name("custom").name == "custom"

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            base_config().rob_size = 64

    def test_cache_set_count(self):
        assert CacheConfig().num_sets == 1024


class TestZooEnumeration:
    """Sweep machinery must enumerate every predictor kind."""

    def test_all_vp_configs_covers_every_kind(self):
        from repro.uarch.config import all_vp_configs
        enumerated = {config.vp.kind for config in all_vp_configs()}
        # Iterating the enum (not a hand-kept list) guarantees a newly
        # added PredictorKind cannot silently miss the sweeps.
        assert enumerated == set(PredictorKind)
        for member in (PredictorKind.STRIDE, PredictorKind.FCM,
                       PredictorKind.HYBRID_SELECT):
            assert member in enumerated

    def test_all_vp_configs_single_kind(self):
        from repro.uarch.config import all_vp_configs
        configs = all_vp_configs(PredictorKind.FCM)
        assert len(configs) == 4  # ME/NME x SB/NSB
        assert {c.vp.kind for c in configs} == {PredictorKind.FCM}

    def test_full_matrix_size_and_unique_names(self):
        from repro.uarch.config import all_vp_configs
        configs = all_vp_configs()
        assert len(configs) == 4 * len(PredictorKind)
        assert len({c.name for c in configs}) == len(configs)

    def test_vfr_config_naming_and_knobs(self):
        from repro.uarch.config import vfr_config
        plain = vfr_config()
        assert plain.name == "base-vfr"
        assert plain.variable_fetch_rate
        assert not plain.vp.enabled
        stacked = vfr_config(PredictorKind.HYBRID_SELECT, low_conf_width=1)
        assert stacked.name == "vp-select-me-sb-v0-vfr"
        assert stacked.vp.enabled
        assert stacked.vfr_low_conf_width == 1

    def test_zoo_configs_cover_realistic_kinds(self):
        from repro.experiments.configs import ZOO_KINDS, zoo_configs
        kinds = {c.vp.kind for c in zoo_configs() if c.vp.enabled}
        assert kinds == set(ZOO_KINDS)
        assert any(c.variable_fetch_rate for c in zoo_configs())
