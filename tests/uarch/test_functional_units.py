"""Unit tests for functional-unit pools."""

from repro.isa import OpClass
from repro.uarch.config import base_config
from repro.uarch.functional_units import FUPool, FunctionalUnits


class TestFUPool:
    def test_grants_up_to_count(self):
        pool = FUPool("alu", 2)
        assert pool.try_issue(cycle=1, issue_interval=1)
        assert pool.try_issue(cycle=1, issue_interval=1)
        assert not pool.try_issue(cycle=1, issue_interval=1)

    def test_units_free_after_interval(self):
        pool = FUPool("div", 1)
        assert pool.try_issue(cycle=1, issue_interval=19)
        assert not pool.try_issue(cycle=10, issue_interval=19)
        assert pool.try_issue(cycle=20, issue_interval=19)

    def test_pipelined_unit_accepts_every_cycle(self):
        pool = FUPool("mult", 1)
        for cycle in range(1, 5):
            assert pool.try_issue(cycle, issue_interval=1)

    def test_available_counts(self):
        pool = FUPool("alu", 3)
        pool.try_issue(1, 5)
        assert pool.available(1) == 2
        assert pool.available(6) == 3

    def test_grant_denial_accounting(self):
        pool = FUPool("ls", 1)
        pool.try_issue(1, 1)
        pool.try_issue(1, 1)
        assert pool.grants == 1
        assert pool.denials == 1


class TestFunctionalUnits:
    def test_paper_pool_sizes(self):
        units = FunctionalUnits(base_config())
        assert len(units.pools[OpClass.INT_ALU].busy_until) == 8
        assert len(units.pools[OpClass.LOAD_STORE].busy_until) == 2
        assert len(units.pools[OpClass.INT_DIV].busy_until) == 1

    def test_branches_share_alus(self):
        units = FunctionalUnits(base_config())
        assert units.pools[OpClass.BRANCH] is units.pools[OpClass.INT_ALU]

    def test_mult_and_div_share_unit(self):
        units = FunctionalUnits(base_config())
        assert units.pools[OpClass.INT_MULT] is units.pools[OpClass.INT_DIV]
        assert units.try_issue(OpClass.INT_DIV, 1, 19)
        assert not units.try_issue(OpClass.INT_MULT, 5, 1)

    def test_request_accounting_deduplicates_shared_pools(self):
        units = FunctionalUnits(base_config())
        units.try_issue(OpClass.INT_ALU, 1, 1)
        units.try_issue(OpClass.BRANCH, 1, 1)
        assert units.requests() == 2
        assert units.denials() == 0
