"""Property-based invariants of the event-driven scheduler.

The event-driven core replaced the per-cycle ROB/FU scan with a
completion-event heap, a wakeup (issue) queue, and a cycle-skip
fast-forward.  These tests pin the invariants that rewrite relies on,
over random — but terminating-by-construction — programs and every
machine configuration:

* an instruction never begins execution before every register operand
  has been broadcast; loads issuing on a reused or predicted effective
  address are the one sanctioned exception (issuing before the base
  register resolves is the whole point of address reuse/prediction);
* every writeback fires at exactly the completion cycle it was
  scheduled for, and writebacks are processed in strictly increasing
  ``(cycle, seq)`` order — the heap never reorders or loses an event;
* the cycle-skip fast-forward never jumps onto or past a scheduled
  event, so no event can ever fire late;
* cycle-skip is observationally invisible: ``SimStats.canonical_json``
  is byte-identical with fast-forward on and off.
"""

from collections import defaultdict

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.isa import assemble
from repro.uarch.config import (
    IRValidation,
    base_config,
    hybrid_config,
    ir_config,
    vp_config,
)
from repro.uarch.core import _EVENT_COMPLETE, OutOfOrderCore
from repro.workloads.random_program import random_program

MAX_CYCLES = 200_000  # far above any generated program's runtime

CONFIGS = [
    ("base", base_config),
    ("ir-early", ir_config),
    ("ir-late", lambda: ir_config(IRValidation.LATE)),
    ("vp", vp_config),
    ("hybrid", hybrid_config),
]


class InstrumentedCore(OutOfOrderCore):
    """Core that checks scheduler invariants at every hook crossing."""

    def __init__(self, config, program):
        super().__init__(config, program)
        self.violations = []
        self._scheduled = defaultdict(list)  # seq -> completion cycles
        self.completion_log = []  # (cycle, seq) in processing order

    def _schedule(self, cycle, kind, i):
        if kind == _EVENT_COMPLETE:
            self._scheduled[self.e_seq[i]].append(cycle)
        super()._schedule(cycle, kind, i)

    def _start_execution(self, i, address=None, forwarding=None):
        addr_speculative = self.e_is_load[i] and (self.e_addr_reused[i]
                                                  or self.e_addr_predicted[i])
        if not addr_speculative \
                and not self.pool.operands_ready(i, self.cycle):
            self.violations.append(
                f"{self.e_meta[i].opcode.name} seq={self.e_seq[i]} issued "
                f"at cycle {self.cycle} before its operands were broadcast")
        super()._start_execution(i, address, forwarding)

    def _on_complete(self, i):
        seq = self.e_seq[i]
        pending = self._scheduled.get(seq)
        if pending and self.cycle in pending:
            pending.remove(self.cycle)
        else:
            self.violations.append(
                f"completion of seq={seq} fired at cycle {self.cycle}, "
                f"which was never its scheduled completion cycle")
        self.completion_log.append((self.cycle, seq))
        super()._on_complete(i)

    def _fast_forward(self, max_cycles):
        before = self.cycle
        super()._fast_forward(max_cycles)
        if self.cycle > before and self.events \
                and self.events[0][0] <= self.cycle:
            self.violations.append(
                f"fast-forward jumped {before} -> {self.cycle} past the "
                f"event scheduled for cycle {self.events[0][0]}")


def _run_instrumented(seed, size, factory):
    program = assemble(random_program(seed, size=size))
    core = InstrumentedCore(factory(), program)
    core.run(max_cycles=MAX_CYCLES)
    assert core.halted, "generated program failed to halt"
    return core


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(10, 60),
       config=st.sampled_from(CONFIGS))
def test_scheduler_invariants(seed, size, config):
    """Operand readiness, exact-cycle writeback, and skip bounds hold."""
    name, factory = config
    core = _run_instrumented(seed, size, factory)
    assert not core.violations, \
        f"[{name}] " + "; ".join(core.violations[:5])


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(10, 60),
       config=st.sampled_from(CONFIGS))
def test_writeback_order_matches_completion_cycles(seed, size, config):
    """Completions process in strictly increasing (cycle, seq) order.

    Strict, not merely nondecreasing: an op re-issues only after its
    previous completion fired, so two completions can never share a
    ``(cycle, seq)`` pair, and the heap pops same-cycle events in seq
    order.
    """
    _, factory = config
    core = _run_instrumented(seed, size, factory)
    log = core.completion_log
    assert log, "program completed no instructions"
    for earlier, later in zip(log, log[1:]):
        assert earlier < later, \
            f"writeback order violated: {earlier} processed before {later}"


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**20), size=st.integers(10, 60),
       config=st.sampled_from(CONFIGS))
def test_cycle_skip_is_observationally_invisible(seed, size, config):
    """fast_forward on/off produce byte-identical canonical stats."""
    _, factory = config
    program_text = random_program(seed, size=size)

    skipping = OutOfOrderCore(factory(), assemble(program_text))
    skipping.run(max_cycles=MAX_CYCLES)

    stepping = OutOfOrderCore(factory(), assemble(program_text))
    stepping.fast_forward = False
    stepping.run(max_cycles=MAX_CYCLES)

    assert skipping.stats.canonical_json() == stepping.stats.canonical_json()
