"""Property tests for the structure-of-arrays entry pool.

The pool is the foundation the SoA core stands on; these tests pin its
three load-bearing invariants directly, without a core in the loop:

* **Tokens never alias.**  However alloc/free/retire interleave, a
  token handed out for one allocation never validates for a different
  one — recycled slots get strictly newer sequence numbers and freed
  slots validate nothing (``seq_of == -1``).
* **free() is the squash.**  Releasing a slot restores every dynamic
  field to the state a never-allocated slot has: squash recovery in the
  core *is* this array reset, so a recycled slot must be
  indistinguishable from a fresh one (identity fields are exempt by
  contract — every ``alloc`` overwrites them).
* **Occupancy accounting is exact.**  ``pool.live`` is what telemetry's
  interval sampler cross-checks against ROB occupancy; live/pinned must
  track alloc/retire/free exactly, and a full in-flight population must
  equal the ROB+wrong-path population the core reports.

Every test runs once per available kernel backend (``python`` always;
``compiled`` too when the mypyc extension is built), so the invariants
are pinned on both implementations, not just the interpreted one.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend import available_backends, use
from repro.isa import assemble
from repro.uarch.config import base_config, hybrid_config, vp_config
from repro.uarch.core import OutOfOrderCore
from repro.uarch.entry import _SCALAR_DEFAULTS, IDX_MASK, SEQ_SHIFT
from repro.workloads.random_program import random_program

BACKENDS = available_backends()

each_backend = pytest.mark.parametrize("backend_name", BACKENDS)


def _make_pool(backend_name, capacity):
    with use(backend_name) as active:
        return active.entry_pool.EntryPool(capacity)


def _make_core(backend_name, config, program, cls=OutOfOrderCore):
    # The core snapshots the backend at construction; running it later
    # outside the context keeps using the same kernel modules.
    with use(backend_name):
        return cls(config, program)

#: Identity fields: written unconditionally by every alloc, so free()
#: deliberately leaves them stale (seq_of is the exception — it is the
#: token validity word and must read -1 for a free slot).
_IDENTITY = {"meta", "outcome", "dispatch_cycle", "is_load", "is_store",
             "is_mem", "is_control", "writes_hi_lo"}

_DYNAMIC_DEFAULTS = [(name, default) for name, default in _SCALAR_DEFAULTS
                     if name not in _IDENTITY]


class _FakeMeta:
    """Minimal meta carrying just the flags alloc copies."""

    def __init__(self, is_load=False, is_store=False, is_control=False):
        self.is_load = is_load
        self.is_store = is_store
        self.is_mem = is_load or is_store
        self.is_control = is_control
        self.writes_hi_lo = False


_KINDS = [_FakeMeta(), _FakeMeta(is_load=True), _FakeMeta(is_store=True),
          _FakeMeta(is_control=True)]


def _assert_pristine(pool, i):
    for name, default in _DYNAMIC_DEFAULTS:
        assert getattr(pool, name)[i] == default, \
            f"free() left {name}[{i}] = {getattr(pool, name)[i]!r}"
    assert pool.seq_of[i] == -1
    assert pool.producers[i] == {}
    assert pool.src_values[i] == {}
    assert pool.consumers[i] == []
    assert pool.buf_a[i] == {} and pool.buf_b[i] == {}
    assert pool.used_values[i] is pool.buf_a[i]


#: Fields only a memory (or, for current_addr, control) op's lifetime
#: can write; free() resets them exactly under those conditions.
_MEM_ONLY = {"used_addr", "addr_known_cycle", "forwarded_from",
             "issue_addr"}
_MEM_OR_CONTROL = {"current_addr"}  # indirect jumps record a target too
_CONTROL_ONLY = {"prediction", "believed_taken", "believed_target",
                 "resolved_final", "last_resolution_cycle", "checkpoint",
                 "rename_snapshot"}


def _smudge(pool, i):
    """Write a sentinel into every dynamic field this op could touch.

    Mirrors the reset contract: a non-memory op can never dirty the
    address fields, a non-control op never the control fields, so
    free() is entitled to skip them.
    """
    is_mem = pool.is_mem[i]
    is_control = pool.is_control[i]
    for name, _default in _DYNAMIC_DEFAULTS:
        if name in _MEM_ONLY and not is_mem:
            continue
        if name in _MEM_OR_CONTROL and not (is_mem or is_control):
            continue
        if name in _CONTROL_ONLY and not is_control:
            continue
        getattr(pool, name)[i] = 0xDEAD
    pool.retired[i] = False  # counters: the slot is still live
    pool.producers[i][3] = 0
    pool.src_values[i][3] = 7
    pool.consumers[i].append(123)
    pool.buf_a[i][1] = 2
    pool.buf_b[i][4] = 5
    pool.used_values[i] = pool.buf_b[i]


# ---------------------------------------------------------------- aliasing --


@each_backend
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(st.integers(0, 2), min_size=1, max_size=200),
       capacity=st.integers(1, 8))
def test_tokens_never_alias_across_recycling(backend_name, ops, capacity):
    """No recycling pattern can make a stale token validate.

    Ops: 0 = alloc, 1 = free oldest live, 2 = free newest live.  Every
    token ever issued is remembered; at each step exactly the tokens of
    currently-live allocations may validate.
    """
    pool = _make_pool(backend_name, capacity)
    seq = 0
    live = {}  # token -> slot
    dead = set()
    for op in ops:
        if op == 0:
            seq += 1
            i = pool.alloc(seq, _KINDS[seq % len(_KINDS)], None, cycle=seq)
            tok = (seq << SEQ_SHIFT) | i
            live[tok] = i
        elif live:
            tok, i = (next(iter(live.items())) if op == 1
                      else list(live.items())[-1])
            pool.free(i)
            del live[tok]
            dead.add(tok)
        for tok in live:
            assert pool.valid(tok), "live token stopped validating"
        for tok in dead:
            assert not pool.valid(tok), "freed token still validates"
    assert pool.live == len(live)
    assert len(pool.free_list) == pool.capacity - len(live)


@each_backend
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rounds=st.integers(1, 300))
def test_recycled_ids_never_collide_with_live(backend_name, rounds):
    """A LIFO-recycled id reused immediately still gets a unique token."""
    pool = _make_pool(backend_name, 2)
    seq = 0
    prev_tok = None
    for _ in range(rounds):
        seq += 1
        i = pool.alloc(seq, _KINDS[0], None, cycle=seq)
        tok = pool.token(i)
        if prev_tok is not None:
            assert tok != prev_tok
            assert not pool.valid(prev_tok)
        pool.free(i)
        prev_tok = tok


# ------------------------------------------------------------ array reset --


@each_backend
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kind=st.integers(0, 3), retire_first=st.booleans(),
       data=st.data())
def test_free_restores_pristine_state(backend_name, kind, retire_first,
                                      data):
    """After free(), a slot is indistinguishable from a never-used one.

    This is the squash-as-array-reset property: the core's recovery
    walk is nothing but ``drop_edges`` + ``free`` per victim, so the
    reset must cover every field an execution could have dirtied —
    including the gated groups, which stay on in a bare pool.
    """
    pool = _make_pool(backend_name, 4)
    assert pool.reset_vp and pool.reset_ir and pool.reset_reexec
    i = pool.alloc(1, _KINDS[kind], None, cycle=5)
    _smudge(pool, i)
    pool.seq_of[i] = 1  # _smudge clobbered it; restore the real seq
    if retire_first:
        pool.refs[i] = 0
        pool.retire(i)  # refs == 0: retire frees immediately
    else:
        pool.refs[i] = 0
        pool.free(i)
    _assert_pristine(pool, i)
    assert pool.live == 0 and pool.pinned == 0
    # The slot is immediately reusable and starts clean.
    j = pool.alloc(2, _KINDS[data.draw(st.integers(0, 3))], None, cycle=9)
    assert j == i  # LIFO free list hands the slot straight back
    assert pool.completed[j] is False
    assert pool.producers[j] == {}


@each_backend
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), size=st.integers(10, 50),
       config=st.sampled_from([base_config, vp_config, hybrid_config]))
def test_squash_leaves_only_preserved_state(backend_name, seed, size,
                                            config):
    """After a full run, every non-live slot in the core's pool is
    pristine: each squash range was restored by pure array resets."""
    program = assemble(random_program(seed, size=size))
    core = _make_core(backend_name, config(), program)
    core.run(max_cycles=200_000)
    pool = core.pool
    live = set(core.rob)
    for i in range(pool.capacity):
        if i in live or pool.seq_of[i] != -1:
            continue  # live, or retired-but-pinned (seq still valid)
        _assert_pristine(pool, i)


# ------------------------------------------------------------- occupancy --


class _OccupancyCore(OutOfOrderCore):
    """Core that cross-checks pool occupancy against the ROB each cycle."""

    def __init__(self, config, program):
        super().__init__(config, program)
        self.mismatches = []

    def step(self):
        super().step()
        # pool.live counts exactly the ROB-resident population — the
        # same quantity telemetry samples as rob_occupancy.
        if self.pool.live != len(self.rob):
            self.mismatches.append(
                (self.cycle, self.pool.live, len(self.rob)))
        counted = sum(1 for s in self.pool.seq_of if s != -1)
        if counted != self.pool.live + self.pool.pinned:
            self.mismatches.append(
                ("slots", self.cycle, counted,
                 self.pool.live, self.pool.pinned))


@each_backend
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**18), size=st.integers(10, 60),
       config=st.sampled_from([base_config, vp_config, hybrid_config]))
def test_pool_occupancy_matches_rob(backend_name, seed, size, config):
    program = assemble(random_program(seed, size=size))
    core = _make_core(backend_name, config(), program,
                      cls=_OccupancyCore)
    core.run(max_cycles=200_000)
    assert not core.mismatches, core.mismatches[:5]
    assert core.pool.live == 0, "run ended with leaked live slots"


@each_backend
def test_telemetry_occupancy_rows_match_pool(backend_name):
    """The interval rows telemetry writes sample len(core.rob) — the
    quantity test_pool_occupancy_matches_rob proves equals pool.live."""
    program = assemble(random_program(3, size=40))
    core = _make_core(backend_name, base_config(), program,
                      cls=_OccupancyCore)
    core.enable_telemetry(interval=16, events=False)
    core.run(max_cycles=200_000)
    assert not core.mismatches
    series = core.telemetry.series
    assert len(series), "telemetry produced no interval rows"
    rob_col = series.column("rob_occupancy")
    lsq_col = series.column("lsq_occupancy")
    for rob_occ, lsq_occ in zip(rob_col, lsq_col):
        assert 0 <= rob_occ <= core.config.rob_size
        assert 0 <= lsq_occ <= core.config.lsq_size
