"""Differential tests: compiled closures vs the interpreted stepper.

``repro.functional.compiled`` replaces the generic ``execute`` dispatch
with per-static-instruction closures built at decode time; these tests
pin the *exact* equivalence the golden corpus and every checkpoint rely
on, over random — terminating-by-construction — programs:

* lockstep stepping: identical :class:`ExecOutcome` observable fields
  and identical architectural state (registers, memory, PC, halt flag)
  after **every** committed instruction;
* the outcome-free fast-forward lane (``run``): identical final state
  and retired-instruction count as the interpreted run, including when
  the budget lands exactly on, before, or after the halt.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.isa import assemble
from repro.functional.simulator import FunctionalSimulator, SimulationError
from repro.workloads.random_program import random_program

MAX_STEPS = 100_000  # far above any generated program's runtime

OUTCOME_FIELDS = ("operand_a", "operand_b", "next_pc", "result",
                  "result_hi", "writes", "mem_addr", "mem_value", "taken")


def _state_fingerprint(sim):
    memory = sim.state.memory
    pages = {number: bytes(page)
             for number, page in memory.snapshot_pages().items()
             if any(page)}  # all-zero pages read identically to absent ones
    return (sim.state.regs, sim.state.pc, sim.halted,
            sim.instructions_retired, pages)


@given(seed=st.integers(min_value=0, max_value=10**9))
@settings(max_examples=25, deadline=None)
def test_lockstep_differential(seed):
    program = assemble(random_program(seed, size=50))
    interp = FunctionalSimulator(program, compiled=False)
    compiled = FunctionalSimulator(program, compiled=True)
    for _ in range(MAX_STEPS):
        if interp.halted:
            break
        want = interp.step()
        got = compiled.step()
        assert got.inst is want.inst
        for field in OUTCOME_FIELDS:
            assert getattr(got, field) == getattr(want, field), field
        assert _state_fingerprint(compiled) == _state_fingerprint(interp)
    assert interp.halted, "generated program did not terminate"
    assert compiled.halted


@given(seed=st.integers(min_value=0, max_value=10**9),
       budget_offset=st.integers(min_value=-2, max_value=2))
@settings(max_examples=25, deadline=None)
def test_fast_forward_differential(seed, budget_offset):
    program = assemble(random_program(seed, size=50))
    length = FunctionalSimulator(program, compiled=False).run(MAX_STEPS)
    budget = max(0, length + budget_offset)

    interp = FunctionalSimulator(program, compiled=False)
    compiled = FunctionalSimulator(program, compiled=True)
    assert interp.run(budget) == compiled.run(budget)
    assert _state_fingerprint(compiled) == _state_fingerprint(interp)


def test_bad_pc_raises_in_both_lanes():
    # Both the compiled fast-forward lane and the interpreted stepper
    # must fail identically on a PC with no instruction.
    program = assemble("main:\n        halt\n")
    bad_pc = program.end_pc()
    for compiled in (False, True):
        sim = FunctionalSimulator(program, compiled=compiled)
        sim.state.pc = bad_pc
        with pytest.raises(SimulationError):
            sim.run(10)
        sim = FunctionalSimulator(program, compiled=compiled)
        sim.state.pc = bad_pc
        with pytest.raises(SimulationError):
            sim.step()
