"""Unit and small integration tests for the functional simulator."""

import pytest

from repro.functional import FunctionalSimulator, Memory, SimulationError
from repro.isa import REG_HI, REG_LO, TEXT_BASE, assemble, s32, u32


def run_program(source, max_instructions=100_000):
    sim = FunctionalSimulator(assemble(source))
    sim.run(max_instructions)
    assert sim.halted, "program did not halt"
    return sim


class TestMemory:
    def test_unwritten_reads_zero(self):
        assert Memory().read_word(0x1234) == 0

    def test_word_round_trip(self):
        mem = Memory()
        mem.write_word(0x100, 0xDEADBEEF)
        assert mem.read_word(0x100) == 0xDEADBEEF

    def test_little_endian_byte_order(self):
        mem = Memory()
        mem.write_word(0, 0x11223344)
        assert mem.read_byte(0) == 0x44
        assert mem.read_byte(3) == 0x11

    def test_signed_byte_read(self):
        mem = Memory()
        mem.write_byte(0, 0xFF)
        assert s32(mem.read(0, 1, signed=True)) == -1
        assert mem.read(0, 1, signed=False) == 0xFF

    def test_cross_page_word(self):
        mem = Memory()
        address = 0x1000 - 2  # straddles a 4KB page boundary
        mem.write_word(address, 0xCAFEBABE)
        assert mem.read_word(address) == 0xCAFEBABE

    def test_copy_is_independent(self):
        mem = Memory()
        mem.write_word(0, 1)
        clone = mem.copy()
        clone.write_word(0, 2)
        assert mem.read_word(0) == 1

    def test_image_constructor(self):
        mem = Memory({0: 0x34, 1: 0x12})
        assert mem.read(0, 2) == 0x1234


class TestArithmeticPrograms:
    def test_simple_sum(self):
        sim = run_program("""
        main: li $t0, 10
              li $t1, 0
              li $t2, 0
        loop: addi $t2, $t2, 1
              add $t1, $t1, $t2
              bne $t2, $t0, loop
              halt
        """)
        assert sim.state.read_reg(9) == 55

    def test_mult_div_hi_lo(self):
        sim = run_program("""
        main: li $t0, 7
              li $t1, 3
              mult $t0, $t1
              mflo $t2
              div $t0, $t1
              mflo $t3
              mfhi $t4
              halt
        """)
        assert sim.state.read_reg(10) == 21
        assert sim.state.read_reg(11) == 2  # 7 / 3
        assert sim.state.read_reg(12) == 1  # 7 % 3

    def test_r0_is_hardwired_zero(self):
        sim = run_program("""
        main: addi $zero, $zero, 99
              move $t0, $zero
              halt
        """)
        assert sim.state.read_reg(0) == 0
        assert sim.state.read_reg(8) == 0

    def test_overflow_wraps(self):
        sim = run_program("""
        main: li $t0, 0x7FFFFFFF
              addi $t0, $t0, 1
              halt
        """)
        assert sim.state.read_reg(8) == 0x80000000


class TestMemoryPrograms:
    def test_store_load_round_trip(self):
        sim = run_program("""
        .data
        buf: .space 64
        .text
        main: la $t0, buf
              li $t1, 0x12345678
              sw $t1, 0($t0)
              lw $t2, 0($t0)
              lb $t3, 3($t0)
              lbu $t4, 3($t0)
              halt
        """)
        assert sim.state.read_reg(10) == 0x12345678
        assert sim.state.read_reg(11) == 0x12
        assert sim.state.read_reg(12) == 0x12

    def test_signed_byte_load(self):
        sim = run_program("""
        .data
        b: .byte 0xFF
        .text
        main: la $t0, b
              lb $t1, 0($t0)
              lbu $t2, 0($t0)
              halt
        """)
        assert sim.state.read_reg(9) == 0xFFFFFFFF
        assert sim.state.read_reg(10) == 0xFF

    def test_initialised_data(self):
        sim = run_program("""
        .data
        vals: .word 5, 6, 7
        .text
        main: la $t0, vals
              lw $t1, 4($t0)
              halt
        """)
        assert sim.state.read_reg(9) == 6


class TestControlFlow:
    def test_call_and_return(self):
        sim = run_program("""
        main:  li $a0, 4
               jal double
               move $s0, $v0
               halt
        double: add $v0, $a0, $a0
               jr $ra
        """)
        assert sim.state.read_reg(16) == 8

    def test_indirect_jump_table(self):
        sim = run_program("""
        .data
        table: .word case0, case1
        .text
        main:  li $t0, 1
               sll $t1, $t0, 2
               la $t2, table
               add $t1, $t1, $t2
               lw $t3, 0($t1)
               jr $t3
        case0: li $s0, 100
               halt
        case1: li $s0, 200
               halt
        """)
        assert sim.state.read_reg(16) == 200

    def test_loop_instruction_count(self):
        sim = run_program("""
        main: li $t0, 5
        loop: addi $t0, $t0, -1
              bnez $t0, loop
              halt
        """)
        # li + 5*(addi+bnez) + halt
        assert sim.instructions_retired == 12


class TestSimulatorInterface:
    def test_bad_pc_raises(self):
        sim = FunctionalSimulator(assemble("main: j main"))
        sim.program.instructions.clear()
        with pytest.raises(SimulationError):
            sim.step()

    def test_step_after_halt_raises(self):
        sim = run_program("main: halt")
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_respects_limit(self):
        sim = FunctionalSimulator(assemble("main: j main"))
        assert sim.run(max_instructions=10) == 10
        assert not sim.halted

    def test_stream_yields_outcomes(self):
        sim = FunctionalSimulator(assemble("""
        main: li $t0, 3
              addi $t0, $t0, 4
              halt
        """))
        outcomes = list(sim.stream())
        assert [o.inst.opcode.name for o in outcomes] == ["ori", "addi", "halt"]
        assert outcomes[1].result == 7

    def test_skip_fast_forwards(self):
        sim = FunctionalSimulator(assemble("""
        main: li $t0, 100
        loop: addi $t0, $t0, -1
              bnez $t0, loop
              halt
        """))
        sim.skip(50)
        assert sim.instructions_retired == 50
        assert not sim.halted
