"""Additional memory-model coverage (bulk helpers, page accounting)."""

from repro.functional import Memory
from repro.functional.memory import PAGE_SIZE


class TestBulkHelpers:
    def test_load_image(self):
        memory = Memory()
        memory.load_image({0x100: 0xAB, 0x101: 0xCD})
        assert memory.read(0x100, 2) == 0xCDAB

    def test_dump(self):
        memory = Memory()
        memory.write_word(0x200, 0x04030201)
        assert memory.dump(0x200, 4) == bytes([1, 2, 3, 4])

    def test_dump_untouched_is_zeros(self):
        assert Memory().dump(0x9000, 8) == bytes(8)

    def test_touched_pages(self):
        memory = Memory()
        memory.write_byte(0, 1)
        memory.write_byte(PAGE_SIZE * 5, 1)
        assert set(memory.touched_pages()) == {0, 5}

    def test_read_word_signed(self):
        memory = Memory()
        memory.write_word(0, 0xFFFFFFFE)
        assert memory.read_word_signed(0) == -2

    def test_high_addresses(self):
        memory = Memory()
        memory.write_word(0xFFFF_FFF0, 0xDEAD)
        assert memory.read_word(0xFFFF_FFF0) == 0xDEAD

    def test_copy_preserves_all_pages(self):
        memory = Memory()
        for page in range(4):
            memory.write_byte(page * PAGE_SIZE + 7, page + 1)
        clone = memory.copy()
        for page in range(4):
            assert clone.read_byte(page * PAGE_SIZE + 7) == page + 1
