"""Warm-state checkpoint store: format, content addressing, corruption.

The store is a pure cache: every test here enforces some facet of
"never trusted over recomputation" — a checkpoint may be missing,
truncated, or bit-flipped at any time and the only observable effect is
a re-executed warm-up, never a wrong state.
"""

import dataclasses

import pytest

from repro.functional import checkpoint as cp
from repro.functional.checkpoint import (
    CheckpointStore,
    WarmState,
    capture,
    deserialize,
    serialize,
    warm_key,
)
from repro.functional.simulator import FunctionalSimulator
from repro.isa import assemble
from repro.workloads import get_workload

SKIP = 5_000


@pytest.fixture(scope="module")
def program():
    return get_workload("compress").program()


def _assert_states_equal(a: WarmState, b: WarmState):
    assert a.regs == b.regs
    assert a.pages == b.pages
    assert (a.pc, a.executed, a.skip, a.hit_halt) \
        == (b.pc, b.executed, b.skip, b.hit_halt)


def test_capture_matches_cold_skip(program):
    warm = capture(program, SKIP)
    assert warm.executed == SKIP and not warm.hit_halt
    cold = FunctionalSimulator(program)
    cold.skip(SKIP)
    assert warm.regs == cold.state.regs
    assert warm.pc == cold.state.pc
    assert warm.make_memory().snapshot_pages() \
        == cold.state.memory.snapshot_pages()


def test_capture_stops_in_front_of_halt():
    program = assemble("""
main:
        li $t0, 7
        addi $t0, $t0, 1
        halt
""")
    warm = capture(program, 100)
    assert warm.hit_halt and warm.executed == 2
    # A restored functional simulator executes the halt as its next step,
    # exactly like the cold skip does.
    restored = FunctionalSimulator(program)
    restored.restore(warm)
    cold = FunctionalSimulator(program)
    assert restored.skip(100 - warm.executed) == 1
    cold.skip(100)
    assert restored.halted and cold.halted
    assert restored.instructions_retired == cold.instructions_retired
    assert restored.state.regs == cold.state.regs


def test_serialize_roundtrip(program):
    warm = capture(program, SKIP)
    _assert_states_equal(deserialize(serialize(warm)), warm)


def test_serialized_bytes_are_deterministic(program):
    assert serialize(capture(program, SKIP)) \
        == serialize(capture(program, SKIP))


def test_warm_key_content_addressing(program):
    key = warm_key(program, SKIP)
    assert key == warm_key(program, SKIP)
    assert key != warm_key(program, SKIP + 1)
    assert key != warm_key(get_workload("go").program(), SKIP)
    edited = dataclasses.replace(program)
    edited.data = dict(program.data)
    address = next(iter(edited.data))
    edited.data[address] ^= 1
    assert key != warm_key(edited, SKIP)


def test_store_persists_and_reloads(tmp_path, program, monkeypatch):
    store = CheckpointStore(tmp_path)
    warm = store.get(program, SKIP)
    files = list(tmp_path.glob("*.warm"))
    assert len(files) == 1
    # A fresh store instance must load from disk, not recapture.
    reloaded_store = CheckpointStore(tmp_path)
    monkeypatch.setattr(cp, "capture", _refuse_capture)
    _assert_states_equal(reloaded_store.get(program, SKIP), warm)
    # Within one store the state is memoized (no second disk read).
    assert store.get(program, SKIP) is warm


def _refuse_capture(program, skip):
    raise AssertionError("capture() called although a checkpoint exists")


def test_memory_only_store_shares_within_process(program):
    store = CheckpointStore(None)
    assert store.get(program, SKIP) is store.get(program, SKIP)


@pytest.mark.parametrize("corruption", ["truncate", "bitflip", "garbage"])
def test_corrupt_checkpoint_discarded_and_regenerated(
        tmp_path, program, corruption):
    store = CheckpointStore(tmp_path)
    pristine = store.get(program, SKIP)
    path = next(tmp_path.glob("*.warm"))
    blob = bytearray(path.read_bytes())
    if corruption == "truncate":
        blob = blob[:len(blob) // 2]
    elif corruption == "bitflip":
        blob[len(blob) // 2] ^= 0x40
    else:
        blob = bytearray(b"not a checkpoint at all")
    path.write_bytes(bytes(blob))

    fresh = CheckpointStore(tmp_path)
    regenerated = fresh.get(program, SKIP)
    _assert_states_equal(regenerated, pristine)
    # The corrupt file was replaced by a valid one.
    _assert_states_equal(deserialize(path.read_bytes()), pristine)


def test_version_bump_orphans_old_files(tmp_path, program, monkeypatch):
    store = CheckpointStore(tmp_path)
    store.get(program, SKIP)
    monkeypatch.setattr(cp, "STATE_FORMAT_VERSION",
                        cp.STATE_FORMAT_VERSION + 1)
    assert warm_key(program, SKIP) not in {p.stem
                                           for p in tmp_path.glob("*.warm")}
    fresh = CheckpointStore(tmp_path).get(program, SKIP)
    _assert_states_equal(fresh, capture(program, SKIP))


def test_restored_timing_core_matches_cold(program):
    from repro.uarch.config import hybrid_config
    from repro.uarch.core import OutOfOrderCore

    spec_skip = get_workload("compress").skip_instructions
    cold = OutOfOrderCore(hybrid_config(), program)
    cold.skip(spec_skip)
    cold_stats = cold.run(max_cycles=100_000, max_instructions=2_000)

    warm_core = OutOfOrderCore(hybrid_config(), program)
    warm_core.restore_warm(capture(program, spec_skip))
    warm_stats = warm_core.run(max_cycles=100_000, max_instructions=2_000)
    assert warm_stats.canonical_json() == cold_stats.canonical_json()
