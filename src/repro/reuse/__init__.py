"""Instruction reuse: the Reuse Buffer and scheme S_{n+d}."""

from .buffer import RBEntry, ReuseBuffer
from .scheme import ReuseDecision, ReuseEngine

__all__ = ["RBEntry", "ReuseBuffer", "ReuseDecision", "ReuseEngine"]
