"""Scheme S_{n+d}: the reuse test and RB maintenance (Section 4.1.2).

The reuse test runs in parallel with decode (dispatch in this model) and
establishes, *non-speculatively*, that a stored instance's result is valid:

* every register operand must be **available** (its producer finished, or
  the operand has no in-flight producer) and **equal** to the stored
  operand value; or
* the operand's producer must itself have been reused *this cycle* — the
  dependence-pointer chaining that lets a whole dependent chain be reused
  in a single cycle (the "d" of S_{n+d});
* loads additionally require the entry's memory-valid bit (no committed
  store overwrote the address) and no older in-flight store conflicting
  with the address;
* stores and address-only load entries reuse just the effective address,
  which removes the address computation and enables earlier memory
  disambiguation.

Because both paper augmentations store operand *values* in the entry, the
register-overwrite invalidation and revert-to-valid rules reduce exactly
to the value comparisons performed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..metrics.stats import SimStats
from ..uarch.config import IRConfig, IRValidation
from ..uarch.entry import InflightOp
from .buffer import OperandSignature, RBEntry, ReuseBuffer

# Core-supplied oracle: does an older in-flight store conflict with this
# load's address range?  (op, address, nbytes) -> bool
StoreConflictFn = Callable[[InflightOp, int, int], bool]


@dataclass
class ReuseDecision:
    """Outcome of one reuse test."""

    entry: Optional[RBEntry] = None
    full: bool = False  # result (or branch outcome / jump target) reused
    address: bool = False  # effective address reused (memory ops)

    @property
    def hit(self) -> bool:
        return self.full or self.address


class ReuseEngine:
    """Front-end reuse tester + back-end RB writer."""

    def __init__(self, config: IRConfig, stats: SimStats):
        self.config = config
        self.stats = stats
        self.buffer = ReuseBuffer(config)

    # -- eligibility ---------------------------------------------------------------

    @staticmethod
    def eligible(op: InflightOp) -> bool:
        """Direct jumps, nops and halt gain nothing from reuse."""
        opcode = op.inst.opcode
        if opcode.op_class.name == "NOP":
            return False
        if opcode.is_jump and not opcode.is_indirect:
            return False
        return True

    # -- the reuse test (dispatch time) ----------------------------------------------

    def test(self, op: InflightOp, cycle: int,
             store_conflict: StoreConflictFn) -> ReuseDecision:
        if not self.eligible(op):
            return ReuseDecision()
        self.stats.ir_tests += 1
        inst = op.inst
        best = ReuseDecision()
        for entry in self.buffer.instances(inst.pc):
            if not self._operands_match(op, entry, cycle):
                continue
            if inst.opcode.is_mem:
                decision = self._test_memory(op, entry, store_conflict)
            else:
                decision = ReuseDecision(entry=entry, full=True)
            if decision.full:
                best = decision
                break
            if decision.address and not best.address:
                best = decision
        if best.entry is not None:
            self.buffer.touch(best.entry)
            self._count_recovery(best.entry)
        return best

    def _operands_match(self, op: InflightOp, entry: RBEntry,
                        cycle: int) -> bool:
        """All stored operands available and equal to the current values."""
        for reg, stored_value in entry.operands:
            if not self._value_available(op, reg, cycle):
                return False
            if op.src_values.get(reg) != stored_value:
                return False
        return True

    def _value_available(self, op: InflightOp, reg: int, cycle: int) -> bool:
        producer = op.producers.get(reg)
        if producer is None:
            return True  # architectural value, readable at decode
        if producer.completed and producer.ready_cycle is not None \
                and producer.nonspec_cycle is not None \
                and producer.nonspec_cycle <= cycle:
            # The value must be *verified*, not merely computed: in pure
            # IR these coincide, but in the hybrid machine a completed
            # producer may still carry a value-speculative result, and
            # the reuse test is defined to be non-speculative.
            if producer.ready_cycle < cycle:
                return True
            # Same-cycle availability: an execution writing back this
            # cycle can bypass into the decode-stage test, but a
            # same-cycle *reuse* is only visible through the dependence
            # pointers (the "d" of S_{n+d}) — handled below.
            if producer.ready_cycle == cycle \
                    and producer.reuse_value is None:
                return True
        # Dependence-pointer chaining: the producer's own reuse test
        # succeeded, so its result is known at decode.  Under EARLY
        # validation that result is already validated (non-speculative);
        # under LATE validation it is still speculative, and chaining on
        # it is only allowed when ``late_chain_detection`` relaxes the
        # test (see IRConfig).
        if producer.reuse_value is not None \
                and self.config.dependence_chaining:
            if self.config.validation == IRValidation.EARLY:
                return True
            return self.config.late_chain_detection
        return False

    def _test_memory(self, op: InflightOp, entry: RBEntry,
                     store_conflict: StoreConflictFn) -> ReuseDecision:
        if entry.address is None:
            return ReuseDecision()
        decision = ReuseDecision(entry=entry, address=True)
        if (op.is_load and entry.result_valid and entry.mem_valid
                and not store_conflict(op, entry.address, entry.mem_bytes)):
            decision.full = True
        return decision

    def _count_recovery(self, entry: RBEntry) -> None:
        """Table 5: squashed-but-executed work recovered through the RB."""
        if entry.from_squashed and not entry.recovery_counted:
            entry.recovery_counted = True
            self.stats.squashed_recovered += 1

    # -- RB maintenance ---------------------------------------------------------------

    def operand_signature(self, op: InflightOp) -> OperandSignature:
        """The operand names+values stored with an entry.

        Stores keep only the base register: their reusable work is the
        address computation, which does not depend on the data operand.
        """
        inst = op.inst
        if inst.opcode.is_store:
            regs: Tuple[int, ...] = (inst.rs,) if inst.rs != 0 else ()
        else:
            regs = inst.src_regs
        return tuple((reg, op.src_values[reg]) for reg in regs)

    def insert(self, op: InflightOp) -> None:
        """Record a completed execution in the RB (wrong paths included)."""
        if op.reused or not self.eligible(op):
            return
        inst, outcome = op.inst, op.outcome
        entry = RBEntry(pc=inst.pc, operands=self.operand_signature(op))
        if inst.opcode.is_branch:
            entry.result = int(outcome.taken)
        elif inst.opcode.is_indirect:
            entry.result = outcome.next_pc
        elif inst.opcode.is_mem:
            entry.is_mem = True
            entry.is_load = inst.opcode.is_load
            entry.address = outcome.mem_addr
            entry.mem_bytes = inst.opcode.mem_bytes
            if entry.is_load:
                entry.result = outcome.result
                # Data forwarded from a not-yet-committed store is not
                # guaranteed against committed memory: address-only entry.
                entry.result_valid = op.forwarded_from is None
            else:
                entry.result_valid = False
        else:
            entry.result = outcome.result
            entry.result_hi = outcome.result_hi
        entry.source_entries = tuple(
            producer.rb_entry for _, producer in sorted(op.producers.items()))
        op.rb_entry = self.buffer.insert(entry)

    def note_squashed(self, op: InflightOp) -> None:
        """The op was control-squashed after executing: its RB entry (if
        any) now represents recoverable wrong-path work (Table 5)."""
        if op.rb_entry is not None:
            op.rb_entry.from_squashed = True
            op.rb_entry.recovery_counted = False

    def on_store_commit(self, address: int, nbytes: int) -> None:
        self.buffer.invalidate_stores(address, nbytes)
