"""Scheme S_{n+d}: the reuse test and RB maintenance (Section 4.1.2).

The reuse test runs in parallel with decode (dispatch in this model) and
establishes, *non-speculatively*, that a stored instance's result is valid:

* every register operand must be **available** (its producer finished, or
  the operand has no in-flight producer) and **equal** to the stored
  operand value; or
* the operand's producer must itself have been reused *this cycle* — the
  dependence-pointer chaining that lets a whole dependent chain be reused
  in a single cycle (the "d" of S_{n+d});
* loads additionally require the entry's memory-valid bit (no committed
  store overwrote the address) and no older in-flight store conflicting
  with the address;
* stores and address-only load entries reuse just the effective address,
  which removes the address computation and enables earlier memory
  disambiguation.

Because both paper augmentations store operand *values* in the entry, the
register-overwrite invalidation and revert-to-valid rules reduce exactly
to the value comparisons performed here.

The engine reads in-flight state straight out of the core's
:class:`~repro.uarch.entry.EntryPool` arrays (bound via
:meth:`ReuseEngine.bind_pool`): the hot-path methods take a small integer
entry id, not an object.  Only :meth:`eligible` and
:meth:`operand_signature` keep the attribute interface — they also serve
the :class:`~repro.uarch.entry.CommittedOp` views tests inspect.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..metrics.stats import SimStats
from ..uarch.config import IRConfig, IRValidation
from .buffer import OperandSignature, RBEntry, ReuseBuffer

# Core-supplied oracle: does an in-flight store older than *seq* conflict
# with this address range?  (seq, address, nbytes) -> bool
StoreConflictFn = Callable[[int, int, int], bool]


def _signature_from(meta, src_values) -> OperandSignature:
    """The operand names+values stored with an entry.

    Stores keep only the base register: their reusable work is the
    address computation, which does not depend on the data operand.
    """
    if meta.is_store:
        regs: Tuple[int, ...] = (meta.rs,) if meta.rs != 0 else ()
    else:
        regs = meta.src_regs
    return tuple((reg, src_values[reg]) for reg in regs)


class ReuseDecision:
    """Outcome of one reuse test (a plain class: one per dispatch)."""

    __slots__ = ("entry", "full", "address")

    def __init__(self, entry: Optional[RBEntry] = None, full: bool = False,
                 address: bool = False):
        self.entry = entry
        self.full = full  # result (or branch outcome / jump target) reused
        self.address = address  # effective address reused (memory ops)

    @property
    def hit(self) -> bool:
        return self.full or self.address


# Shared immutable miss: the overwhelmingly common outcome, never mutated.
_MISS = ReuseDecision()


class ReuseEngine:
    """Front-end reuse tester + back-end RB writer."""

    def __init__(self, config: IRConfig, stats: SimStats):
        self.config = config
        self.stats = stats
        self.buffer = ReuseBuffer(config)
        # Observation-only sink set by core.enable_telemetry(); when
        # attached, every reuse test emits a hit/miss event (misses with
        # a diagnosed reason).  Never influences the decision.
        self.telemetry = None
        self.pool = None

    def bind_pool(self, pool) -> None:
        """Adopt the core's entry pool (one-hop bindings of the arrays
        every reuse test reads)."""
        self.pool = pool
        self._seq = pool.seq_of
        self._meta = pool.meta
        self._outcome = pool.outcome
        self._producers = pool.producers
        self._src_values = pool.src_values
        self._completed = pool.completed
        self._ready = pool.ready_cycle
        self._nonspec = pool.nonspec_cycle
        self._reused = pool.reused
        self._reuse_value = pool.reuse_value
        self._rb = pool.rb_entry
        self._fwd = pool.forwarded_from

    # -- eligibility ---------------------------------------------------------------

    @staticmethod
    def eligible(op) -> bool:
        """Direct jumps, nops and halt gain nothing from reuse."""
        return op.meta.reuse_eligible

    # -- the reuse test (dispatch time) ----------------------------------------------

    def test(self, i: int, cycle: int,
             store_conflict: StoreConflictFn) -> ReuseDecision:
        meta = self._meta[i]
        if not meta.reuse_eligible:
            return _MISS
        self.stats.ir_tests += 1
        pc = meta.pc
        buffer = self.buffer
        best: Optional[ReuseDecision] = None
        is_mem = meta.is_mem
        for entry in buffer.sets[(pc >> 2) & buffer.set_mask]:
            if entry.pc != pc:
                continue
            if not self._operands_match(i, entry, cycle):
                continue
            if is_mem:
                decision = self._test_memory(i, entry, store_conflict)
            else:
                decision = ReuseDecision(entry=entry, full=True)
            if decision.full:
                best = decision
                break
            if decision.address and (best is None or not best.address):
                best = decision
        if best is None or best.entry is None:
            if self.telemetry is not None:
                self.telemetry.emit(
                    "reuse_miss", cycle, self._seq[i], pc,
                    {"reason": self._explain_miss(i, cycle,
                                                  store_conflict)})
            return _MISS
        buffer.touch(best.entry)
        self._count_recovery(best.entry)
        if self.telemetry is not None:
            self.telemetry.emit("reuse_hit", cycle, self._seq[i], pc,
                                {"full": best.full,
                                 "address": best.address})
        return best

    def _explain_miss(self, i: int, cycle: int,
                      store_conflict: StoreConflictFn) -> str:
        """Why the test failed — a trace-only re-walk of the set.

        Computed only when a telemetry sink is attached, so the hot path
        pays nothing for it.  The reason is the first matching entry's
        first failing condition, in test order.
        """
        meta = self._meta[i]
        pc = meta.pc
        buffer = self.buffer
        for entry in buffer.sets[(pc >> 2) & buffer.set_mask]:
            if entry.pc != pc:
                continue
            src_values = self._src_values[i]
            for reg, stored_value in entry.operands:
                if src_values.get(reg) != stored_value:
                    return "operand_mismatch"
                if not self._value_available(i, reg, cycle):
                    return "operand_unavailable"
            if meta.is_mem:
                if entry.address is None:
                    return "no_address"
                if meta.is_load:
                    if not entry.result_valid:
                        return "result_invalid"
                    if not entry.mem_valid:
                        return "mem_invalidated"
                    if store_conflict(self._seq[i], entry.address,
                                      entry.mem_bytes):
                        return "store_conflict"
            return "unknown"
        return "no_entry"

    def _operands_match(self, i: int, entry: RBEntry,
                        cycle: int) -> bool:
        """All stored operands available and equal to the current values."""
        src_values = self._src_values[i]
        for reg, stored_value in entry.operands:
            # Equality first: it is the cheap test and the common reject.
            # Availability has no side effects, so the order is free.
            if src_values.get(reg) != stored_value:
                return False
            if not self._value_available(i, reg, cycle):
                return False
        return True

    def _value_available(self, i: int, reg: int, cycle: int) -> bool:
        p = self._producers[i].get(reg)
        if p is None:
            return True  # architectural value, readable at decode
        ready = self._ready[p]
        nonspec = self._nonspec[p]
        if self._completed[p] and ready is not None \
                and nonspec is not None and nonspec <= cycle:
            # The value must be *verified*, not merely computed: in pure
            # IR these coincide, but in the hybrid machine a completed
            # producer may still carry a value-speculative result, and
            # the reuse test is defined to be non-speculative.
            if ready < cycle:
                return True
            # Same-cycle availability: an execution writing back this
            # cycle can bypass into the decode-stage test, but a
            # same-cycle *reuse* is only visible through the dependence
            # pointers (the "d" of S_{n+d}) — handled below.
            if ready == cycle and self._reuse_value[p] is None:
                return True
        # Dependence-pointer chaining: the producer's own reuse test
        # succeeded, so its result is known at decode.  Under EARLY
        # validation that result is already validated (non-speculative);
        # under LATE validation it is still speculative, and chaining on
        # it is only allowed when ``late_chain_detection`` relaxes the
        # test (see IRConfig).
        if self._reuse_value[p] is not None \
                and self.config.dependence_chaining:
            if self.config.validation == IRValidation.EARLY:
                return True
            return self.config.late_chain_detection
        return False

    def _test_memory(self, i: int, entry: RBEntry,
                     store_conflict: StoreConflictFn) -> ReuseDecision:
        if entry.address is None:
            return _MISS
        decision = ReuseDecision(entry=entry, address=True)
        if (self._meta[i].is_load and entry.result_valid and entry.mem_valid
                and not store_conflict(self._seq[i], entry.address,
                                       entry.mem_bytes)):
            decision.full = True
        return decision

    def _count_recovery(self, entry: RBEntry) -> None:
        """Table 5: squashed-but-executed work recovered through the RB."""
        if entry.from_squashed and not entry.recovery_counted:
            entry.recovery_counted = True
            self.stats.squashed_recovered += 1

    # -- RB maintenance ---------------------------------------------------------------

    def operand_signature(self, op) -> OperandSignature:
        """Signature of an op-like object (CommittedOp views, tests)."""
        return _signature_from(op.meta, op.src_values)

    def insert(self, i: int) -> None:
        """Record a completed execution in the RB (wrong paths included)."""
        meta = self._meta[i]
        if self._reused[i] or not meta.reuse_eligible:
            return
        outcome = self._outcome[i]
        entry = RBEntry(pc=meta.pc,
                        operands=_signature_from(meta, self._src_values[i]))
        if meta.is_branch:
            entry.result = int(outcome.taken)
        elif meta.is_indirect:
            entry.result = outcome.next_pc
        elif meta.is_mem:
            entry.is_mem = True
            entry.is_load = meta.is_load
            entry.address = outcome.mem_addr
            entry.mem_bytes = meta.mem_bytes
            if entry.is_load:
                entry.result = outcome.result
                # Data forwarded from a not-yet-committed store is not
                # guaranteed against committed memory: address-only entry.
                entry.result_valid = self._fwd[i] is None
            else:
                entry.result_valid = False
        else:
            entry.result = outcome.result
            entry.result_hi = outcome.result_hi
        producers = self._producers[i]
        if producers:  # dependence pointers (the "d" of S_{n+d})
            rb = self._rb
            entry.source_entries = tuple(
                rb[producers[reg]] for reg in sorted(producers))
        self._rb[i] = self.buffer.insert(entry)

    def note_squashed(self, i: int) -> None:
        """The op was control-squashed after executing: its RB entry (if
        any) now represents recoverable wrong-path work (Table 5)."""
        rb_entry = self._rb[i]
        if rb_entry is not None:
            rb_entry.from_squashed = True
            rb_entry.recovery_counted = False

    def on_store_commit(self, address: int, nbytes: int) -> None:
        self.buffer.invalidate_stores(address, nbytes)
