"""The Reuse Buffer (RB) backing scheme S_{n+d} (Sections 2 and 4.1.2).

Structure per Section 4.1.3: 4K entries, 4-way set associative (up to four
*instances* per static instruction), LRU replacement.  Each entry stores,
alongside the result:

* the operand register names and the operand *values* (first augmentation
  from Section 4.1.2 — a start entry is stale only when the new operand
  value actually differs from the stored one, and an entry whose operand
  values become current again is valid again; storing values and comparing
  at test time implements both augmentations exactly),
* dependence pointers to the RB entries that produced its operands
  (the "d" in S_{n+d}), which let a dependent chain be reused in a single
  cycle even though the interior values are not yet available from the
  register file,
* for memory operations, the effective address and a memory-valid bit
  that conflicting stores clear.

Load entries whose data was forwarded from a not-yet-committed store are
inserted with ``result_valid=False`` (address-only): their stored data is
not guaranteed to match committed memory, mirroring the conservative
handling of loads the paper describes (compress reuses mostly addresses
for exactly this reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..uarch.config import IRConfig

OperandSignature = Tuple[Tuple[int, int], ...]  # ((reg, value), ...)

_BLOCK_SHIFT = 2  # 4-byte granules for the store-invalidation index


@dataclass
class RBEntry:
    """One reuse-buffer instance."""

    pc: int
    operands: OperandSignature
    result: Optional[int] = None  # register result / branch outcome / target
    result_hi: Optional[int] = None  # HI for mult/div
    is_mem: bool = False
    is_load: bool = False
    address: Optional[int] = None
    mem_bytes: int = 0
    mem_valid: bool = True  # cleared when a store hits `address`
    result_valid: bool = True  # False for address-only load entries
    source_entries: Tuple[Optional["RBEntry"], ...] = ()  # dependence ptrs
    from_squashed: bool = False  # producer was squashed (wrong-path work)
    recovery_counted: bool = False

    def blocks(self) -> range:
        first = self.address >> _BLOCK_SHIFT
        last = (self.address + self.mem_bytes - 1) >> _BLOCK_SHIFT
        return range(first, last + 1)


class ReuseBuffer:
    """PC-indexed, set-associative, LRU store of :class:`RBEntry`."""

    def __init__(self, config: IRConfig):
        self.config = config
        self.assoc = config.associativity
        self.num_sets = max(1, config.entries // self.assoc)
        self.set_mask = self.num_sets - 1
        if self.num_sets & self.set_mask:
            raise ValueError("RB set count must be a power of two")
        self.sets: List[List[RBEntry]] = [[] for _ in range(self.num_sets)]
        # Store-invalidation index: memory block -> load entries caching it.
        self._mem_index: Dict[int, Set[int]] = {}
        self._entries_by_id: Dict[int, RBEntry] = {}
        self.insertions = 0
        self.invalidations = 0

    def _set_for(self, pc: int) -> List[RBEntry]:
        return self.sets[(pc >> 2) & self.set_mask]

    def instances(self, pc: int) -> List[RBEntry]:
        """All instances currently stored for the instruction at *pc*."""
        return [entry for entry in self._set_for(pc) if entry.pc == pc]

    def iter_instances(self, pc: int):
        """Iterate instances for *pc* without building a list.

        Callers must not mutate the set (insert/touch) mid-iteration;
        the reuse test reads first and touches the winner afterwards.
        """
        for entry in self.sets[(pc >> 2) & self.set_mask]:
            if entry.pc == pc:
                yield entry

    def touch(self, entry: RBEntry) -> None:
        """Mark *entry* most recently used."""
        ways = self._set_for(entry.pc)
        try:
            ways.remove(entry)
        except ValueError:
            return  # already evicted
        ways.insert(0, entry)

    def insert(self, entry: RBEntry) -> RBEntry:
        """Insert (or refresh) *entry*; returns the resident entry."""
        ways = self._set_for(entry.pc)
        for index, existing in enumerate(ways):
            if existing.pc == entry.pc and existing.operands == entry.operands:
                self._unindex(existing)
                ways[index] = entry
                self.touch(entry)
                self._index(entry)
                self.insertions += 1
                return entry
        ways.insert(0, entry)
        if len(ways) > self.assoc:
            victim = ways.pop()
            self._unindex(victim)
        self._index(entry)
        self.insertions += 1
        return entry

    # -- store invalidation --------------------------------------------------------

    def _index(self, entry: RBEntry) -> None:
        if entry.is_load and entry.address is not None and entry.result_valid:
            for block in entry.blocks():
                self._mem_index.setdefault(block, set()).add(id(entry))
                self._entries_by_id[id(entry)] = entry

    def _unindex(self, entry: RBEntry) -> None:
        if entry.is_load and entry.address is not None:
            for block in entry.blocks():
                bucket = self._mem_index.get(block)
                if bucket:
                    bucket.discard(id(entry))
                    if not bucket:
                        del self._mem_index[block]
            self._entries_by_id.pop(id(entry), None)

    def invalidate_stores(self, address: int, nbytes: int) -> int:
        """A store to [address, address+nbytes) committed: clear loads."""
        first = address >> _BLOCK_SHIFT
        last = (address + nbytes - 1) >> _BLOCK_SHIFT
        cleared = 0
        for block in range(first, last + 1):
            for entry_id in list(self._mem_index.get(block, ())):
                entry = self._entries_by_id.get(entry_id)
                if entry is None:
                    continue
                if (entry.address < address + nbytes
                        and address < entry.address + entry.mem_bytes):
                    entry.mem_valid = False
                    self._unindex(entry)
                    cleared += 1
        self.invalidations += cleared
        return cleared

    def __len__(self) -> int:
        return sum(len(ways) for ways in self.sets)
