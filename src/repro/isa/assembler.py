"""A small two-pass assembler for the MIPS-like ISA.

The assembler exists so the SPECint95-analog workloads can be written as
readable assembly text.  It supports:

* ``.text`` / ``.data`` sections (with optional origin addresses),
* data directives: ``.word``, ``.half``, ``.byte``, ``.float``,
  ``.space``, ``.align``, ``.ascii`` and ``.asciiz`` (label references
  allowed inside ``.word``),
* labels (standalone or inline), decimal / hex / character literals,
* pseudo-instructions: ``li``, ``la``, ``li.s``, ``move``, ``b``,
  ``beqz``, ``bnez``, ``mul``/``rem`` (three-operand multiply/remainder
  expanding to ``mult``/``div`` + ``mflo``/``mfhi``), and three-operand
  ``div``.

Unlike a real assembler there is no binary encoding: pass one sizes
everything and records label addresses, pass two builds decoded
:class:`~repro.isa.instruction.Instruction` objects directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from .instruction import INSTRUCTION_BYTES, Instruction
from .opcodes import Format, Opcode, lookup, parse_register, u32
from .program import DATA_BASE, Program, TEXT_BASE


class AssemblyError(Exception):
    """Raised for any syntax or semantic error in assembly source."""

    def __init__(self, message: str, line_number: int = 0,
                 line: str = "") -> None:
        location = f"line {line_number}: " if line_number else ""
        suffix = f"  [{line.strip()}]" if line else ""
        super().__init__(f"{location}{message}{suffix}")
        self.line_number = line_number


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\s*\(\s*(\$?\w+)\s*\)$")


def _strip_comment(line: str) -> str:
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char in "#;" and not in_string:
            return line[:index]
    return line


def _split_operands(text: str) -> List[str]:
    operands: List[str] = []
    depth = 0
    in_string = False
    current = ""
    for char in text:
        if char == '"':
            in_string = not in_string
            current += char
        elif char == "(" and not in_string:
            depth += 1
            current += char
        elif char == ")" and not in_string:
            depth -= 1
            current += char
        elif char == "," and depth == 0 and not in_string:
            operands.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        operands.append(current.strip())
    return operands


@dataclass
class _Statement:
    """One parsed source statement (instruction or data directive)."""

    mnemonic: str
    operands: List[str]
    line_number: int
    line: str
    address: int = 0


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, text_base: int = TEXT_BASE,
                 data_base: int = DATA_BASE) -> None:
        self.text_base = text_base
        self.data_base = data_base

    # -- public API -----------------------------------------------------------

    def assemble(self, source: str) -> Program:
        """Assemble *source* text into a :class:`Program`."""
        text_stmts, data_stmts, symbols = self._first_pass(source)
        program = Program(entry_point=self.text_base, symbols=symbols,
                          source=source)
        for stmt in data_stmts:
            self._emit_data(stmt, symbols, program)
        for stmt in text_stmts:
            self._emit_instruction(stmt, symbols, program)
        if "main" in symbols:
            program.entry_point = symbols["main"]
        return program

    # -- pass one: layout and symbols -----------------------------------------

    def _first_pass(self, source: str) -> Tuple[
            List["_Statement"], List["_Statement"], Dict[str, int]]:
        symbols: Dict[str, int] = {}
        text_stmts: List[_Statement] = []
        data_stmts: List[_Statement] = []
        section = "text"
        text_pc = self.text_base
        data_pc = self.data_base

        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            while line:
                match = _LABEL_RE.match(line)
                if match and not line.startswith("."):
                    label, line = match.group(1), match.group(2).strip()
                    if label in symbols:
                        raise AssemblyError(f"duplicate label {label!r}",
                                            line_number, raw_line)
                    symbols[label] = text_pc if section == "text" else data_pc
                    continue
                break
            if not line:
                continue

            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            stmt = _Statement(mnemonic, _split_operands(operand_text),
                              line_number, raw_line)

            if mnemonic == ".text":
                section = "text"
                if stmt.operands:
                    text_pc = _parse_int(stmt.operands[0])
                continue
            if mnemonic == ".data":
                section = "data"
                if stmt.operands:
                    data_pc = _parse_int(stmt.operands[0])
                continue

            if section == "data":
                stmt.address = data_pc
                data_pc += self._data_size(stmt, data_pc)
                data_stmts.append(stmt)
            else:
                stmt.address = text_pc
                text_pc += INSTRUCTION_BYTES * self._instruction_count(stmt)
                text_stmts.append(stmt)
        return text_stmts, data_stmts, symbols

    def _data_size(self, stmt: _Statement, address: int) -> int:
        directive = stmt.mnemonic
        if directive in (".word", ".float"):
            return 4 * len(stmt.operands)
        if directive == ".half":
            return 2 * len(stmt.operands)
        if directive == ".byte":
            return len(stmt.operands)
        if directive == ".space":
            return _parse_int(stmt.operands[0])
        if directive == ".align":
            alignment = 1 << _parse_int(stmt.operands[0])
            return (-address) % alignment
        if directive in (".ascii", ".asciiz"):
            text = _parse_string(stmt.operands[0], stmt)
            return len(text) + (1 if directive == ".asciiz" else 0)
        raise AssemblyError(f"unknown data directive {directive!r}",
                            stmt.line_number, stmt.line)

    def _instruction_count(self, stmt: _Statement) -> int:
        if stmt.mnemonic in ("mul", "rem", "li.s"):
            return 2
        if stmt.mnemonic == "div" and len(stmt.operands) == 3:
            return 2
        return 1

    # -- pass two: emission ----------------------------------------------------

    def _emit_data(self, stmt: _Statement, symbols: Dict[str, int],
                   program: Program) -> None:
        directive, address = stmt.mnemonic, stmt.address

        def put(value: int, nbytes: int) -> None:
            nonlocal address
            value = u32(value)
            for offset in range(nbytes):
                program.data[address + offset] = (value >> (8 * offset)) & 0xFF
            address += nbytes

        if directive == ".word":
            for operand in stmt.operands:
                put(self._value(operand, symbols, stmt), 4)
        elif directive == ".float":
            from .opcodes import float_to_bits
            for operand in stmt.operands:
                put(float_to_bits(float(operand)), 4)
        elif directive == ".half":
            for operand in stmt.operands:
                put(self._value(operand, symbols, stmt), 2)
        elif directive == ".byte":
            for operand in stmt.operands:
                put(self._value(operand, symbols, stmt), 1)
        elif directive in (".space", ".align"):
            # Layout-only (done in pass one): reserved bytes are not
            # materialised — untouched memory already reads as zero, and
            # keeping the data image sparse lets a disassembled program
            # round-trip .space through the assembler as a fixpoint.
            pass
        elif directive in (".ascii", ".asciiz"):
            text = _parse_string(stmt.operands[0], stmt)
            for char in text.encode("latin-1"):
                put(char, 1)
            if directive == ".asciiz":
                put(0, 1)

    def _emit_instruction(self, stmt: _Statement, symbols: Dict[str, int],
                          program: Program) -> None:
        for inst in self._expand(stmt, symbols):
            if inst.pc in program.instructions:
                raise AssemblyError(f"text overlap at {inst.pc:#x}",
                                    stmt.line_number, stmt.line)
            program.instructions[inst.pc] = inst

    def _expand(self, stmt: _Statement,
                symbols: Dict[str, int]) -> Iterable[Instruction]:
        name, ops, pc = stmt.mnemonic, stmt.operands, stmt.address

        def value(token: str) -> int:
            return self._value(token, symbols, stmt)

        def reg(token: str) -> int:
            try:
                return parse_register(token)
            except ValueError as exc:
                raise AssemblyError(str(exc), stmt.line_number, stmt.line)

        # Pseudo-instructions first.
        if name in ("li", "la"):
            _expect(stmt, len(ops) == 2)
            yield Instruction(pc, lookup("ori"), rd=reg(ops[0]),
                              rs=0, imm=u32(value(ops[1])))
            return
        if name == "li.s":
            _expect(stmt, len(ops) == 2)
            from .opcodes import float_to_bits
            bits = float_to_bits(float(ops[1]))
            yield Instruction(pc, lookup("ori"), rd=1, rs=0, imm=bits)
            yield Instruction(pc + INSTRUCTION_BYTES, lookup("mtc1"),
                              rd=reg(ops[0]), rs=1)
            return
        if name == "move":
            _expect(stmt, len(ops) == 2)
            yield Instruction(pc, lookup("addu"), rd=reg(ops[0]),
                              rs=reg(ops[1]), rt=0)
            return
        if name == "b":
            _expect(stmt, len(ops) == 1)
            yield Instruction(pc, lookup("beq"), rs=0, rt=0,
                              target=value(ops[0]))
            return
        if name in ("beqz", "bnez"):
            _expect(stmt, len(ops) == 2)
            real = "beq" if name == "beqz" else "bne"
            yield Instruction(pc, lookup(real), rs=reg(ops[0]), rt=0,
                              target=value(ops[1]))
            return
        if name in ("mul", "rem") or (name == "div" and len(ops) == 3):
            _expect(stmt, len(ops) == 3)
            lo_op = "mult" if name == "mul" else "div"
            move_op = "mfhi" if name == "rem" else "mflo"
            yield Instruction(pc, lookup(lo_op), rs=reg(ops[1]),
                              rt=reg(ops[2]))
            yield Instruction(pc + INSTRUCTION_BYTES, lookup(move_op),
                              rd=reg(ops[0]))
            return

        try:
            opcode = lookup(name)
        except KeyError:
            raise AssemblyError(f"unknown mnemonic {name!r}",
                                stmt.line_number, stmt.line)
        yield self._build(opcode, ops, pc, reg, value, stmt)

    def _build(self, opcode: Opcode, ops: List[str], pc: int,
               reg: Callable[[str], int], value: Callable[[str], int],
               stmt: _Statement) -> Instruction:
        fmt = opcode.fmt
        if fmt == Format.RRR:
            _expect(stmt, len(ops) == 3)
            return Instruction(pc, opcode, rd=reg(ops[0]), rs=reg(ops[1]),
                               rt=reg(ops[2]))
        if fmt == Format.RRI:
            _expect(stmt, len(ops) == 3)
            return Instruction(pc, opcode, rd=reg(ops[0]), rs=reg(ops[1]),
                               imm=value(ops[2]))
        if fmt == Format.RI:
            _expect(stmt, len(ops) == 2)
            return Instruction(pc, opcode, rd=reg(ops[0]), imm=value(ops[1]))
        if fmt == Format.RR:
            _expect(stmt, len(ops) == 2)
            return Instruction(pc, opcode, rs=reg(ops[0]), rt=reg(ops[1]))
        if fmt == Format.RR2:
            _expect(stmt, len(ops) == 2)
            return Instruction(pc, opcode, rd=reg(ops[0]), rs=reg(ops[1]))
        if fmt == Format.BRANCH0:
            _expect(stmt, len(ops) == 1)
            return Instruction(pc, opcode, target=value(ops[0]))
        if fmt == Format.R:
            _expect(stmt, len(ops) == 1)
            if opcode.is_indirect:
                return Instruction(pc, opcode, rs=reg(ops[0]))
            return Instruction(pc, opcode, rd=reg(ops[0]))
        if fmt == Format.MEM:
            _expect(stmt, len(ops) == 2)
            match = _MEM_OPERAND_RE.match(ops[1])
            if match:
                displacement, base = match.group(1), match.group(2)
                return Instruction(pc, opcode, rd=reg(ops[0]),
                                   rs=reg(base), imm=value(displacement))
            # Bare-label form: lw $t0, label  (absolute addressing off $zero).
            return Instruction(pc, opcode, rd=reg(ops[0]), rs=0,
                               imm=value(ops[1]))
        if fmt == Format.BRANCH2:
            _expect(stmt, len(ops) == 3)
            return Instruction(pc, opcode, rs=reg(ops[0]), rt=reg(ops[1]),
                               target=value(ops[2]))
        if fmt == Format.BRANCH1:
            _expect(stmt, len(ops) == 2)
            return Instruction(pc, opcode, rs=reg(ops[0]),
                               target=value(ops[1]))
        if fmt == Format.JUMP:
            _expect(stmt, len(ops) == 1)
            return Instruction(pc, opcode, target=value(ops[0]))
        _expect(stmt, len(ops) == 0)
        return Instruction(pc, opcode)

    def _value(self, token: str, symbols: Dict[str, int],
               stmt: _Statement) -> int:
        token = token.strip()
        try:
            return _parse_int(token)
        except ValueError:
            pass
        # Allow simple label+offset arithmetic: "table+4".
        for operator in "+-":
            split_at = token.rfind(operator)
            if split_at > 0:
                base, offset = token[:split_at].strip(), token[split_at:]
                if base in symbols:
                    try:
                        return symbols[base] + _parse_int(offset)
                    except ValueError:
                        pass
        if token in symbols:
            return symbols[token]
        raise AssemblyError(f"undefined symbol {token!r}", stmt.line_number,
                            stmt.line)


def _expect(stmt: _Statement, condition: bool) -> None:
    if not condition:
        raise AssemblyError(
            f"bad operand count for {stmt.mnemonic!r}", stmt.line_number,
            stmt.line)


def _parse_int(token: str) -> int:
    token = token.strip()
    if len(token) == 3 and token[0] == token[2] == "'":
        return ord(token[1])
    return int(token, 0)


def _parse_string(token: str, stmt: _Statement) -> str:
    token = token.strip()
    if len(token) < 2 or token[0] != '"' or token[-1] != '"':
        raise AssemblyError("malformed string literal", stmt.line_number,
                            stmt.line)
    return token[1:-1].replace("\\n", "\n").replace("\\t", "\t").replace(
        "\\0", "\0")


def assemble(source: str, text_base: int = TEXT_BASE,
             data_base: int = DATA_BASE) -> Program:
    """Convenience wrapper: assemble *source* with default bases."""
    return Assembler(text_base=text_base, data_base=data_base).assemble(source)
