"""Opcode definitions for the MIPS-like integer ISA used by the simulators.

Every opcode carries enough static information for both the functional
simulator and the out-of-order timing model:

* an ``OpClass`` selecting the functional-unit pool it executes on,
* execution/issue latencies (Table 1 of the paper),
* a pure evaluation function over source operand values, which lets the
  timing core re-evaluate instructions with *speculative* operand values
  (needed to model value-misprediction propagation faithfully).

Registers are numbered 0..66: the 32 architectural integer registers,
``HI`` (32) and ``LO`` (33), the 32 single-precision FP registers
``$f0``..``$f31`` (34..65, holding IEEE-754 bit patterns), and the FP
condition flag ``$fcc`` (66) — the full "32 integer, hi, lo, 32 floating
point, fcc" architected state of Table 1.  The seven SPECint95 analog
workloads are integer-only, matching the paper's evaluation, but the FP
pipeline (4 FP adders at 2/1, one FP MULT/DIV at 4/1, 12/12 and 24/24
for sqrt) is fully modelled and covered by tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

MASK32 = 0xFFFFFFFF

NUM_GPRS = 32
REG_HI = 32
REG_LO = 33
# Floating-point architected state (Table 1: "32 floating point, fcc").
# FP registers hold single-precision IEEE-754 bit patterns in the same
# integer register array; REG_FCC is the FP condition flag.
REG_F0 = 34
NUM_FPRS = 32
REG_FCC = REG_F0 + NUM_FPRS  # 66
NUM_REGS = REG_FCC + 1

REG_ZERO = 0
REG_RA = 31
REG_SP = 29


def u32(value: int) -> int:
    """Wrap *value* to an unsigned 32-bit integer."""
    return value & MASK32


def s32(value: int) -> int:
    """Interpret *value* (any Python int) as a signed 32-bit integer."""
    value &= MASK32
    return value - 0x100000000 if value >= 0x80000000 else value


class OpClass(enum.Enum):
    """Functional-unit class an opcode executes on (Table 1)."""

    INT_ALU = "int_alu"
    LOAD_STORE = "load_store"
    INT_MULT = "int_mult"
    INT_DIV = "int_div"
    BRANCH = "branch"  # executes on an integer ALU
    FP_ADD = "fp_add"  # 4 units, 2/1
    FP_MUL_DIV = "fp_mul_div"  # 1 unit: mult 4/1, div 12/12, sqrt 24/24
    NOP = "nop"


class Format(enum.Enum):
    """Assembly operand formats, used by the assembler and disassembler."""

    RRR = "rd, rs, rt"  # add rd, rs, rt
    RRI = "rt, rs, imm"  # addi rt, rs, imm
    RI = "rt, imm"  # lui rt, imm
    RR = "rs, rt"  # two sources, no GPR dest (mult/div/c.x.s)
    RR2 = "rd, rs"  # one source, one destination (mov.s, cvt, mtc1...)
    R = "rd"  # mflo rd / jr rs
    MEM = "rt, imm(rs)"  # lw rt, 4(rs)
    BRANCH2 = "rs, rt, label"  # beq rs, rt, label
    BRANCH1 = "rs, label"  # blez rs, label
    BRANCH0 = "fcc: label"  # bc1t/bc1f label (reads the FCC flag)
    JUMP = "label"  # j label
    NONE = ""  # nop, halt


# Evaluation functions take the two source operand *values* (a from rs,
# b from rt) plus the sign-extended immediate, and return the result value.
# Branch evaluators return 1 (taken) or 0; memory ops compute the effective
# address with ``a + imm`` in the core, not here.
EvalFn = Callable[[int, int, int], int]


@dataclass(frozen=True)
class Opcode:
    """Static description of one machine operation."""

    name: str
    fmt: Format
    op_class: OpClass
    latency: int = 1  # total execution latency in cycles
    issue_interval: int = 1  # cycles before the FU accepts another op
    eval_fn: Optional[EvalFn] = None
    is_branch: bool = False  # conditional branch
    is_jump: bool = False  # unconditional control transfer
    is_indirect: bool = False  # target comes from a register
    is_call: bool = False  # pushes a return address (writes r31)
    is_return: bool = False  # jr with rs == r31 is detected separately
    is_load: bool = False
    is_store: bool = False
    mem_bytes: int = 0
    mem_signed: bool = True
    writes_hi_lo: bool = False
    writes_fcc: bool = False
    is_halt: bool = False

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_control(self) -> bool:
        return self.is_branch or self.is_jump


def _sra(a: int, b: int, imm: int) -> int:
    return u32(s32(a) >> (b & 31))


def _div(a: int, b: int, imm: int) -> int:
    # LO gets the quotient; HI (remainder) is produced alongside by the core.
    if s32(b) == 0:
        return 0
    quotient = abs(s32(a)) // abs(s32(b))
    if (s32(a) < 0) != (s32(b) < 0):
        quotient = -quotient
    return u32(quotient)


def _rem(a: int, b: int) -> int:
    if s32(b) == 0:
        return 0
    remainder = abs(s32(a)) % abs(s32(b))
    if s32(a) < 0:
        remainder = -remainder
    return u32(remainder)


def mult_hi_lo(a: int, b: int) -> Tuple[int, int]:
    """Return the (hi, lo) words of a signed 32x32 multiply."""
    product = s32(a) * s32(b)
    return u32(product >> 32), u32(product)


def div_hi_lo(a: int, b: int) -> Tuple[int, int]:
    """Return the (hi=remainder, lo=quotient) of a signed divide."""
    return _rem(a, b), _div(a, b, 0)


_OPCODES: Dict[str, Opcode] = {}


def _define(opcode: Opcode) -> Opcode:
    if opcode.name in _OPCODES:
        raise ValueError(f"duplicate opcode {opcode.name!r}")
    _OPCODES[opcode.name] = opcode
    return opcode


def _alu(name: str, fmt: Format, eval_fn: EvalFn, **kwargs: object) -> Opcode:
    return _define(Opcode(name, fmt, OpClass.INT_ALU, 1, 1, eval_fn, **kwargs))


# --- ALU register-register ---------------------------------------------------
_alu("add", Format.RRR, lambda a, b, i: u32(a + b))
_alu("addu", Format.RRR, lambda a, b, i: u32(a + b))
_alu("sub", Format.RRR, lambda a, b, i: u32(a - b))
_alu("subu", Format.RRR, lambda a, b, i: u32(a - b))
_alu("and", Format.RRR, lambda a, b, i: a & b)
_alu("or", Format.RRR, lambda a, b, i: a | b)
_alu("xor", Format.RRR, lambda a, b, i: a ^ b)
_alu("nor", Format.RRR, lambda a, b, i: u32(~(a | b)))
_alu("slt", Format.RRR, lambda a, b, i: int(s32(a) < s32(b)))
_alu("sltu", Format.RRR, lambda a, b, i: int(u32(a) < u32(b)))
_alu("sllv", Format.RRR, lambda a, b, i: u32(a << (b & 31)))
_alu("srlv", Format.RRR, lambda a, b, i: u32(a) >> (b & 31))
_alu("srav", Format.RRR, _sra)

# --- ALU register-immediate --------------------------------------------------
_alu("addi", Format.RRI, lambda a, b, i: u32(a + i))
_alu("addiu", Format.RRI, lambda a, b, i: u32(a + i))
_alu("andi", Format.RRI, lambda a, b, i: a & u32(i))
_alu("ori", Format.RRI, lambda a, b, i: a | u32(i))
_alu("xori", Format.RRI, lambda a, b, i: a ^ u32(i))
_alu("slti", Format.RRI, lambda a, b, i: int(s32(a) < i))
_alu("sltiu", Format.RRI, lambda a, b, i: int(u32(a) < u32(i)))
_alu("sll", Format.RRI, lambda a, b, i: u32(a << (i & 31)))
_alu("srl", Format.RRI, lambda a, b, i: u32(a) >> (i & 31))
_alu("sra", Format.RRI, lambda a, b, i: u32(s32(a) >> (i & 31)))
_alu("lui", Format.RI, lambda a, b, i: u32(i << 16))

# --- multiply / divide (write HI:LO; read back via mfhi/mflo) -----------------
_define(Opcode("mult", Format.RR, OpClass.INT_MULT, latency=3, issue_interval=1,
               eval_fn=lambda a, b, i: mult_hi_lo(a, b)[1], writes_hi_lo=True))
_define(Opcode("div", Format.RR, OpClass.INT_DIV, latency=20, issue_interval=19,
               eval_fn=_div, writes_hi_lo=True))
_alu("mfhi", Format.R, lambda a, b, i: a)
_alu("mflo", Format.R, lambda a, b, i: a)

# --- memory -------------------------------------------------------------------


def _mem(name: str, is_load: bool, nbytes: int, signed: bool = True) -> Opcode:
    return _define(Opcode(
        name, Format.MEM, OpClass.LOAD_STORE, latency=1, issue_interval=1,
        eval_fn=lambda a, b, i: u32(a + i),  # effective address
        is_load=is_load, is_store=not is_load,
        mem_bytes=nbytes, mem_signed=signed,
    ))


_mem("lw", True, 4)
_mem("lh", True, 2, signed=True)
_mem("lhu", True, 2, signed=False)
_mem("lb", True, 1, signed=True)
_mem("lbu", True, 1, signed=False)
_mem("sw", False, 4)
_mem("sh", False, 2)
_mem("sb", False, 1)

# --- control ------------------------------------------------------------------


def _branch(name: str, fmt: Format, eval_fn: EvalFn) -> Opcode:
    return _define(Opcode(name, fmt, OpClass.BRANCH, 1, 1, eval_fn,
                          is_branch=True))


_branch("beq", Format.BRANCH2, lambda a, b, i: int(a == b))
_branch("bne", Format.BRANCH2, lambda a, b, i: int(a != b))
_branch("blt", Format.BRANCH2, lambda a, b, i: int(s32(a) < s32(b)))
_branch("bge", Format.BRANCH2, lambda a, b, i: int(s32(a) >= s32(b)))
_branch("blez", Format.BRANCH1, lambda a, b, i: int(s32(a) <= 0))
_branch("bgtz", Format.BRANCH1, lambda a, b, i: int(s32(a) > 0))
_branch("bltz", Format.BRANCH1, lambda a, b, i: int(s32(a) < 0))
_branch("bgez", Format.BRANCH1, lambda a, b, i: int(s32(a) >= 0))

_define(Opcode("j", Format.JUMP, OpClass.BRANCH, is_jump=True))
_define(Opcode("jal", Format.JUMP, OpClass.BRANCH, is_jump=True, is_call=True))
_define(Opcode("jr", Format.R, OpClass.BRANCH, is_jump=True, is_indirect=True))
_define(Opcode("jalr", Format.R, OpClass.BRANCH, is_jump=True,
               is_indirect=True, is_call=True))

# --- misc ---------------------------------------------------------------------
_define(Opcode("nop", Format.NONE, OpClass.NOP))
_define(Opcode("halt", Format.NONE, OpClass.NOP, is_halt=True))

# --- single-precision floating point (Table 1 FP units) ------------------------
# FP values are IEEE-754 single bit patterns; every operation rounds
# through 32-bit single precision (pack/unpack), so results are exact
# single-precision arithmetic and fully deterministic.
import struct as _struct


def bits_to_float(bits: int) -> float:
    """Reinterpret a 32-bit pattern as an IEEE-754 single."""
    return _struct.unpack("<f", _struct.pack("<I", bits & MASK32))[0]


def float_to_bits(value: float) -> int:
    """Round *value* to single precision and return its bit pattern."""
    try:
        return _struct.unpack("<I", _struct.pack("<f", value))[0]
    except (OverflowError, ValueError):
        # overflow to signed infinity, like hardware
        sign = 0x80000000 if value < 0 else 0
        return sign | 0x7F800000


def _fp_binary(fn: Callable[[float, float], float]) -> EvalFn:
    def evaluate(a: int, b: int, imm: int) -> int:
        return float_to_bits(fn(bits_to_float(a), bits_to_float(b)))
    return evaluate


def _fp_div(x: float, y: float) -> float:
    if y == 0.0:
        return float("inf") if x > 0 else float("-inf") if x < 0 \
            else float("nan")
    return x / y


def _fp_sqrt(a: int, b: int, imm: int) -> int:
    x = bits_to_float(a)
    return float_to_bits(x ** 0.5 if x >= 0 else float("nan"))


def _fp_compare(fn: Callable[[float, float], bool]) -> EvalFn:
    def evaluate(a: int, b: int, imm: int) -> int:
        return int(fn(bits_to_float(a), bits_to_float(b)))
    return evaluate


_define(Opcode("add.s", Format.RRR, OpClass.FP_ADD, latency=2,
               issue_interval=1, eval_fn=_fp_binary(lambda x, y: x + y)))
_define(Opcode("sub.s", Format.RRR, OpClass.FP_ADD, latency=2,
               issue_interval=1, eval_fn=_fp_binary(lambda x, y: x - y)))
_define(Opcode("mul.s", Format.RRR, OpClass.FP_MUL_DIV, latency=4,
               issue_interval=1, eval_fn=_fp_binary(lambda x, y: x * y)))
_define(Opcode("div.s", Format.RRR, OpClass.FP_MUL_DIV, latency=12,
               issue_interval=12, eval_fn=_fp_binary(_fp_div)))
_define(Opcode("sqrt.s", Format.RR2, OpClass.FP_MUL_DIV, latency=24,
               issue_interval=24, eval_fn=_fp_sqrt))
_define(Opcode("abs.s", Format.RR2, OpClass.FP_ADD, latency=2,
               issue_interval=1,
               eval_fn=lambda a, b, i: a & 0x7FFFFFFF))
_define(Opcode("neg.s", Format.RR2, OpClass.FP_ADD, latency=2,
               issue_interval=1,
               eval_fn=lambda a, b, i: a ^ 0x80000000))
_define(Opcode("mov.s", Format.RR2, OpClass.FP_ADD, latency=2,
               issue_interval=1, eval_fn=lambda a, b, i: a))
_define(Opcode("cvt.s.w", Format.RR2, OpClass.FP_ADD, latency=2,
               issue_interval=1,
               eval_fn=lambda a, b, i: float_to_bits(float(s32(a)))))
_define(Opcode("cvt.w.s", Format.RR2, OpClass.FP_ADD, latency=2,
               issue_interval=1,
               eval_fn=lambda a, b, i: u32(int(bits_to_float(a)))
               if abs(bits_to_float(a)) < 2**31 else 0x7FFFFFFF))
_define(Opcode("mtc1", Format.RR2, OpClass.INT_ALU,
               eval_fn=lambda a, b, i: a))
_define(Opcode("mfc1", Format.RR2, OpClass.INT_ALU,
               eval_fn=lambda a, b, i: a))
_mem("lwc1", True, 4)
_mem("swc1", False, 4)
_define(Opcode("c.eq.s", Format.RR, OpClass.FP_ADD, latency=2,
               issue_interval=1, writes_fcc=True,
               eval_fn=_fp_compare(lambda x, y: x == y)))
_define(Opcode("c.lt.s", Format.RR, OpClass.FP_ADD, latency=2,
               issue_interval=1, writes_fcc=True,
               eval_fn=_fp_compare(lambda x, y: x < y)))
_define(Opcode("c.le.s", Format.RR, OpClass.FP_ADD, latency=2,
               issue_interval=1, writes_fcc=True,
               eval_fn=_fp_compare(lambda x, y: x <= y)))
_branch("bc1t", Format.BRANCH0, lambda a, b, i: int(a != 0))
_branch("bc1f", Format.BRANCH0, lambda a, b, i: int(a == 0))


def lookup(name: str) -> Opcode:
    """Return the :class:`Opcode` for *name*, raising ``KeyError`` if unknown."""
    return _OPCODES[name]


def all_opcodes() -> Dict[str, Opcode]:
    """Return a copy of the full opcode table."""
    return dict(_OPCODES)


REGISTER_ALIASES: Dict[str, int] = {
    "zero": 0, "at": 1, "v0": 2, "v1": 3,
    "a0": 4, "a1": 5, "a2": 6, "a3": 7,
    "t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14,
    "t7": 15, "s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
    "s6": 22, "s7": 23, "t8": 24, "t9": 25, "k0": 26, "k1": 27,
    "gp": 28, "sp": 29, "fp": 30, "ra": 31,
    "hi": REG_HI, "lo": REG_LO, "fcc": REG_FCC,
}
REGISTER_ALIASES.update({f"f{i}": REG_F0 + i for i in range(NUM_FPRS)})

REGISTER_NAMES: Dict[int, str] = {num: name for name, num in REGISTER_ALIASES.items()}


def parse_register(token: str) -> int:
    """Parse a register token such as ``$t0``, ``$8`` or ``t0`` into a number."""
    token = token.strip().lstrip("$")
    if token in REGISTER_ALIASES:
        return REGISTER_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        token = token[1:]
    if token.isdigit():
        number = int(token)
        if 0 <= number < NUM_GPRS:
            return number
    raise ValueError(f"unknown register {token!r}")
