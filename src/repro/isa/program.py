"""Loaded-program image: instructions plus initial data memory."""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instruction import INSTRUCTION_BYTES, Instruction

TEXT_BASE = 0x0000_1000
DATA_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_F000


@dataclass
class Program:
    """An assembled program ready to be simulated.

    ``instructions`` maps word-aligned PCs to decoded instructions.  Data
    memory initial contents are byte-granular.  ``symbols`` keeps the label
    table for diagnostics and for workloads that want to poke result buffers.
    """

    instructions: Dict[int, Instruction] = field(default_factory=dict)
    data: Dict[int, int] = field(default_factory=dict)  # byte address -> byte
    entry_point: int = TEXT_BASE
    symbols: Dict[str, int] = field(default_factory=dict)
    source: str = ""

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Return the instruction at *pc*, or ``None`` for an invalid PC."""
        return self.instructions.get(pc)

    def instruction_list(self) -> List[Instruction]:
        """All static instructions in ascending PC order."""
        return [self.instructions[pc] for pc in sorted(self.instructions)]

    def symbol(self, name: str) -> int:
        """Resolve label *name* to its address (raises ``KeyError``)."""
        return self.symbols[name]

    def end_pc(self) -> int:
        """One past the last text address (useful as a fetch guard)."""
        if not self.instructions:
            return self.entry_point
        return max(self.instructions) + INSTRUCTION_BYTES

    def canonical_digest(self) -> str:
        """SHA-256 over the semantic content of the program.

        Covers exactly what execution can observe — entry point, every
        decoded instruction field, and the initial data image — in a
        fixed traversal order, so the digest is stable across processes
        and assembler runs.  Labels, comments and other source text that
        assembles to the same image hash identically; any semantic edit
        changes the digest.  The warm-state checkpoint store keys on
        this (see :mod:`repro.functional.checkpoint`).
        """
        hasher = hashlib.sha256()
        pack = struct.pack
        hasher.update(pack("<II", self.entry_point,
                           len(self.instructions)))
        for pc in sorted(self.instructions):
            inst = self.instructions[pc]
            name = inst.opcode.name.encode()
            hasher.update(pack("<IB", pc, len(name)))
            hasher.update(name)
            hasher.update(pack("<iiiiI", inst.rd, inst.rs, inst.rt,
                               inst.imm, inst.target & 0xFFFFFFFF))
        hasher.update(pack("<I", len(self.data)))
        for address in sorted(self.data):
            hasher.update(pack("<IB", address, self.data[address] & 0xFF))
        return hasher.hexdigest()
