"""Loaded-program image: instructions plus initial data memory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instruction import INSTRUCTION_BYTES, Instruction

TEXT_BASE = 0x0000_1000
DATA_BASE = 0x1000_0000
STACK_TOP = 0x7FFF_F000


@dataclass
class Program:
    """An assembled program ready to be simulated.

    ``instructions`` maps word-aligned PCs to decoded instructions.  Data
    memory initial contents are byte-granular.  ``symbols`` keeps the label
    table for diagnostics and for workloads that want to poke result buffers.
    """

    instructions: Dict[int, Instruction] = field(default_factory=dict)
    data: Dict[int, int] = field(default_factory=dict)  # byte address -> byte
    entry_point: int = TEXT_BASE
    symbols: Dict[str, int] = field(default_factory=dict)
    source: str = ""

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Return the instruction at *pc*, or ``None`` for an invalid PC."""
        return self.instructions.get(pc)

    def instruction_list(self) -> List[Instruction]:
        """All static instructions in ascending PC order."""
        return [self.instructions[pc] for pc in sorted(self.instructions)]

    def symbol(self, name: str) -> int:
        """Resolve label *name* to its address (raises ``KeyError``)."""
        return self.symbols[name]

    def end_pc(self) -> int:
        """One past the last text address (useful as a fetch guard)."""
        if not self.instructions:
            return self.entry_point
        return max(self.instructions) + INSTRUCTION_BYTES
