"""MIPS-like integer ISA: opcodes, instructions, assembler, programs."""

from .assembler import Assembler, AssemblyError, assemble
from .disassembler import disassemble, disassemble_instruction, \
    instruction_histogram
from .instruction import INSTRUCTION_BYTES, Instruction, format_instruction
from .opcodes import (
    NUM_GPRS,
    NUM_REGS,
    OpClass,
    Opcode,
    REG_HI,
    REG_LO,
    REG_RA,
    REG_SP,
    REG_ZERO,
    all_opcodes,
    lookup,
    parse_register,
    s32,
    u32,
)
from .program import DATA_BASE, Program, STACK_TOP, TEXT_BASE

__all__ = [
    "Assembler",
    "AssemblyError",
    "assemble",
    "disassemble",
    "disassemble_instruction",
    "instruction_histogram",
    "INSTRUCTION_BYTES",
    "Instruction",
    "format_instruction",
    "NUM_GPRS",
    "NUM_REGS",
    "OpClass",
    "Opcode",
    "REG_HI",
    "REG_LO",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "all_opcodes",
    "lookup",
    "parse_register",
    "s32",
    "u32",
    "DATA_BASE",
    "Program",
    "STACK_TOP",
    "TEXT_BASE",
]
