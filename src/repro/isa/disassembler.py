"""Program listings: disassemble programs back to annotated text.

The assembler produces decoded instructions directly, so "disassembly"
here means rendering a :class:`Program` as a readable listing — with
addresses, reconstructed label names, and data-section summaries — for
debugging workloads and inspecting what the generator produced.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .instruction import Instruction, format_instruction
from .program import Program


def _label_map(program: Program) -> Dict[int, str]:
    return {address: name for name, address in program.symbols.items()}


def disassemble_instruction(inst: Instruction,
                            labels: Optional[Dict[int, str]] = None) -> str:
    """One listing line: address, text, and the jump target's label."""
    text = format_instruction(inst)
    if labels and (inst.opcode.is_control and not inst.opcode.is_indirect):
        name = labels.get(inst.target)
        if name:
            text += f"    <{name}>"
    return f"{inst.pc:#010x}  {text}"


def disassemble(program: Program, with_data: bool = True) -> str:
    """Full listing of *program*: text section plus a data summary."""
    labels = _label_map(program)
    lines: List[str] = [".text"]
    for inst in program.instruction_list():
        name = labels.get(inst.pc)
        if name:
            lines.append(f"{name}:")
        lines.append("    " + disassemble_instruction(inst, labels))
    if with_data and program.data:
        lines.append("")
        lines.append(".data")
        addresses = sorted(program.data)
        # group contiguous byte runs
        start = addresses[0]
        previous = start - 1
        for address in addresses + [None]:
            if address is not None and address == previous + 1:
                previous = address
                continue
            length = previous - start + 1
            label = labels.get(start, "")
            tag = f" <{label}>" if label else ""
            lines.append(f"    {start:#010x}  {length} bytes{tag}")
            if address is not None:
                start = address
                previous = address
    return "\n".join(lines)


def instruction_histogram(program: Program) -> Dict[str, int]:
    """Static opcode mix of *program* (diagnostics for workload tuning)."""
    histogram: Dict[str, int] = {}
    for inst in program.instruction_list():
        name = inst.opcode.name
        histogram[name] = histogram.get(name, 0) + 1
    return histogram
