"""Program listings: disassemble programs back to annotated text.

The assembler produces decoded instructions directly, so "disassembly"
here means rendering a :class:`Program` as a readable listing — with
addresses, reconstructed label names, and data-section summaries — for
debugging workloads and inspecting what the generator produced.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .instruction import Instruction, format_instruction
from .program import Program


def _label_map(program: Program) -> Dict[int, str]:
    return {address: name for name, address in program.symbols.items()}


def disassemble_instruction(inst: Instruction,
                            labels: Optional[Dict[int, str]] = None) -> str:
    """One listing line: address, text, and the jump target's label."""
    text = format_instruction(inst)
    if labels and (inst.opcode.is_control and not inst.opcode.is_indirect):
        name = labels.get(inst.target)
        if name:
            text += f"    <{name}>"
    return f"{inst.pc:#010x}  {text}"


def disassemble(program: Program, with_data: bool = True) -> str:
    """Full listing of *program*: text section plus a data summary."""
    labels = _label_map(program)
    lines: List[str] = [".text"]
    for inst in program.instruction_list():
        name = labels.get(inst.pc)
        if name:
            lines.append(f"{name}:")
        lines.append("    " + disassemble_instruction(inst, labels))
    if with_data and program.data:
        lines.append("")
        lines.append(".data")
        addresses = sorted(program.data)
        # group contiguous byte runs
        start = addresses[0]
        previous = start - 1
        for address in addresses + [None]:
            if address is not None and address == previous + 1:
                previous = address
                continue
            length = previous - start + 1
            label = labels.get(start, "")
            tag = f" <{label}>" if label else ""
            lines.append(f"    {start:#010x}  {length} bytes{tag}")
            if address is not None:
                start = address
                previous = address
    return "\n".join(lines)


def disassemble_source(program: Program) -> str:
    """Render *program* as **reassemblable** source text.

    Unlike :func:`disassemble` (a human listing with addresses and a
    data summary), the output here is valid assembler input that
    reproduces the program exactly: feeding it back through
    :func:`~repro.isa.assembler.assemble` yields identical instructions,
    identical initial data bytes and identical label addresses.  The
    round-trip is a fixpoint — ``disassemble_source(assemble(text)) ==
    text`` — which ``tests/isa/test_roundtrip.py`` asserts for every
    workload.

    Layout reconstruction: data statements are emitted in address order
    from the data base, with ``.space`` directives covering any gaps, so
    every label lands back on its original address.  Branch and jump
    targets are emitted as absolute addresses (the assembler accepts
    numeric targets), so the text section needs no label fidelity to
    round-trip — labels are still emitted for readability.
    """
    labels = _label_map(program)
    lines: List[str] = []
    data_lines = _data_source_lines(program, labels)
    if data_lines:
        lines.append(".data")
        lines.extend(data_lines)
    lines.append(".text")
    for inst in program.instruction_list():
        name = labels.get(inst.pc)
        if name:
            lines.append(f"{name}:")
        lines.append("    " + format_instruction(inst))
    return "\n".join(lines) + "\n"


def _data_source_lines(program: Program,
                       labels: Dict[int, str],
                       bytes_per_line: int = 12) -> List[str]:
    """``.byte``/``.space`` directives reproducing the data image."""
    if not program.data:
        return []
    from .program import DATA_BASE
    addresses = sorted(program.data)
    # Labels must be emitted at their exact address, so runs split there.
    boundaries = {addr for addr in labels if addr >= DATA_BASE}
    lines: List[str] = []
    cursor = DATA_BASE

    def emit_gap(until: int) -> None:
        nonlocal cursor
        if until > cursor:
            lines.append(f"    .space {until - cursor}")
            cursor = until

    index = 0
    while index < len(addresses):
        start = addresses[index]
        if start in labels and start >= DATA_BASE:
            emit_gap(start)
            lines.append(f"{labels[start]}:")
        else:
            emit_gap(start)
        run = [program.data[start]]
        index += 1
        while (index < len(addresses)
               and addresses[index] == start + len(run)
               and addresses[index] not in boundaries):
            run.append(program.data[addresses[index]])
            index += 1
        for offset in range(0, len(run), bytes_per_line):
            chunk = run[offset:offset + bytes_per_line]
            lines.append("    .byte " + ", ".join(str(b) for b in chunk))
        cursor = start + len(run)
    # Labels past the last initialised byte (e.g. a trailing .space).
    for addr in sorted(boundaries):
        if addr > cursor:
            emit_gap(addr)
            lines.append(f"{labels[addr]}:")
        elif addr == cursor:
            lines.append(f"{labels[addr]}:")
    return lines


def instruction_histogram(program: Program) -> Dict[str, int]:
    """Static opcode mix of *program* (diagnostics for workload tuning)."""
    histogram: Dict[str, int] = {}
    for inst in program.instruction_list():
        name = inst.opcode.name
        histogram[name] = histogram.get(name, 0) + 1
    return histogram
