"""Decoded-instruction representation shared by all simulators.

An :class:`Instruction` is a fully decoded static instruction: the assembler
produces one per program location, and both the functional and timing
simulators interpret it directly (there is no binary encode/decode round
trip — the paper's effects do not depend on instruction encodings).

Field conventions (normalised by the assembler regardless of the
assembly-level operand order):

* ``rd``  — destination register (or store-data register for stores),
* ``rs``  — first source register (base register for memory ops),
* ``rt``  — second source register,
* ``imm`` — sign-extended immediate / shift amount / memory displacement,
* ``target`` — absolute target address for direct control transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from .opcodes import (
    Format,
    Opcode,
    REG_FCC,
    REG_HI,
    REG_LO,
    REG_RA,
    REG_ZERO,
    REGISTER_NAMES,
)

INSTRUCTION_BYTES = 4

# Execution-kind codes decoded once per static instruction: the shared
# ``execute`` path dispatches on one int instead of re-testing opcode
# flags on every dynamic instance.
KIND_ALU = 0
KIND_NOP = 1
KIND_BRANCH = 2
KIND_JUMP = 3
KIND_LOAD = 4
KIND_STORE = 5
KIND_HILO = 6


@dataclass(frozen=True)
class Instruction:
    """One decoded static instruction at a fixed program counter.

    ``src_regs`` and ``dest_regs`` are decoded once at construction (the
    simulators consult them on every dynamic instance, so they are hot),
    as are the evaluation-operand register numbers ``a_reg``/``b_reg``
    (``b_reg < 0`` means the second operand reads as 0) and the
    ``exec_kind`` dispatch code.
    """

    pc: int
    opcode: Opcode
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0
    target: int = 0
    src_regs: Tuple[int, ...] = ()
    dest_regs: Tuple[int, ...] = ()
    a_reg: int = 0
    b_reg: int = -1
    exec_kind: int = KIND_ALU

    def __post_init__(self) -> None:
        object.__setattr__(self, "src_regs", self._decode_src_regs())
        object.__setattr__(self, "dest_regs", self._decode_dest_regs())
        a_reg, b_reg = self._decode_operand_regs()
        object.__setattr__(self, "a_reg", a_reg)
        object.__setattr__(self, "b_reg", b_reg)
        object.__setattr__(self, "exec_kind", self._decode_exec_kind())

    @property
    def next_pc(self) -> int:
        return self.pc + INSTRUCTION_BYTES

    def _decode_src_regs(self) -> Tuple[int, ...]:
        """Architectural registers this instruction reads (r0 excluded)."""
        op = self.opcode
        srcs: Tuple[int, ...]
        if op.name == "mfhi":
            srcs = (REG_HI,)
        elif op.name == "mflo":
            srcs = (REG_LO,)
        elif op.fmt in (Format.RRR, Format.RR, Format.BRANCH2):
            srcs = (self.rs, self.rt)
        elif op.fmt in (Format.RRI, Format.BRANCH1, Format.RR2):
            srcs = (self.rs,)
        elif op.fmt == Format.BRANCH0:
            srcs = (REG_FCC,)
        elif op.fmt == Format.MEM:
            srcs = (self.rs, self.rd) if op.is_store else (self.rs,)
        elif op.is_indirect:
            srcs = (self.rs,)
        else:
            srcs = ()
        return tuple(reg for reg in srcs if reg != REG_ZERO)

    def _decode_dest_regs(self) -> Tuple[int, ...]:
        """Architectural registers this instruction writes (r0 excluded)."""
        op = self.opcode
        if op.writes_hi_lo:
            return (REG_HI, REG_LO)
        if op.writes_fcc:
            return (REG_FCC,)
        if op.is_call:
            return (REG_RA,)
        if op.is_store or op.is_branch or op.is_jump \
                or op.op_class.name == "NOP":
            return ()
        return (self.rd,) if self.rd != REG_ZERO else ()

    def _decode_operand_regs(self) -> Tuple[int, int]:
        """The registers feeding the ``(a, b)`` evaluation operands."""
        op = self.opcode
        if op.name == "mfhi":
            return REG_HI, -1
        if op.name == "mflo":
            return REG_LO, -1
        if op.fmt == Format.BRANCH0:
            return REG_FCC, -1
        if op.fmt in (Format.RRR, Format.RR, Format.BRANCH2):
            return self.rs, self.rt
        if op.is_store:
            return self.rs, self.rd
        return self.rs, -1

    def _decode_exec_kind(self) -> int:
        op = self.opcode
        if op.op_class.name == "NOP":
            return KIND_NOP
        if op.is_branch:
            return KIND_BRANCH
        if op.is_jump:
            return KIND_JUMP
        if op.is_load:
            return KIND_LOAD
        if op.is_store:
            return KIND_STORE
        if op.writes_hi_lo:
            return KIND_HILO
        return KIND_ALU

    @property
    def is_return(self) -> bool:
        """``jr $ra`` is treated as a procedure return (drives the RAS)."""
        return self.opcode.name == "jr" and self.rs == REG_RA

    @property
    def writes_value(self) -> bool:
        """True when this instruction produces a register result."""
        return bool(self.dest_regs)

    def operand_values(
            self, read_reg: Callable[[int], int]) -> Tuple[int, int]:
        """Read the ``(a, b)`` evaluation operands via *read_reg(regnum)*.

        ``a`` is the first source (rs / HI / LO), ``b`` the second (rt, or
        the store-data register for stores); absent operands read as 0.
        The register numbers were decoded once at construction.
        """
        b_reg = self.b_reg
        return read_reg(self.a_reg), (read_reg(b_reg) if b_reg >= 0 else 0)

    def __str__(self) -> str:
        return f"{self.pc:#x}: {format_instruction(self)}"


def _reg(reg: int) -> str:
    return "$" + REGISTER_NAMES.get(reg, str(reg))


def format_instruction(inst: Instruction) -> str:
    """Render *inst* back into assembly-like text (for traces and debugging)."""
    op = inst.opcode
    fmt = op.fmt
    if fmt == Format.RRR:
        return f"{op.name} {_reg(inst.rd)}, {_reg(inst.rs)}, {_reg(inst.rt)}"
    if fmt == Format.RRI:
        return f"{op.name} {_reg(inst.rd)}, {_reg(inst.rs)}, {inst.imm}"
    if fmt == Format.RI:
        return f"{op.name} {_reg(inst.rd)}, {inst.imm}"
    if fmt == Format.RR:
        return f"{op.name} {_reg(inst.rs)}, {_reg(inst.rt)}"
    if fmt == Format.RR2:
        return f"{op.name} {_reg(inst.rd)}, {_reg(inst.rs)}"
    if fmt == Format.BRANCH0:
        return f"{op.name} {inst.target:#x}"
    if fmt == Format.R:
        reg = inst.rs if (op.is_indirect or op.is_jump) else inst.rd
        return f"{op.name} {_reg(reg)}"
    if fmt == Format.MEM:
        return f"{op.name} {_reg(inst.rd)}, {inst.imm}({_reg(inst.rs)})"
    if fmt == Format.BRANCH2:
        return (f"{op.name} {_reg(inst.rs)}, {_reg(inst.rt)}, "
                f"{inst.target:#x}")
    if fmt == Format.BRANCH1:
        return f"{op.name} {_reg(inst.rs)}, {inst.target:#x}"
    if fmt == Format.JUMP:
        return f"{op.name} {inst.target:#x}"
    return op.name
