"""Interval metrics: a columnar time-series sampled every N cycles.

The collector samples the core at fixed cycle boundaries and stores one
row per interval in plain column lists (columnar so report code can
compute per-column summaries without materializing row objects).  Two
kinds of quantity appear in a row:

* **deltas** over the interval (committed instructions, squashes, reuse
  tests, ...) — differences of cumulative counters, so they sum to the
  end-of-run totals;
* **instantaneous** values at the sample point (ROB/LSQ/fetch-queue
  occupancy) — cheap and exact, because the core fast-forwards only
  through provably idle spans in which occupancy cannot change.

Serialized either as versioned JSONL (header object + one array per
row) or CSV (header row + numeric rows), chosen by file suffix;
:func:`load_timeseries` reads both back.  The column set is part of the
format version: adding a column bumps :data:`INTERVAL_FORMAT`.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..util.locking import atomic_write_text

INTERVAL_FORMAT = "repro-interval-v1"

#: Default sampling period in cycles.
DEFAULT_INTERVAL = 500

#: The fixed column order of a row (and of the serialized formats).
INTERVAL_COLUMNS = (
    "cycle",              # interval end (inclusive sample point)
    "cycles",             # interval width (last row may be partial)
    "committed",          # instructions retired in the interval
    "ipc",                # committed / cycles
    "rob_occupancy",      # instantaneous, at the sample point
    "lsq_occupancy",
    "fetch_queue",
    "fetch_stall_cycles",  # stepped cycles fetch could not proceed
    "dispatched",
    "executions",         # execution attempts (incl. re-executions)
    "vp_predicted",       # predictions made at dispatch
    "vp_verified",        # predictions checked at commit
    "vp_mispredicted",    # checked and wrong
    "reuse_tests",
    "reuse_hits",         # reuse-test successes (full or address)
    "reuse_misses",
    "squashes",           # control-squash events
    "spurious_squashes",  # squashes on value-speculative operands
    "reexecs",            # selective re-executions scheduled
    "branch_resolutions",
)


class IntervalSeries:
    """Columnar per-interval samples plus their serialization."""

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 columns: Sequence[str] = INTERVAL_COLUMNS):
        self.interval = interval
        self.columns = tuple(columns)
        self.data: Dict[str, List[float]] = {name: []
                                             for name in self.columns}
        self.context: Dict[str, object] = {}

    def append(self, row: Dict[str, float]) -> None:
        """Add one sample; *row* must cover every column."""
        for name in self.columns:
            self.data[name].append(row[name])

    def __len__(self) -> int:
        return len(self.data[self.columns[0]])

    def rows(self) -> List[List[float]]:
        return [[self.data[name][i] for name in self.columns]
                for i in range(len(self))]

    def column(self, name: str) -> List[float]:
        return self.data[name]

    def summary(self, name: str) -> Dict[str, float]:
        """min/mean/max of one column (0s when the series is empty)."""
        values = self.data[name]
        if not values:
            return {"min": 0.0, "mean": 0.0, "max": 0.0}
        return {"min": min(values),
                "mean": sum(values) / len(values),
                "max": max(values)}

    # -- serialization ---------------------------------------------------------------

    def header(self) -> Dict:
        header = {"format": INTERVAL_FORMAT, "interval": self.interval,
                  "columns": list(self.columns), "rows": len(self)}
        header.update(self.context)
        return header

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        # repro-lint: waive[sorted-serialization] -- row is a list in declared column order, not a dict
        lines.extend(json.dumps(row) for row in self.rows())
        return "\n".join(lines) + "\n"

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows())
        return buffer.getvalue()

    def write(self, path) -> None:
        """Serialize by suffix: ``.csv`` is CSV, anything else JSONL."""
        path = Path(path)
        if path.suffix.lower() == ".csv":
            atomic_write_text(path, self.to_csv())
        else:
            atomic_write_text(path, self.to_jsonl())


def _from_jsonl(text: str, path) -> IntervalSeries:
    lines = text.splitlines()
    if not lines:
        raise ValueError(f"{path}: empty time-series file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) \
            or header.get("format") != INTERVAL_FORMAT:
        raise ValueError(f"{path}: not a {INTERVAL_FORMAT} time-series")
    series = IntervalSeries(interval=header.get("interval", 0),
                            columns=header["columns"])
    series.context = {key: value for key, value in header.items()
                      if key not in ("format", "interval", "columns",
                                     "rows")}
    for line in lines[1:]:
        if not line.strip():
            continue
        values = json.loads(line)
        series.append(dict(zip(series.columns, values)))
    return series


def _from_csv(text: str, path) -> IntervalSeries:
    reader = csv.reader(io.StringIO(text))
    try:
        columns = next(reader)
    except StopIteration:
        raise ValueError(f"{path}: empty time-series file") from None
    series = IntervalSeries(interval=0, columns=columns)
    for row in reader:
        if not row:
            continue
        series.append({name: float(value)
                       for name, value in zip(columns, row)})
    return series


def load_timeseries(path) -> IntervalSeries:
    """Read a series written by :meth:`IntervalSeries.write` (either
    format, chosen by suffix)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".csv":
        return _from_csv(text, path)
    return _from_jsonl(text, path)
