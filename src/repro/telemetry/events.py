"""Structured event tracing: typed records in a bounded ring buffer.

Every instrumented point in the core emits a :class:`TraceEvent` — a
flat ``(kind, cycle, seq, pc, data)`` record — into an
:class:`EventTrace`, a ``deque(maxlen=capacity)`` ring buffer: tracing a
billion-cycle run costs bounded memory and keeps the *most recent*
window, which is the one a "why did IPC collapse at the end" question
needs.  The serialized form is versioned JSONL (one header object, then
one object per event) so saved traces survive schema growth; the
``repro-trace`` CLI (:mod:`repro.telemetry.cli`) filters and renders
saved traces, including reconstructing the Figure-2 pipeline view from
``commit`` events.

Event kinds and their ``data`` payloads are documented in
``docs/telemetry.md``; :data:`EVENT_KINDS` is the closed registry the
tests assert against.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Dict, Iterable, Iterator, List, Optional

TRACE_FORMAT = "repro-trace-v1"

#: Default ring-buffer capacity (events, not instructions).
DEFAULT_CAPACITY = 65_536

# The closed set of event kinds the core can emit.  ``data`` keys per
# kind are documented in docs/telemetry.md.
EVENT_KINDS = (
    "dispatch",            # instruction entered the window
    "issue",               # an execution started (incl. re-executions)
    "complete",            # an execution finished
    "commit",              # instruction retired (full pipeline lifetime)
    "vp_predict",          # a value/address prediction was made
    "vp_verify",           # prediction checked at commit (correct flag)
    "reexec",              # selective re-execution scheduled
    "reuse_hit",           # reuse test succeeded (full and/or address)
    "reuse_miss",          # reuse test failed, with the reason
    "branch_resolve",      # control instruction resolved (maybe spurious)
    "squash",              # wrong-path instructions discarded
    "checkpoint_restore",  # speculative state restored after a squash
)

_KIND_SET = frozenset(EVENT_KINDS)


class TraceEvent:
    """One typed telemetry event.

    ``seq``/``pc`` are ``-1`` for events not tied to one dynamic
    instruction (there are none today, but the schema allows it).
    ``data`` holds the kind-specific payload.
    """

    __slots__ = ("kind", "cycle", "seq", "pc", "data")

    def __init__(self, kind: str, cycle: int, seq: int = -1, pc: int = -1,
                 data: Optional[Dict] = None):
        self.kind = kind
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.data = data if data is not None else {}

    def as_dict(self) -> Dict:
        return {"kind": self.kind, "cycle": self.cycle, "seq": self.seq,
                "pc": self.pc, "data": self.data}

    @classmethod
    def from_dict(cls, payload: Dict) -> "TraceEvent":
        return cls(payload["kind"], payload["cycle"],
                   payload.get("seq", -1), payload.get("pc", -1),
                   payload.get("data") or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{self.kind}@{self.cycle} seq={self.seq} "
                f"pc={self.pc:#x}>")


class EventTrace:
    """Bounded ring buffer of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.emitted = 0  # total emits, including evicted ones

    # -- recording (hot path when tracing is on) ---------------------------------

    def emit(self, kind: str, cycle: int, seq: int = -1, pc: int = -1,
             data: Optional[Dict] = None) -> None:
        self.events.append(TraceEvent(kind, cycle, seq, pc, data))
        self.emitted += 1

    # -- querying -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (oldest-first)."""
        return self.emitted - len(self.events)

    def counts(self) -> Dict[str, int]:
        """Events per kind currently in the buffer."""
        return dict(Counter(event.kind for event in self.events))

    def select(self, kinds: Optional[Iterable[str]] = None,
               pc: Optional[int] = None,
               since: Optional[int] = None,
               until: Optional[int] = None) -> List[TraceEvent]:
        """Filter the buffered events (all filters optional, ANDed)."""
        wanted = frozenset(kinds) if kinds is not None else None
        out = []
        for event in self.events:
            if wanted is not None and event.kind not in wanted:
                continue
            if pc is not None and event.pc != pc:
                continue
            if since is not None and event.cycle < since:
                continue
            if until is not None and event.cycle > until:
                continue
            out.append(event)
        return out

    # -- serialization ---------------------------------------------------------------

    def header(self, **context) -> Dict:
        header = {"format": TRACE_FORMAT, "capacity": self.capacity,
                  "emitted": self.emitted, "dropped": self.dropped}
        header.update(context)
        return header

    def dumps(self, **context) -> str:
        """Versioned JSONL: header line, then one line per event."""
        lines = [json.dumps(self.header(**context), sort_keys=True)]
        lines.extend(json.dumps(event.as_dict(), sort_keys=True)
                     for event in self.events)
        return "\n".join(lines) + "\n"

    def write(self, path) -> None:
        from ..util.locking import atomic_write_text
        atomic_write_text(path, self.dumps())


def load_trace(path) -> "LoadedTrace":
    """Parse a saved trace; raises ``ValueError`` on a foreign file."""
    from pathlib import Path
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) \
            or header.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} trace")
    events = [TraceEvent.from_dict(json.loads(line))
              for line in lines[1:] if line.strip()]
    return LoadedTrace(header, events)


class LoadedTrace:
    """A deserialized trace: the header plus the event list.

    Exposes the same ``select``/``counts`` queries as the live
    :class:`EventTrace`, so CLI code works on either.
    """

    def __init__(self, header: Dict, events: List[TraceEvent]):
        self.header = header
        self.events = events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    counts = EventTrace.counts
    select = EventTrace.select
