"""Hierarchical span tracing for sweeps: sweep -> job -> phase.

A *span* is one timed region of sweep execution.  Three kinds nest:

* ``sweep`` — one :meth:`ExperimentRunner.run_many` invocation;
* ``job`` — one (workload x config) cell, keyed by its result cache
  key, whether it simulated or was served from the cache;
* ``phase`` — one stage inside a simulated job: ``decode`` (program
  assembly), ``warm-restore`` (checkpoint restore or functional
  fast-forward), ``simulate`` (the timing run) and ``cache-write``
  (canonical result + manifest output).

Span identity is **content-derived, never random**: a span id is a
truncated SHA-256 over the span's kind, its key (the result cache key
for jobs/phases, the sweep digest for sweeps) and its name — so the
same cell always produces the same span id, a run manifest can name the
job span of the result it describes without coordination, and two
serial sweeps over the same cells emit byte-identical span structure
(:func:`identity_lines`).  Only *timing* differs between runs, and the
timing comes exclusively from monotonic clocks (``time.perf_counter``;
the ``monotonic-tracing`` lint rule bans wallclock here): ``t_start``
is seconds since the recording process's :class:`SpanRecorder` epoch,
``duration_s`` is the span's width.  Spans from different processes
therefore share durations but not a common timeline — the report layer
only ever aggregates durations ("where did the time go"), never
cross-process ordering.

Spans are observation-only, exactly like the rest of the telemetry
package: they never enter cache keys, and a traced sweep leaves the
result cache and ``SimStats`` byte-identical to an untraced one
(``tests/experiments/test_tracing.py`` pins this).

Per-job resource accounting rides on job spans: ``resource.getrusage``
deltas for user/system CPU seconds and the absolute peak RSS
(``ru_maxrss``; kilobytes on Linux) at span exit.

Serialization is canonical JSONL: a header object, then one canonical
JSON record per line, records sorted by (trace, kind rank, key, phase
rank) so the file layout does not depend on pool scheduling.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from ..util.locking import atomic_write_text
from ..util.serial import canonical_dumps

try:  # POSIX; absent on Windows — resource attrs degrade to zeros.
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]

SPAN_FORMAT = "repro-span-v1"

#: The phases of one simulated job, in execution order (the sort order
#: of phase records within a job).
PHASE_ORDER = ("decode", "warm-restore", "simulate", "cache-write")

_KIND_RANK = {"sweep": 0, "job": 1, "phase": 2}

#: Record fields that legitimately differ between byte-identical
#: sweeps (timing, process identity, host resources, and the
#: process-topology-dependent checkpoint source: which worker captures
#: vs restores a shared warm-up depends on pool scheduling); everything
#: else is content-derived.  :func:`identity_lines` strips these.
TIMING_FIELDS = ("t_start", "duration_s", "pid")
TIMING_ATTRS = ("cpu_user_s", "cpu_sys_s", "rss_peak_kb", "host",
                "wall_s", "checkpoint")


def span_id(kind: str, key: str, name: str = "") -> str:
    """Deterministic 16-hex span id from (kind, key, name).

    For ``job``/``phase`` spans *key* is the result cache key (which
    already embeds workload, config, budgets and source digest); for
    ``sweep`` spans it is the sweep digest over the sorted run keys —
    so identity follows content, never wallclock or randomness.

    ``job``/``sweep`` ids use the empty name (the key alone identifies
    them, so a run manifest can name its job span without knowing the
    display label); phase ids include the phase name.
    """
    payload = f"repro-span:{kind}:{key}:{name}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def sweep_digest(run_keys: List[str]) -> str:
    """Order-independent digest of a sweep's run keys (the same value
    :func:`repro.telemetry.manifest.sweep_manifest` embeds)."""
    return hashlib.sha256(
        "\n".join(sorted(run_keys)).encode()).hexdigest()[:12]


def _phase_rank(record: Dict) -> int:
    try:
        return PHASE_ORDER.index(record.get("name", ""))
    except ValueError:
        return len(PHASE_ORDER)


def _sort_key(record: Dict):
    return (record.get("trace") or "",
            _KIND_RANK.get(record.get("kind", ""), 9),
            record.get("key") or "",
            _phase_rank(record),
            record.get("name") or "",
            record.get("span") or "")


class SpanRecorder:
    """Collects span records for one process; merged across processes.

    Workers drain their recorder over the pool result channel and the
    parent adopts the records under its sweep span
    (:meth:`ExperimentRunner.run_many`), so one ``spans.jsonl`` covers
    the whole sweep regardless of where each cell ran.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.records: List[Dict] = []
        self._seen: set = set()

    def __len__(self) -> int:
        return len(self.records)

    def rel(self, t: float) -> float:
        """*t* (a ``perf_counter`` reading) relative to this recorder's
        epoch, rounded to microseconds."""
        return round(t - self._epoch, 6)

    def add(self, record: Dict) -> bool:
        """Append *record*, deduplicating on span id.

        Dedup matters for cache-hit job spans: ``repro-experiment all``
        asks for the same cached cell from many experiments, and the
        deterministic id makes the repeats collapse to one record.
        """
        sid = record.get("span")
        if sid in self._seen:
            return False
        self._seen.add(sid)
        self.records.append(record)
        return True

    def extend(self, records: List[Dict]) -> None:
        for record in records:
            self.add(record)

    def drain(self) -> List[Dict]:
        """Return and clear the collected records (the worker-to-parent
        handoff over the pool result channel)."""
        records, self.records = self.records, []
        self._seen = set()
        return records

    @contextlib.contextmanager
    def measure(self, kind: str, key: str, name: str,
                parent: Optional[str] = None,
                trace: Optional[str] = None,
                attrs: Optional[Dict] = None,
                rusage: bool = False) -> Iterator[Dict]:
        """Time a region as one span; yields the mutable attrs dict."""
        record = self._record(kind, key, name, parent, trace, attrs)
        ru0 = (resource.getrusage(resource.RUSAGE_SELF)
               if rusage and resource is not None else None)
        start = time.perf_counter()
        record["t_start"] = self.rel(start)
        try:
            yield record["attrs"]
        finally:
            record["duration_s"] = round(time.perf_counter() - start, 6)
            if ru0 is not None:
                ru1 = resource.getrusage(resource.RUSAGE_SELF)
                record["attrs"].update({
                    "cpu_user_s": round(ru1.ru_utime - ru0.ru_utime, 6),
                    "cpu_sys_s": round(ru1.ru_stime - ru0.ru_stime, 6),
                    # Peak RSS is a process high-water mark, not a
                    # delta: report the absolute peak at span exit.
                    "rss_peak_kb": int(ru1.ru_maxrss),
                    "host": platform.node(),
                })
            self.add(record)

    def point(self, kind: str, key: str, name: str,
              parent: Optional[str] = None,
              trace: Optional[str] = None,
              attrs: Optional[Dict] = None) -> Dict:
        """Record a zero-duration span (e.g. a cache-hit job)."""
        record = self._record(kind, key, name, parent, trace, attrs)
        record["t_start"] = self.rel(time.perf_counter())
        record["duration_s"] = 0.0
        self.add(record)
        return record

    def _record(self, kind: str, key: str, name: str,
                parent: Optional[str], trace: Optional[str],
                attrs: Optional[Dict]) -> Dict:
        if kind not in _KIND_RANK:
            raise ValueError(f"unknown span kind {kind!r} "
                             f"(one of {sorted(_KIND_RANK)})")
        return {
            "kind": kind,
            "key": key,
            "name": name,
            "span": span_id(kind, key, name if kind == "phase" else ""),
            "parent": parent,
            "trace": trace,
            "pid": os.getpid(),
            "attrs": dict(attrs) if attrs else {},
        }

    def adopt(self, trace: str, parent: str) -> None:
        """Attach orphan records to a sweep: fill in the trace id
        everywhere it is missing and re-parent parentless job spans
        (workers do not know the sweep span; the parent does)."""
        for record in self.records:
            if record.get("trace") is None:
                record["trace"] = trace
            if record.get("kind") == "job" \
                    and record.get("parent") is None:
                record["parent"] = parent

    def write(self, path) -> None:
        """Canonical JSONL export (atomic, deterministically sorted)."""
        atomic_write_text(Path(path), dumps(self.records))


def dumps(records: List[Dict]) -> str:
    """Header line + one canonical JSON record per line, sorted."""
    ordered = sorted(records, key=_sort_key)
    header = {"format": SPAN_FORMAT, "records": len(ordered)}
    lines = [canonical_dumps(header, indent=None)]
    lines.extend(canonical_dumps(record, indent=None)
                 for record in ordered)
    return "\n".join(lines) + "\n"


# repro-flow: sanitizer[wallclock, rusage, host] -- strips every TIMING_FIELDS/TIMING_ATTRS entry
def identity_lines(records: List[Dict]) -> str:
    """The canonical JSONL with every timing/host field stripped.

    Two serial sweeps over the same cells must produce byte-identical
    identity lines — this is the span analogue of the cache-bytes
    determinism contract, and what the byte-stability test compares.
    """
    redacted = []
    for record in sorted(records, key=_sort_key):
        clean = {name: value for name, value in record.items()
                 if name not in TIMING_FIELDS}
        clean["attrs"] = {name: value
                          for name, value in record.get("attrs",
                                                        {}).items()
                          if name not in TIMING_ATTRS}
        redacted.append(clean)
    return "\n".join(canonical_dumps(record, indent=None)
                     for record in redacted) + "\n"


def load_spans(path) -> List[Dict]:
    """Read a span file written by :meth:`SpanRecorder.write`."""
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty span file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) \
            or header.get("format") != SPAN_FORMAT:
        raise ValueError(f"{path}: not a {SPAN_FORMAT} span file")
    records = []
    for line in lines[1:]:
        if not line.strip():
            continue
        record = json.loads(line)
        if isinstance(record, dict):
            records.append(record)
    return records
