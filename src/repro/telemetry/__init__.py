"""Opt-in observability for the simulator: traces, time-series, manifests.

Three layers, all **off by default** (the golden-stats corpus pins that
attaching none of them is the default and that attaching any of them
never changes a statistic):

* :mod:`repro.telemetry.interval` — columnar per-interval time-series
  (IPC, occupancies, capture/misprediction rates every N cycles),
  serialized as versioned JSONL or CSV;
* :mod:`repro.telemetry.events` — a bounded ring buffer of typed event
  records from the core's dispatch/issue/complete/commit, VP and reuse
  paths, with a filterable ``repro-trace`` CLI;
* :mod:`repro.telemetry.manifest` — per-run and per-sweep provenance
  manifests written by the experiment harness;
* :mod:`repro.telemetry.spans` — hierarchical sweep → job → phase span
  tracing with per-job resource accounting (canonical JSONL,
  content-derived span ids);
* :mod:`repro.telemetry.progress` — the live sweep progress protocol
  (``progress.jsonl`` heartbeats) behind the ``repro-top`` CLI and
  ``repro-report --live``.

Attach with ``core.enable_telemetry()`` (see
:class:`~repro.telemetry.sink.TelemetrySink`) or the ``repro-sim
--telemetry-out`` / ``--trace-out`` flags; sweeps capture telemetry via
``ExperimentRunner(telemetry_dir=...)`` / ``repro-experiment
--telemetry-dir``.  ``docs/telemetry.md`` documents the schemas and the
measured overhead.
"""

from .events import (
    EVENT_KINDS,
    EventTrace,
    TraceEvent,
    load_trace,
)
from .interval import (
    INTERVAL_COLUMNS,
    INTERVAL_FORMAT,
    IntervalSeries,
    load_timeseries,
)
from .manifest import (
    MANIFEST_FORMAT,
    config_digest,
    load_manifests,
    run_manifest,
    sweep_manifest,
    write_manifest,
)
from .progress import (
    PROGRESS_FORMAT,
    ProgressWriter,
    SweepSnapshot,
    read_progress,
)
from .sink import TelemetrySink
from .spans import (
    SPAN_FORMAT,
    SpanRecorder,
    load_spans,
    span_id,
    sweep_digest,
)

__all__ = [
    "TelemetrySink",
    "SpanRecorder",
    "SPAN_FORMAT",
    "span_id",
    "sweep_digest",
    "load_spans",
    "ProgressWriter",
    "PROGRESS_FORMAT",
    "SweepSnapshot",
    "read_progress",
    "TraceEvent",
    "EventTrace",
    "EVENT_KINDS",
    "load_trace",
    "IntervalSeries",
    "INTERVAL_COLUMNS",
    "INTERVAL_FORMAT",
    "load_timeseries",
    "MANIFEST_FORMAT",
    "config_digest",
    "run_manifest",
    "sweep_manifest",
    "write_manifest",
    "load_manifests",
]
