"""Live sweep progress: the heartbeat protocol and the ``repro-top`` CLI.

A sweep used to be a black box until it finished; this module makes it
observable *while it runs*.  Every participant of a traced sweep
appends single-line JSON records to ``<telemetry-dir>/progress.jsonl``:

* the parent emits ``sweep_start`` (total cells, how many were already
  cached, pool size) and ``sweep_done``;
* each worker emits ``job_start`` / ``job_done`` per cell plus
  ``heartbeat`` records — at job boundaries and (throttled) from inside
  long simulations via the interval sink's sample hook — carrying its
  cumulative counters: cells done, the current cell, result-cache and
  checkpoint hit-vs-miss counts.

Appends go through :func:`repro.util.locking.append_line` (one
``O_APPEND`` write per record, so concurrent workers interleave whole
lines) and a reader tolerates a torn tail line.  Timestamps are
``time.monotonic()`` readings — system-wide on the platforms the sweep
harness supports, so a tailing reader on the same machine can compute
heartbeat ages; no wallclock ever enters the protocol (the
``monotonic-tracing`` lint rule enforces this).

``repro-top`` tails the file and renders a per-worker table with ETA;
``repro-report --live`` reuses the same renderer.  Like every other
telemetry layer, progress is observation-only: a traced sweep's result
cache and ``SimStats`` are byte-identical to an untraced one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..util.locking import append_line
from ..util.serial import canonical_dumps

PROGRESS_FORMAT = "repro-progress-v1"

#: Default file name under the sweep's telemetry directory.
PROGRESS_FILE = "progress.jsonl"

#: Record kinds of the protocol, in lifecycle order.
PROGRESS_KINDS = ("sweep_start", "job_start", "heartbeat", "job_done",
                  "sweep_done")

#: Minimum seconds between in-simulation heartbeats per writer — the
#: sink's sample hook may fire every few hundred simulated cycles, and
#: the file must grow with wallclock, not with simulated work.
HEARTBEAT_MIN_SECONDS = 0.5


class ProgressWriter:
    """One process's appender: tracks counters, emits protocol records."""

    def __init__(self, path,
                 heartbeat_min_seconds: float = HEARTBEAT_MIN_SECONDS):
        self.path = Path(path)
        self.pid = os.getpid()
        self.heartbeat_min_seconds = heartbeat_min_seconds
        self.done = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        self.current: Optional[str] = None
        self._last_heartbeat = -float("inf")

    # -- protocol records ---------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        record = {"format": PROGRESS_FORMAT, "kind": kind,
                  "pid": self.pid, "t_mono": round(time.monotonic(), 3)}
        record.update(fields)
        append_line(self.path, canonical_dumps(record, indent=None))

    def sweep_start(self, total: int, cached: int, pending: int,
                    jobs: int) -> None:
        self.emit("sweep_start", total=total, cached=cached,
                  pending=pending, jobs=jobs)

    def sweep_done(self, total: int, simulated: int,
                   wall_s: float) -> None:
        self.emit("sweep_done", total=total, simulated=simulated,
                  wall_s=round(wall_s, 3))

    def job_start(self, key: str, workload: str, config: str) -> None:
        self.current = key
        self.cache_misses += 1
        self.emit("job_start", key=key, workload=workload,
                  config=config)
        self._counters_heartbeat(force=True)

    def job_done(self, key: str, elapsed_s: float,
                 committed: int) -> None:
        self.current = None
        self.done += 1
        self.emit("job_done", key=key, elapsed_s=round(elapsed_s, 3),
                  committed=committed)
        self._counters_heartbeat(force=True)

    def cache_hit(self, key: str) -> None:
        self.done += 1
        self.cache_hits += 1
        self._counters_heartbeat(force=True)

    def checkpoint(self, source: Optional[str]) -> None:
        """Record where a warm-up came from (``memo``/``disk`` are hits,
        ``captured`` is a miss; anything else is not a checkpoint)."""
        if source in ("memo", "disk"):
            self.checkpoint_hits += 1
        elif source == "captured":
            self.checkpoint_misses += 1

    def heartbeat(self, current: Optional[str] = None,
                  cycles: Optional[int] = None,
                  committed: Optional[int] = None) -> None:
        """In-simulation heartbeat (throttled); wired to the interval
        sink's sample hook so long cells stay visibly alive."""
        now = time.monotonic()
        if now - self._last_heartbeat < self.heartbeat_min_seconds:
            return
        extra: Dict[str, object] = {}
        if cycles is not None:
            extra["cycles"] = cycles
        if committed is not None:
            extra["committed"] = committed
        self._emit_heartbeat(current if current is not None
                             else self.current, extra)

    def _counters_heartbeat(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_heartbeat \
                < self.heartbeat_min_seconds:
            return
        self._emit_heartbeat(self.current, {})

    def _emit_heartbeat(self, current: Optional[str],
                        extra: Dict[str, object]) -> None:
        self._last_heartbeat = time.monotonic()
        self.emit("heartbeat", current=current, done=self.done,
                  cache_hits=self.cache_hits,
                  cache_misses=self.cache_misses,
                  checkpoint_hits=self.checkpoint_hits,
                  checkpoint_misses=self.checkpoint_misses, **extra)


# -- reading ---------------------------------------------------------------------


def read_progress(path) -> List[Dict]:
    """Parse a progress file, skipping torn/foreign lines.

    A live file may end mid-record (a writer between ``write`` calls);
    the tail line simply does not parse yet and is dropped, exactly as
    a tailing reader must.
    """
    records = []
    try:
        text = Path(path).read_text()
    except OSError:
        return records
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) \
                and record.get("format") == PROGRESS_FORMAT:
            records.append(record)
    return records


class SweepSnapshot:
    """The folded state of one sweep: totals plus per-worker lines."""

    def __init__(self) -> None:
        self.total = 0
        self.cached = 0
        self.pending = 0
        self.jobs = 0
        self.started_mono: Optional[float] = None
        self.finished: Optional[Dict] = None
        self.workers: Dict[int, Dict] = {}
        self.last_mono: Optional[float] = None

    @classmethod
    def from_records(cls, records: List[Dict]) -> "SweepSnapshot":
        """Fold the records of the *most recent* sweep (everything from
        the last ``sweep_start`` on; all records when there is none)."""
        starts = [i for i, r in enumerate(records)
                  if r.get("kind") == "sweep_start"]
        if starts:
            records = records[starts[-1]:]
        snap = cls()
        for record in records:
            kind = record.get("kind")
            t_mono = record.get("t_mono")
            if isinstance(t_mono, (int, float)):
                snap.last_mono = t_mono
            if kind == "sweep_start":
                snap.total = record.get("total", 0)
                snap.cached = record.get("cached", 0)
                snap.pending = record.get("pending", 0)
                snap.jobs = record.get("jobs", 0)
                snap.started_mono = t_mono
            elif kind == "sweep_done":
                snap.finished = record
            elif kind in ("heartbeat", "job_start", "job_done"):
                worker = snap.workers.setdefault(record.get("pid", 0), {})
                worker["t_mono"] = t_mono
                if kind == "heartbeat":
                    worker.update(
                        {name: record[name] for name in
                         ("current", "done", "cache_hits",
                          "cache_misses", "checkpoint_hits",
                          "checkpoint_misses", "cycles", "committed")
                         if name in record})
                elif kind == "job_start":
                    worker["current"] = record.get("key")
                elif kind == "job_done":
                    worker["current"] = None
                    worker.pop("cycles", None)
                    worker.pop("committed", None)
        return snap

    @property
    def done(self) -> int:
        return sum(worker.get("done", 0)
                   for worker in self.workers.values())

    def elapsed(self) -> Optional[float]:
        if self.started_mono is None or self.last_mono is None:
            return None
        return max(0.0, self.last_mono - self.started_mono)

    def eta(self) -> Optional[float]:
        """Naive remaining-time estimate from the done/elapsed rate."""
        elapsed = self.elapsed()
        done = self.done
        if elapsed is None or done <= 0 or self.total <= 0 \
                or self.finished is not None:
            return None
        remaining = max(0, self.total - done)
        return elapsed * remaining / done


def render_snapshot(snap: SweepSnapshot,
                    now_mono: Optional[float] = None) -> str:
    """The ``repro-top`` view: one sweep header + one line per worker."""
    if snap.total == 0 and not snap.workers:
        return "no sweep progress recorded yet"
    parts = [f"sweep: {snap.done}/{snap.total} cells"]
    if snap.cached:
        parts.append(f"({snap.cached} pre-cached)")
    if snap.jobs:
        parts.append(f"jobs={snap.jobs}")
    elapsed = snap.elapsed()
    if elapsed is not None:
        parts.append(f"elapsed {elapsed:.1f}s")
    if snap.finished is not None:
        wall = snap.finished.get("wall_s")
        parts.append(f"[done in {wall:.1f}s]" if wall is not None
                     else "[done]")
    else:
        eta = snap.eta()
        if eta is not None:
            parts.append(f"eta ~{eta:.0f}s")
        else:
            parts.append("[running]")
    lines = ["  ".join(parts)]
    if snap.workers:
        lines.append(f"{'worker':<8} {'done':>4}  {'cache h/m':>9}  "
                     f"{'ckpt h/m':>9}  {'age':>6}  current")
        now = time.monotonic() if now_mono is None else now_mono
        for pid in sorted(snap.workers):
            worker = snap.workers[pid]
            age = "-"
            t_mono = worker.get("t_mono")
            if isinstance(t_mono, (int, float)):
                age = f"{max(0.0, now - t_mono):.1f}s"
            current = worker.get("current") or "idle"
            if worker.get("cycles") is not None:
                current += f" @ {worker['cycles']} cyc"
            lines.append(
                f"{pid:<8} {worker.get('done', 0):>4}  "
                f"{worker.get('cache_hits', 0):>4}/"
                f"{worker.get('cache_misses', 0):<4} "
                f"{worker.get('checkpoint_hits', 0):>4}/"
                f"{worker.get('checkpoint_misses', 0):<4} "
                f"{age:>6}  {current}")
    return "\n".join(lines)


def progress_path(target) -> Path:
    """Resolve a CLI target: a progress file, or a directory holding
    one (``<telemetry-dir>`` or a result cache with ``telemetry/``)."""
    target = Path(target)
    if target.is_dir():
        direct = target / PROGRESS_FILE
        if direct.exists():
            return direct
        nested = target / "telemetry" / PROGRESS_FILE
        if nested.exists():
            return nested
        return direct
    return target


def follow(target, interval: float = 2.0, once: bool = False,
           clear: bool = True, out=print) -> int:
    """Tail-and-render loop shared by ``repro-top`` and
    ``repro-report --live``; returns a process exit code."""
    path = progress_path(target)
    while True:
        snap = SweepSnapshot.from_records(read_progress(path))
        text = render_snapshot(snap)
        if clear and not once:
            out("\x1b[H\x1b[2J" + f"repro-top: {path}\n" + text)
        else:
            out(text)
        if once or snap.finished is not None:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Tail and render the live progress of a traced "
                    "sweep (see docs/telemetry.md)")
    parser.add_argument("telemetry",
                        help="progress.jsonl file, or a telemetry/"
                             "result-cache directory containing one")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh period while following "
                             "(default 2s)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append snapshots instead of clearing the "
                             "screen")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return follow(args.telemetry, interval=args.interval,
                  once=args.once, clear=not args.no_clear)


if __name__ == "__main__":
    sys.exit(main())
