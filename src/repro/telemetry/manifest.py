"""Run provenance manifests for the experiment harness.

A *run manifest* records everything needed to answer "where did this
cached number come from": the cache key and the digests it embeds
(machine configuration, program content), whether the run came from the
result cache and where its warm-up came from, wallclock, host and
software versions.  A *sweep manifest* ties one ``run_many`` invocation
together: the run keys it covered, how many were simulated vs already
cached, pool size and total wallclock.

Manifests are provenance, **not** results: they live in a
``manifests/`` subdirectory of the result cache, deliberately outside
the determinism contract (wallclock and host naturally differ between
the serial and parallel sweeps that must produce byte-identical result
caches).  Everything in a manifest that *is* content-derived — the
digests — is deterministic and is what tests assert against.
"""

from __future__ import annotations

import dataclasses
import enum
import getpass
import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..backend import get_backend
from ..util.locking import atomic_write_text
from ..util.serial import canonical_dumps
from .spans import span_id

MANIFEST_FORMAT = "repro-manifest-v1"

_REPO_ROOT = Path(__file__).resolve().parents[3]


def _jsonable(value):
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {name: _jsonable(item)
                for name, item in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def config_digest(config) -> str:
    """Content digest of a :class:`MachineConfig` (or any dataclass).

    Canonical JSON over every field (enums by value), hashed — two
    configs with the same semantics digest identically regardless of
    how they were constructed; any field change changes the digest.
    """
    payload = json.dumps(_jsonable(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


_GIT_DESCRIBE: Dict[str, Optional[str]] = {}


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the repo, or ``None``.

    Best-effort and memoized: manifests must never fail (or get slower
    per run) because the tree is not a git checkout.
    """
    if "value" not in _GIT_DESCRIBE:
        try:
            out = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                cwd=str(_REPO_ROOT), capture_output=True, text=True,
                timeout=5)
            _GIT_DESCRIBE["value"] = (out.stdout.strip()
                                      if out.returncode == 0 else None)
        except (OSError, subprocess.SubprocessError):
            _GIT_DESCRIBE["value"] = None
    return _GIT_DESCRIBE["value"]


def _package_version() -> str:
    try:
        from .. import __version__
        return __version__
    except ImportError:  # pragma: no cover - package always importable
        return "unknown"


def environment_fields() -> Dict[str, Optional[str]]:
    """The host/software identity block shared by run and sweep
    manifests."""
    try:
        user = getpass.getuser()
    except (KeyError, OSError):  # no passwd entry (containers)
        user = None
    backend = get_backend()
    return {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "package_version": _package_version(),
        "git_describe": git_describe(),
        "user": user,
        "pid": os.getpid(),
        # Which kernel produced the result (never part of the cache
        # key: both backends are pinned byte-identical, so this is
        # provenance, not identity).
        "backend": backend.name,
        "backend_extension": backend.extension_version,
    }


def run_manifest(*, cache_key: str, workload: str, config,
                 program_digest: str, source_sha12: str,
                 max_instructions: int, max_cycles: int,
                 cache_hit: bool, checkpoint: str,
                 wallclock_seconds: Optional[float],
                 stats=None) -> Dict:
    """Build one run's manifest dictionary (see module docstring)."""
    manifest = {
        "format": MANIFEST_FORMAT,
        "kind": "run",
        "cache_key": cache_key,
        # The job span of a traced sweep that (re)produced this result.
        # Content-derived from the cache key (repro.telemetry.spans), so
        # it is present and stable whether or not tracing was on.
        "span_id": span_id("job", cache_key),
        "workload": workload,
        "config_name": config.name,
        "config_digest": config_digest(config),
        "program_digest": program_digest,
        "source_sha12": source_sha12,
        "max_instructions": max_instructions,
        "max_cycles": max_cycles,
        "cache_hit": cache_hit,
        # Where the warm-up came from: "captured" (executed here),
        # "disk" (restored from the store), "memo" (already in this
        # process), "cached" (no simulation: the run was a cache hit)
        # or "disabled".
        "checkpoint": checkpoint,
        "wallclock_seconds": (round(wallclock_seconds, 3)
                              if wallclock_seconds is not None else None),
        "created_unix": round(time.time(), 3),
    }
    manifest.update(environment_fields())
    if stats is not None:
        manifest["stats"] = {
            "cycles": stats.cycles,
            "committed": stats.committed,
            "ipc": round(stats.ipc, 4),
        }
    return manifest


def sweep_manifest(*, run_keys: List[str], simulated: int, cached: int,
                   jobs: int, wallclock_seconds: float) -> Dict:
    """Build the manifest for one ``run_many`` sweep."""
    digest = hashlib.sha256(
        "\n".join(sorted(run_keys)).encode()).hexdigest()[:12]
    manifest = {
        "format": MANIFEST_FORMAT,
        "kind": "sweep",
        "sweep_digest": digest,
        # The sweep span (= trace id) of a traced run_many invocation.
        "span_id": span_id("sweep", digest),
        "runs": sorted(run_keys),
        "total_runs": len(run_keys),
        "simulated": simulated,
        "cached": cached,
        "jobs": jobs,
        "wallclock_seconds": round(wallclock_seconds, 3),
        "created_unix": round(time.time(), 3),
    }
    manifest.update(environment_fields())
    return manifest


def write_manifest(path, manifest: Dict) -> None:
    """Atomically write *manifest* as canonical JSON (sorted keys,
    the same byte discipline as the result cache)."""
    atomic_write_text(Path(path), canonical_dumps(manifest) + "\n")


def load_manifests(directory) -> List[Dict]:
    """All parseable manifests under *directory*, sorted by file name.

    Unreadable or foreign JSON files are skipped: a manifest directory
    is informational and must never crash a report.
    """
    directory = Path(directory)
    manifests = []
    if not directory.is_dir():
        return manifests
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict) \
                and payload.get("format") == MANIFEST_FORMAT:
            payload["_path"] = str(path)
            manifests.append(payload)
    return manifests
