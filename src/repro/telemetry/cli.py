"""``repro-trace``: inspect a saved telemetry event trace.

Usage::

    repro-trace run.trace.jsonl                       # dump all events
    repro-trace run.trace.jsonl --kinds commit,squash # filter by kind
    repro-trace run.trace.jsonl --pc 0x400120         # one static inst
    repro-trace run.trace.jsonl --since 1000 --until 2000
    repro-trace run.trace.jsonl --counts              # events per kind
    repro-trace run.trace.jsonl --figure2             # pipeline view

``--figure2`` reconstructs the Figure-2 pipeline table of
``repro-sim --trace`` from the trace's ``commit`` events — the exact
same formatting helper renders both, so a saved trace is as good as a
live tracer for the paper's Figure-2 style analysis.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .events import EVENT_KINDS, TraceEvent, load_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Filter and render a saved repro telemetry event "
                    "trace (see docs/telemetry.md for the schema)")
    parser.add_argument("trace", type=Path,
                        help="trace file written by repro-sim "
                             "--trace-out or TelemetrySink.write_trace")
    parser.add_argument("--kinds", default=None,
                        help="comma-separated event kinds to keep "
                             f"(known: {', '.join(EVENT_KINDS)})")
    parser.add_argument("--pc", default=None,
                        help="keep events of one static instruction "
                             "(hex like 0x400120, or decimal)")
    parser.add_argument("--since", type=int, default=None, metavar="CYCLE",
                        help="keep events at or after this cycle")
    parser.add_argument("--until", type=int, default=None, metavar="CYCLE",
                        help="keep events at or before this cycle")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="print at most the first N matching events")
    parser.add_argument("--counts", action="store_true",
                        help="print events-per-kind totals instead of "
                             "individual events")
    parser.add_argument("--figure2", action="store_true",
                        help="render the Figure-2 pipeline view from "
                             "the trace's commit events")
    return parser


def format_event(event: TraceEvent) -> str:
    """One event per line: cycle, kind, identity, then the payload."""
    parts = [f"{event.cycle:>8}", f"{event.kind:<18}"]
    if event.pc >= 0:
        parts.append(f"pc={event.pc:#010x}")
    if event.seq >= 0:
        parts.append(f"seq={event.seq}")
    for key in sorted(event.data):
        value = event.data[key]
        if key == "text":
            value = f"'{value}'"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _parse_kinds(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    kinds = [kind.strip() for kind in raw.split(",") if kind.strip()]
    unknown = sorted(set(kinds) - set(EVENT_KINDS))
    if unknown:
        raise SystemExit(f"unknown event kind(s): {', '.join(unknown)} "
                         f"(known: {', '.join(EVENT_KINDS)})")
    return kinds


def _parse_pc(raw: Optional[str]) -> Optional[int]:
    if raw is None:
        return None
    try:
        return int(raw, 0)
    except ValueError:
        raise SystemExit(f"--pc wants a number, got {raw!r}") from None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        trace = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None

    header = trace.header
    context = ", ".join(f"{key}={header[key]}"
                        for key in ("workload", "config") if key in header)
    print(f"trace: {args.trace}   events: {len(trace)}   "
          f"dropped: {header.get('dropped', 0)}"
          + (f"   ({context})" if context else ""))

    if args.figure2:
        from ..uarch.trace import records_from_events, render_trace_table
        records = records_from_events(
            trace.select(kinds=["commit"], pc=_parse_pc(args.pc),
                         since=args.since, until=args.until))
        if args.limit is not None:
            records = records[:args.limit]
        print()
        print(render_trace_table(records))
        return 0

    selected = trace.select(kinds=_parse_kinds(args.kinds),
                            pc=_parse_pc(args.pc),
                            since=args.since, until=args.until)
    if args.counts:
        counts = {}
        for event in selected:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        width = max((len(kind) for kind in counts), default=4)
        for kind in sorted(counts, key=counts.get, reverse=True):
            print(f"{kind:<{width}}  {counts[kind]}")
        return 0

    if args.limit is not None:
        selected = selected[:args.limit]
    for event in selected:
        print(format_event(event))
    return 0


if __name__ == "__main__":
    sys.exit(main())
