"""The telemetry sink: what an instrumented core actually talks to.

``core.enable_telemetry()`` attaches one :class:`TelemetrySink` to a
:class:`~repro.uarch.core.OutOfOrderCore`.  The sink owns both
observability layers:

* the **interval collector** — ``on_cycle`` samples the machine at fixed
  cycle boundaries into an :class:`~repro.telemetry.interval
  .IntervalSeries` (see that module for the column set);
* the **event trace** — ``emit`` appends typed records to a bounded
  :class:`~repro.telemetry.events.EventTrace` ring buffer and keeps the
  per-interval event counters (predictions, reuse hits, re-executions)
  that cumulative ``SimStats`` counters cannot provide.

Everything here is observation-only: a sink never feeds a value back
into the core, so attaching one cannot change a statistic — the
telemetry-transparency test pins ``SimStats`` byte-identity with and
without a sink, and the golden corpus pins the detached default.

Fast-forward interaction: the core calls ``on_cycle`` both after every
stepped cycle and after a fast-forward jump.  A jump only crosses spans
in which provably nothing happens, so boundary rows emitted from inside
a jump carry zero deltas and the (unchanged) current occupancies —
sampling stays exact without forcing the core to step through idle
cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..isa.instruction import format_instruction
from .events import DEFAULT_CAPACITY, EventTrace
from .interval import DEFAULT_INTERVAL, IntervalSeries

# Event kinds that feed a per-interval counter column.
_ACC_FOR_KIND = {
    "vp_predict": "vp_predicted",
    "vp_verify": "vp_verified",
    "reuse_hit": "reuse_hits",
    "reuse_miss": "reuse_misses",
    "reexec": "reexecs",
    "branch_resolve": "branch_resolutions",
}

_ACC_COLUMNS = ("vp_predicted", "vp_verified", "vp_mispredicted",
                "reuse_hits", "reuse_misses", "reexecs",
                "branch_resolutions")


class TelemetrySink:
    """One run's telemetry: interval series + event ring buffer."""

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 trace_capacity: int = DEFAULT_CAPACITY,
                 events: bool = True):
        self.interval = max(1, int(interval))
        self.series = IntervalSeries(interval=self.interval)
        self.trace: Optional[EventTrace] = (
            EventTrace(trace_capacity) if events else None)
        self._next_sample = self.interval
        self._last_cycle = 0
        self._prev: Dict[str, int] = {}
        self._acc: Dict[str, int] = {name: 0 for name in _ACC_COLUMNS}
        self._disasm: Dict[int, str] = {}
        self._finalized = False
        # Optional observer called after each boundary sample with
        # (cycle boundary, cumulative committed) — the experiment
        # harness hangs its throttled progress heartbeat here so long
        # simulations stay visibly alive in repro-top.  Observation
        # only: nothing flows back into the sample.
        self.on_sample: Optional[Callable[[int, int], None]] = None

    # -- event path (hot when attached) -------------------------------------------

    def emit(self, kind: str, cycle: int, seq: int = -1, pc: int = -1,
             data: Optional[Dict] = None) -> None:
        acc_key = _ACC_FOR_KIND.get(kind)
        if acc_key is not None:
            acc = self._acc
            acc[acc_key] += 1
            if kind == "vp_verify" and data is not None \
                    and not data.get("correct"):
                acc["vp_mispredicted"] += 1
        if self.trace is not None:
            self.trace.emit(kind, cycle, seq, pc, data)

    def disasm(self, meta) -> str:
        """Disassembly text for a :class:`StaticOp`, cached per PC."""
        text = self._disasm.get(meta.pc)
        if text is None:
            text = self._disasm[meta.pc] = format_instruction(meta.inst)
        return text

    # -- interval path --------------------------------------------------------------

    def on_cycle(self, core) -> None:
        """Flush every sample boundary at or before ``core.cycle``."""
        cycle = core.cycle
        if cycle < self._next_sample:
            return
        while cycle >= self._next_sample:
            self._sample(core, self._next_sample)
            self._next_sample += self.interval

    def _cumulative(self, core) -> Dict[str, int]:
        stats = core.stats
        return {
            "committed": stats.committed,
            "dispatched": stats.dispatched,
            "executions": stats.execution_attempts,
            "reuse_tests": stats.ir_tests,
            "squashes": stats.branch_squashes,
            "spurious_squashes": stats.spurious_squashes,
            "fetch_stall_cycles": core.fetch_unit.stall_cycles,
        }

    def _sample(self, core, boundary: int) -> None:
        current = self._cumulative(core)
        prev = self._prev
        width = boundary - self._last_cycle
        row = {name: current[name] - prev.get(name, 0)
               for name in current}
        acc = self._acc
        row.update(acc)
        row["cycle"] = boundary
        row["cycles"] = width
        row["ipc"] = row["committed"] / width if width else 0.0
        row["rob_occupancy"] = len(core.rob)
        row["lsq_occupancy"] = len(core.lsq)
        row["fetch_queue"] = len(core.fetch_unit.queue)
        self.series.append(row)
        self._prev = current
        self._last_cycle = boundary
        for name in acc:
            acc[name] = 0
        if self.on_sample is not None:
            self.on_sample(boundary, current["committed"])

    def finalize(self, core) -> None:
        """Flush the trailing partial interval and record run context.

        Idempotent; the core calls it at the end of :meth:`run`.
        """
        if self._finalized:
            return
        self._finalized = True
        if core.cycle > self._last_cycle:
            self._sample(core, core.cycle)
        stats = core.stats
        context = {
            "config": core.config.name,
            "workload": stats.workload_name,
            "total_cycles": stats.cycles,
            "total_committed": stats.committed,
        }
        if core.vp is not None:
            snapshot = getattr(core.vp, "telemetry_snapshot", None)
            if snapshot is not None:
                context["vp"] = snapshot()
        self.series.context.update(context)

    # -- artifact output --------------------------------------------------------------

    def write_timeseries(self, path) -> None:
        self.series.write(path)

    def write_trace(self, path, **context) -> None:
        if self.trace is None:
            raise ValueError("event tracing disabled for this sink")
        from ..util.locking import atomic_write_text
        merged = dict(self.series.context)
        merged.update(context)
        atomic_write_text(path, self.trace.dumps(**merged))
