"""Stable text, JSON and SARIF rendering of a lint :class:`Report`.

All formats are deterministic functions of the findings: sorted input
(the analyzer sorts), no timestamps, no absolute paths — two runs over
the same tree produce byte-identical output, so reports can themselves
be diffed or cached.  The renderers are shared by both analysis tiers
(``repro-lint`` and ``repro-flow``); *tool* names the producing tier.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from .core import Report, Severity

#: Bumped when the JSON layout changes shape.  ``schema_version`` in
#: the payload carries the same number so consumers can gate on it;
#: a byte-stability test pins the rendered bytes.
SCHEMA_VERSION = 2

#: SARIF spec level emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _format_name(tool: str) -> str:
    return f"{tool}-v1"


#: The tier-1 format marker (kept for backward compatibility).
REPORT_FORMAT = _format_name("repro-lint")


def render_text(report: Report, show_waived: bool = False) -> str:
    """Human-readable ``path:line: severity [rule] message`` lines."""
    lines: List[str] = []
    for finding in report.findings:
        if finding.waived and not show_waived:
            continue
        status = "waived" if finding.waived else finding.severity.value
        location = f"{finding.path}:{finding.line}" if finding.line \
            else finding.path
        lines.append(f"{location}: {status} [{finding.rule}] "
                     f"{finding.message}")
        if finding.waived:
            lines.append(f"    waiver: {finding.waive_reason}")
    lines.append(
        f"{len(report.errors)} error(s), {len(report.warnings)} "
        f"warning(s), {len(report.waived)} waived, "
        f"{report.files_checked} file(s) checked")
    return "\n".join(lines) + "\n"


def render_json(report: Report, tool: str = "repro-lint") -> str:
    """Machine-readable report (sorted keys, stable ordering)."""
    payload: Dict[str, object] = {
        "format": _format_name(tool),
        "schema_version": SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "rules_run": sorted(report.rules_run),
        "findings": [finding.as_dict() for finding in report.findings],
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "waived": len(report.waived),
        },
        "exit_code": report.exit_code(),
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def render_sarif(report: Report, tool: str = "repro-lint",
                 rules: Optional[Sequence[Tuple[str, str]]] = None
                 ) -> str:
    """SARIF 2.1.0 report (the format CI code-scanning uploads eat).

    *rules* is an optional ``(id, description)`` catalogue for the
    driver's rule metadata; rule ids appearing in findings but not in
    the catalogue (hygiene rules like ``bad-waiver``) are added with
    an empty description.  Waived findings are emitted as suppressed
    results so annotations show the justification instead of a bare
    pass.
    """
    catalogue: Dict[str, str] = dict(rules or ())
    for finding in report.findings:
        catalogue.setdefault(finding.rule, "")
    rule_ids = sorted(catalogue)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    results: List[Dict[str, object]] = []
    for finding in report.findings:
        level = "error" if finding.severity is Severity.ERROR \
            else "warning"
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": level,
            "message": {"text": finding.message},
            "locations": [_sarif_location(finding.path, finding.line)],
        }
        if finding.waived:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": finding.waive_reason,
            }]
        results.append(result)

    payload: Dict[str, object] = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool,
                "rules": [{
                    "id": rule_id,
                    "shortDescription": {"text": catalogue[rule_id]},
                } for rule_id in rule_ids],
            }},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def _sarif_location(path: str, line: int) -> Dict[str, object]:
    location: Dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
        },
    }
    if line > 0:
        physical = location["physicalLocation"]
        assert isinstance(physical, dict)
        physical["region"] = {"startLine": line}
    return location


def severity_counts(report: Report) -> Dict[str, int]:
    """``{severity: count}`` over unwaived findings (sorted keys)."""
    counts = {severity.value: 0 for severity in Severity}
    for finding in report.unwaived:
        counts[finding.severity.value] += 1
    return dict(sorted(counts.items()))
