"""Stable text and JSON rendering of a lint :class:`Report`.

Both formats are deterministic functions of the findings: sorted input
(the analyzer sorts), no timestamps, no absolute paths — two runs over
the same tree produce byte-identical output, so reports can themselves
be diffed or cached.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .core import Report, Severity

#: Bumped when the JSON layout changes shape.
REPORT_FORMAT = "repro-lint-v1"


def render_text(report: Report, show_waived: bool = False) -> str:
    """Human-readable ``path:line: severity [rule] message`` lines."""
    lines: List[str] = []
    for finding in report.findings:
        if finding.waived and not show_waived:
            continue
        status = "waived" if finding.waived else finding.severity.value
        location = f"{finding.path}:{finding.line}" if finding.line \
            else finding.path
        lines.append(f"{location}: {status} [{finding.rule}] "
                     f"{finding.message}")
        if finding.waived:
            lines.append(f"    waiver: {finding.waive_reason}")
    lines.append(
        f"{len(report.errors)} error(s), {len(report.warnings)} "
        f"warning(s), {len(report.waived)} waived, "
        f"{report.files_checked} file(s) checked")
    return "\n".join(lines) + "\n"


def render_json(report: Report) -> str:
    """Machine-readable report (sorted keys, stable ordering)."""
    payload: Dict[str, object] = {
        "format": REPORT_FORMAT,
        "files_checked": report.files_checked,
        "rules_run": sorted(report.rules_run),
        "findings": [finding.as_dict() for finding in report.findings],
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "waived": len(report.waived),
        },
        "exit_code": report.exit_code(),
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def severity_counts(report: Report) -> Dict[str, int]:
    """``{severity: count}`` over unwaived findings (sorted keys)."""
    counts = {severity.value: 0 for severity in Severity}
    for finding in report.unwaived:
        counts[finding.severity.value] += 1
    return dict(sorted(counts.items()))
