"""Static analysis for the repository's determinism & invariant contracts.

``repro-lint`` is compiler-style correctness tooling for the
reproduction itself: the byte-exact determinism that every experiment,
cache and golden test relies on is a set of *conventions* (no wallclock
in the simulators, sorted keys before serialization, atomic writes for
shared stores, observation-only telemetry, ...) and this package proves
them at review time instead of waiting for a corrupted run to trip the
golden corpus.

Layout:

* :mod:`repro.analysis.core` — the framework: :class:`Finding`,
  :class:`Rule`, per-file :class:`ModuleInfo` with parsed waivers, and
  the :class:`Analyzer` driver;
* :mod:`repro.analysis.rules` — the rule catalogue (see
  ``docs/static-analysis.md``);
* :mod:`repro.analysis.tables` — the cross-table exhaustiveness checker
  (opcode table vs assembler vs compiled semantics vs FU pools);
* :mod:`repro.analysis.reporters` — stable text/JSON output;
* :mod:`repro.analysis.cli` — the ``repro-lint`` console entry point.
"""

from .core import Analyzer, Finding, ModuleInfo, Rule, Severity
from .rules import default_rules
from .tables import check_tables

__all__ = [
    "Analyzer",
    "Finding",
    "ModuleInfo",
    "Rule",
    "Severity",
    "default_rules",
    "check_tables",
]
