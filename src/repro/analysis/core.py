"""The analysis framework: findings, rules, waivers and the driver.

Everything here is deliberately self-contained (``ast`` + ``tokenize``
from the standard library only) so the linter can run in CI before any
dependency is installed, and deterministic: file discovery, finding
order and reporter output are all sorted, so two runs over the same tree
produce byte-identical reports — the linter holds itself to the
invariant it enforces.

Waiver syntax (checked by :func:`parse_waivers`):

* ``# repro-lint: waive[rule-id] -- justification`` — waives *rule-id*
  on the line the comment sits on; a comment alone on its line waives
  the following line instead.
* ``# repro-lint: waive-file[rule-id] -- justification`` — waives
  *rule-id* for the whole file.

The justification is mandatory: a waiver without one is itself reported
(``bad-waiver``), and a waiver that never matched a finding is reported
as ``unused-waiver`` so stale exemptions cannot accumulate.
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class Severity(enum.Enum):
    """How a finding affects the exit code: errors gate, warnings don't."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str  # root-relative posix path
    line: int  # 1-based; 0 for whole-file/project findings
    rule: str
    message: str
    severity: Severity = Severity.ERROR
    waived: bool = False
    waive_reason: str = ""

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity.value,
            "waived": self.waived,
            "waive_reason": self.waive_reason,
        }


#: Comment tag of the per-file tier.  The flow tier reuses the same
#: grammar under its own tag, so each tier only sees — and only
#: reports hygiene findings for — its own exemption comments.
DEFAULT_WAIVER_TAG = "repro-lint"


def _waive_re(tag: str) -> "re.Pattern[str]":
    return re.compile(
        rf"#\s*{re.escape(tag)}:\s*(waive|waive-file)\[([A-Za-z0-9_-]+)\]"
        r"(?:\s*--\s*(.*\S))?")


_WAIVE_RES: Dict[str, "re.Pattern[str]"] = {}


@dataclass
class Waivers:
    """Parsed waiver comments of one file."""

    line: Dict[int, Dict[str, str]] = field(default_factory=dict)
    file: Dict[str, str] = field(default_factory=dict)
    errors: List[Tuple[int, str]] = field(default_factory=list)
    used: Set[Tuple[int, str]] = field(default_factory=set)  # (line, rule); 0 = file level

    def lookup(self, line: int, rule: str) -> Optional[str]:
        """The justification waiving *rule* at *line*, or ``None``."""
        if rule in self.file:
            self.used.add((0, rule))
            return self.file[rule]
        reason = self.line.get(line, {}).get(rule)
        if reason is not None:
            self.used.add((line, rule))
        return reason

    def unused(self) -> Iterator[Tuple[int, str]]:
        for rule in sorted(self.file):
            if (0, rule) not in self.used:
                yield 0, rule
        for line in sorted(self.line):
            for rule in sorted(self.line[line]):
                if (line, rule) not in self.used:
                    yield line, rule


def parse_waivers(source: str, tag: str = DEFAULT_WAIVER_TAG) -> Waivers:
    """Extract *tag*-prefixed waiver comments from *source*
    (tokenize-accurate).

    For the default ``repro-lint`` tag any comment mentioning the tag
    that fails the grammar is an error; for other tags only comments
    that look like waivers (mention both the tag and ``waive``) are,
    because those tags may carry further comment roles of their own
    (the flow tier's ``sanitizer``/``guard``/``sink`` annotations).
    """
    if tag not in _WAIVE_RES:
        _WAIVE_RES[tag] = _waive_re(tag)
    waive_re = _WAIVE_RES[tag]
    waivers = Waivers()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return waivers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = waive_re.search(token.string)
        if match is None:
            mentioned = tag in token.string and (
                tag == DEFAULT_WAIVER_TAG or "waive" in token.string)
            if mentioned:
                waivers.errors.append(
                    (token.start[0], f"unparseable {tag} comment"))
            continue
        kind, rule, reason = match.groups()
        if not reason:
            waivers.errors.append(
                (token.start[0],
                 f"waiver for [{rule}] missing a '-- justification'"))
            continue
        if kind == "waive-file":
            waivers.file[rule] = reason
        else:
            # A comment alone on its line waives the *next* line (the
            # statement it annotates); a trailing comment waives its own.
            line = token.start[0]
            if token.line[:token.start[1]].strip() == "":
                line += 1
            waivers.line.setdefault(line, {})[rule] = reason
    return waivers


@dataclass
class ModuleInfo:
    """One parsed source file, handed to every per-module rule."""

    path: Path  # absolute
    relpath: str  # root-relative, posix separators
    source: str
    tree: ast.Module
    waivers: Waivers

    @property
    def package(self) -> Tuple[str, ...]:
        """Directory components of :attr:`relpath` (no filename)."""
        return tuple(self.relpath.split("/")[:-1])

    @property
    def module_name(self) -> str:
        """Dotted module path, e.g. ``repro.uarch.core``."""
        parts = self.relpath.split("/")
        parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") \
            else parts[-1]
        if parts[-1] == "__init__":
            parts.pop()
        return ".".join(parts)

    def in_package(self, *prefixes: str) -> bool:
        """True when the module lives under any ``repro.<prefix>``."""
        parts = self.relpath.split("/")
        if "repro" not in parts:
            return False
        sub = parts[parts.index("repro") + 1:]
        return bool(sub) and sub[0] in prefixes


class Rule:
    """Base class of every per-module lint rule.

    Subclasses set :attr:`id`, :attr:`severity` and a one-line
    :attr:`description` (the ``--list-rules`` catalogue), and implement
    :meth:`check` yielding findings with ``waived=False``; the driver
    applies waivers afterwards.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST,
                message: str) -> Finding:
        return Finding(module.relpath, getattr(node, "lineno", 0),
                       self.id, message, self.severity)


class ProjectRule(Rule):
    """A rule that checks cross-file invariants over a source root.

    ``check`` is a no-op; the driver calls :meth:`check_project` once
    per scanned root that contains a ``repro`` package.
    """

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self, root: Path) -> Iterable[Finding]:
        raise NotImplementedError


@dataclass
class Report:
    """The outcome of one analyzer run."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str]

    @property
    def unwaived(self) -> List[Finding]:
        return [f for f in self.findings if not f.waived]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.unwaived
                if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.unwaived
                if f.severity is Severity.WARNING]

    @property
    def waived(self) -> List[Finding]:
        return [f for f in self.findings if f.waived]

    def exit_code(self) -> int:
        return 1 if self.errors else 0


def iter_python_files(path: Path) -> Iterator[Path]:
    """Every ``*.py`` under *path* (or *path* itself), sorted, skipping
    hidden directories and ``__pycache__``."""
    if path.is_file():
        yield path
        return
    for candidate in sorted(path.rglob("*.py")):
        parts = candidate.relative_to(path).parts
        if any(p.startswith(".") or p == "__pycache__" for p in parts):
            continue
        yield candidate


class Analyzer:
    """Runs a rule set over source trees and applies waivers."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        ids = [rule.id for rule in rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids in {ids}")
        self.rules: List[Rule] = list(rules)

    def load_module(self, path: Path, root: Path) -> Optional[ModuleInfo]:
        """Parse one file; ``None`` (never an exception) on bad syntax —
        a syntax error is reported as a finding by :meth:`run`."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        relpath = path.relative_to(root).as_posix()
        return ModuleInfo(path, relpath, source, tree,
                          parse_waivers(source))

    def run(self, paths: Sequence[Path],
            select: Optional[Sequence[str]] = None) -> Report:
        """Analyze every Python file under *paths*.

        *select* restricts to the named rule ids (project rules
        included).  Findings come back sorted and deduplicated, with
        waivers applied and waiver hygiene (bad/unused) reported.
        """
        rules = [rule for rule in self.rules
                 if select is None or rule.id in select]
        module_rules = [r for r in rules
                        if not isinstance(r, ProjectRule)]
        project_rules = [r for r in rules if isinstance(r, ProjectRule)]

        findings: List[Finding] = []
        files_checked = 0
        for top in paths:
            top = Path(top)
            root = top if top.is_dir() else top.parent
            for path in iter_python_files(top):
                files_checked += 1
                relpath = path.relative_to(root).as_posix()
                try:
                    module = self.load_module(path, root)
                except SyntaxError as exc:
                    findings.append(Finding(
                        relpath, exc.lineno or 0, "syntax-error",
                        f"file does not parse: {exc.msg}"))
                    continue
                assert module is not None
                findings.extend(
                    self._check_module(module, module_rules))
            for rule in project_rules:
                project_root = _project_root(top)
                if project_root is not None:
                    findings.extend(rule.check_project(project_root))

        unique = sorted(set(findings), key=Finding.sort_key)
        return Report(unique, files_checked, [r.id for r in rules])

    def _check_module(self, module: ModuleInfo,
                      rules: Sequence[Rule]) -> Iterator[Finding]:
        raw: List[Finding] = []
        for rule in rules:
            raw.extend(rule.check(module))
        for found in raw:
            reason = module.waivers.lookup(found.line, found.rule)
            if reason is not None:
                yield Finding(found.path, found.line, found.rule,
                              found.message, found.severity,
                              waived=True, waive_reason=reason)
            else:
                yield found
        for line, message in module.waivers.errors:
            yield Finding(module.relpath, line, "bad-waiver", message)
        for line, rule_id in module.waivers.unused():
            yield Finding(
                module.relpath, line, "unused-waiver",
                f"waiver for [{rule_id}] matched no finding",
                Severity.WARNING)


def _project_root(path: Path) -> Optional[Path]:
    """The directory containing the ``repro`` package, if *path* holds
    one (the anchor the cross-table checker resolves files against)."""
    path = path if path.is_dir() else path.parent
    if (path / "repro" / "isa" / "opcodes.py").is_file():
        return path
    if path.name == "repro" and (path / "isa" / "opcodes.py").is_file():
        return path.parent
    return None
