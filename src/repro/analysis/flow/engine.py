"""The dataflow engine: per-function abstract interpretation under a
function-summary fixpoint.

Each function is interpreted over the taint lattice: parameters are
seeded with their markers, every expression evaluates to a taint set,
assignments update a flow-sensitive environment, and control flow
joins branch environments (the function body is re-interpreted until
its effects stop growing, which handles loop-carried taint).  The
interpretation of one function yields a :class:`Summary` — its return
taint, the sinks its parameters can conditionally reach, and the class
attributes its parameters are stored into.

Call sites consume summaries: markers in the callee's return taint are
substituted with argument taints, conditional sinks are instantiated
(a hit whose taint comes from *this* caller's own parameters re-exports
as a conditional sink one level up, so chains of helpers are followed
to any depth), and attribute stores feed global per-``(class, attr)``
taint cells that every method reading ``self.attr`` observes.  The
summary fixpoint runs over :func:`~repro.analysis.flow.lattice.fixpoint`
with dynamically-discovered caller edges as the dependency relation;
an outer loop re-runs it until the attribute cells are stable too.

With ``interprocedural=False`` the same interpreter runs but project
call summaries are ignored — the mode the fixtures use to prove a
finding genuinely needs the cross-function step.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (Dict, FrozenSet, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from ..core import Finding, Severity
from . import catalog as cat
from .catalog import Catalog
from .lattice import (EMPTY, TaintSet, concrete, fixpoint, is_param_label,
                      join, markers, param_index, param_label)
from .project import FunctionInfo, Project, _dotted

#: Method names that store their arguments into the receiver: a call
#: ``self.X.append(v)`` taints the ``(cls, X)`` attribute cell exactly
#: like ``self.X = v`` would.
_MUTATORS = frozenset(
    {"append", "appendleft", "add", "extend", "insert", "update",
     "setdefault", "push"})


@dataclass(frozen=True)
class CondSink:
    """A sink one of the function's parameters can reach.

    ``param`` is the parameter index whose taint flows to the sink;
    ``site`` is the innermost sink location (``relpath:line``); ``via``
    the qualname chain from this function down to it.  ``guardable``
    sinks are satisfied when the *caller* holds a lock guard at the
    call site.
    """

    rule: str
    param: int
    trigger: TaintSet
    description: str
    site: Tuple[str, int]
    via: Tuple[str, ...] = ()
    guardable: bool = False


@dataclass(frozen=True)
class AttrStore:
    """Parameter *param*'s taint is stored into ``cls.attr``."""

    cls: str
    attr: str
    param: int


@dataclass(frozen=True)
class Summary:
    """The interprocedural abstract of one function."""

    ret: TaintSet = EMPTY
    cond_sinks: FrozenSet[CondSink] = frozenset()
    attr_stores: FrozenSet[AttrStore] = frozenset()


_MAX_BODY_PASSES = 4
_MAX_OUTER_ROUNDS = 8


class Engine:
    """Runs the summary fixpoint and reports concrete findings."""

    def __init__(self, project: Project, catalog: Catalog,
                 interprocedural: bool = True) -> None:
        self.project = project
        self.catalog = catalog
        self.interprocedural = interprocedural
        self.summaries: Dict[str, Summary] = {}
        self.attr_taint: Dict[Tuple[str, str], TaintSet] = {}
        self.callers: Dict[str, Set[str]] = {}
        self.collect: Optional[Set[Finding]] = None

    # ------------------------------------------------------------------

    def solve(self) -> None:
        """Compute summaries (and attribute cells) to a fixpoint."""
        names = sorted(self.project.functions)
        for _ in range(_MAX_OUTER_ROUNDS):
            cells_before = dict(self.attr_taint)
            self.summaries = fixpoint(
                names, self._dependents, self._step, Summary())
            if self.attr_taint == cells_before:
                break

    def report(self) -> List[Finding]:
        """Re-interpret every function against the solved summaries,
        collecting concrete findings; then the whole-summary checks."""
        found: Set[Finding] = set()
        self.collect = found
        try:
            for qual in sorted(self.project.functions):
                self._analyze(self.project.functions[qual])
        finally:
            self.collect = None
        for qual in sorted(self.project.functions):
            fn = self.project.functions[qual]
            if fn.name not in self.catalog.pure_names:
                continue
            if qual in self.catalog.sanitizers:
                continue
            bad = concrete(self.summaries.get(qual, Summary()).ret) \
                & cat.NONDET
            if bad:
                found.add(Finding(
                    fn.module.relpath, fn.node.lineno, cat.RULE_CACHE_KEY,
                    f"{fn.name}() result carries "
                    f"[{', '.join(sorted(bad))}]: digests and cache "
                    f"keys must be content-only", Severity.ERROR))
        return sorted(found, key=Finding.sort_key)

    # ------------------------------------------------------------------

    def _dependents(self, qual: str) -> List[str]:
        deps = set(self.callers.get(qual, ()))
        fn = self.project.functions.get(qual)
        if fn is not None and fn.cls is not None:
            info = self.project.classes.get(fn.cls)
            if info is not None:
                deps.update(info.methods.values())
        return sorted(deps)

    def _step(self, qual: str,
              values: Mapping[str, Summary]) -> Summary:
        return self._analyze(self.project.functions[qual], values)

    def _analyze(self, fn: FunctionInfo,
                 values: Optional[Mapping[str, Summary]] = None
                 ) -> Summary:
        summaries = values if values is not None else self.summaries
        return _FunctionAnalysis(self, fn, summaries).run()

    # ------------------------------------------------------------------

    def attr_cell(self, class_qual: str, attr: str) -> TaintSet:
        """The joined taint of ``attr`` over *class_qual* and bases."""
        out: Set[str] = set()
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            cqual = stack.pop()
            if cqual in seen:
                continue
            seen.add(cqual)
            out.update(self.attr_taint.get((cqual, attr), EMPTY))
            info = self.project.classes.get(cqual)
            if info is not None:
                stack.extend(info.bases)
        return frozenset(out)

    def store_attr_cell(self, class_qual: str, attr: str,
                        labels: TaintSet) -> None:
        if not labels:
            return
        key = (class_qual, attr)
        self.attr_taint[key] = self.attr_taint.get(key, EMPTY) | labels

    def emit(self, relpath: str, line: int, rule: str,
             message: str) -> None:
        if self.collect is not None:
            self.collect.add(
                Finding(relpath, line, rule, message, Severity.ERROR))


class _FunctionAnalysis:
    """One abstract interpretation of one function body."""

    def __init__(self, engine: Engine, fn: FunctionInfo,
                 summaries: Mapping[str, Summary]) -> None:
        self.engine = engine
        self.project = engine.project
        self.catalog = engine.catalog
        self.fn = fn
        self.summaries = summaries
        self.env: Dict[str, TaintSet] = {}
        self.env_types: Dict[str, FrozenSet[str]] = {}
        self.ret: TaintSet = EMPTY
        self.cond_sinks: Set[CondSink] = set()
        self.attr_stores: Set[AttrStore] = set()
        self.local_defs: Dict[str, TaintSet] = {}
        self.trusted = (
            fn.annotation is not None
            and fn.annotation.role == "trusted-write"
        ) or fn.qualname in engine.catalog.trusted_writers \
            or fn.module.in_package("util")

    def run(self) -> Summary:
        for index, name in enumerate(self.fn.params):
            taint = {param_label(index)}
            if name in cat.STORE_PATH_NAMES:
                taint.add(cat.STOREPATH)
            self.env[name] = frozenset(taint)
        for _ in range(_MAX_BODY_PASSES):
            before = (dict(self.env), self.ret,
                      len(self.cond_sinks), len(self.attr_stores))
            self.block(self.fn.node.body, guarded=False)
            after = (dict(self.env), self.ret,
                     len(self.cond_sinks), len(self.attr_stores))
            if before == after:
                break
        return Summary(self.ret, frozenset(self.cond_sinks),
                       frozenset(self.attr_stores))

    # -- findings ------------------------------------------------------

    def hit(self, rule: str, line: int, description: str,
            labels: TaintSet, via: Tuple[str, ...] = (),
            site: Optional[Tuple[str, int]] = None) -> None:
        tail = ""
        if via and site is not None:
            tail = (f" via {' -> '.join(via)} "
                    f"[{site[0]}:{site[1]}]")
        self.engine.emit(
            self.fn.module.relpath, line, rule,
            f"[{', '.join(sorted(labels))}] value reaches "
            f"{description}{tail}")

    def check_sink(self, rule: str, line: int, description: str,
                   taint: TaintSet, trigger: TaintSet, guardable: bool,
                   guarded: bool, via: Tuple[str, ...] = (),
                   site: Optional[Tuple[str, int]] = None) -> None:
        """One value meeting one sink: concrete labels report, marker
        labels re-export as a conditional sink of this function."""
        if guardable and guarded:
            return
        real = concrete(taint) & trigger
        if real:
            self.hit(rule, line, description, real, via, site)
        for marker in markers(taint):
            self.cond_sinks.add(CondSink(
                rule, param_index(marker), trigger, description,
                site if site is not None
                else (self.fn.module.relpath, line),
                via, guardable))

    # -- statements ----------------------------------------------------

    def block(self, stmts: Sequence[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            self.stmt(stmt, guarded)

    def stmt(self, stmt: ast.stmt, guarded: bool) -> None:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, guarded)
        elif isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value, guarded)
            types = self.project.expr_types(
                self.fn, stmt.value, self.env_types)
            for target in stmt.targets:
                self.assign(target, taint, types, guarded)
        elif isinstance(stmt, ast.AnnAssign):
            taint = self.eval(stmt.value, guarded) \
                if stmt.value is not None else EMPTY
            types = self.project.annotation_types(
                self.fn.module, stmt.annotation)
            if stmt.value is not None:
                types = types | self.project.expr_types(
                    self.fn, stmt.value, self.env_types)
            self.assign(stmt.target, taint, types, guarded,
                        weak=stmt.value is None)
        elif isinstance(stmt, ast.AugAssign):
            taint = join(self.eval(stmt.value, guarded),
                         self.eval(stmt.target, guarded))
            self.assign(stmt.target, taint, frozenset(), guarded,
                        weak=True)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.ret = self.ret | self.eval(stmt.value, guarded)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, guarded)
            self._branch((stmt.body, stmt.orelse), guarded)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.eval(stmt.iter, guarded)
            self.assign(stmt.target, taint, frozenset(), guarded,
                        weak=True)
            self.block(stmt.body, guarded)
            self.block(stmt.orelse, guarded)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, guarded)
            self.block(stmt.body, guarded)
            self.block(stmt.orelse, guarded)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = guarded
            for item in stmt.items:
                taint = self.eval(item.context_expr, guarded)
                if cat.LOCKGUARD in taint:
                    inner = True
                if item.optional_vars is not None:
                    types = self.project.expr_types(
                        self.fn, item.context_expr, self.env_types)
                    self.assign(item.optional_vars, taint, types,
                                guarded)
            self.block(stmt.body, inner)
        elif isinstance(stmt, ast.Try):
            self.block(stmt.body, guarded)
            for handler in stmt.handlers:
                if handler.name is not None:
                    self.env[handler.name] = EMPTY
                self.block(handler.body, guarded)
            self.block(stmt.orelse, guarded)
            self.block(stmt.finalbody, guarded)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested_def(stmt, guarded)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, guarded)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, guarded)
            if stmt.msg is not None:
                self.eval(stmt.msg, guarded)
        # Delete/Pass/Break/Continue/Import/Global/Nonlocal/ClassDef:
        # no taint effect the analysis models.

    def _branch(self, arms: Tuple[Sequence[ast.stmt], ...],
                guarded: bool) -> None:
        base_env = dict(self.env)
        base_types = dict(self.env_types)
        out_env: Dict[str, TaintSet] = {}
        out_types: Dict[str, FrozenSet[str]] = {}
        for arm in arms:
            self.env = dict(base_env)
            self.env_types = dict(base_types)
            self.block(arm, guarded)
            for key, value in self.env.items():
                out_env[key] = out_env.get(key, EMPTY) | value
            for key, types in self.env_types.items():
                out_types[key] = out_types.get(key, frozenset()) | types
        self.env = out_env
        self.env_types = out_types

    def nested_def(self, node: "ast.FunctionDef | ast.AsyncFunctionDef",
                   guarded: bool) -> None:
        """A nested def is interpreted inline at its definition (its
        closure environment is live here); its return taint binds to
        its name so later calls/uses see it."""
        for decorator in node.decorator_list:
            self.eval(decorator, guarded)
        saved_env = dict(self.env)
        saved_types = dict(self.env_types)
        saved_ret = self.ret
        self.ret = EMPTY
        for name in _function_param_names(node):
            self.env[name] = EMPTY
        self.block(node.body, guarded)
        nested_ret = self.ret
        self.ret = saved_ret
        self.env = saved_env
        self.env_types = saved_types
        self.local_defs[node.name] = nested_ret
        self.env[node.name] = nested_ret

    # -- assignment targets --------------------------------------------

    def assign(self, target: ast.expr, taint: TaintSet,
               types: FrozenSet[str], guarded: bool,
               weak: bool = False) -> None:
        if isinstance(target, ast.Name):
            if weak:
                self.env[target.id] = self.env.get(
                    target.id, EMPTY) | taint
                if types:
                    self.env_types[target.id] = self.env_types.get(
                        target.id, frozenset()) | types
            else:
                self.env[target.id] = taint
                self.env_types[target.id] = types
        elif isinstance(target, ast.Attribute):
            self.attr_assign(target, taint, types, guarded)
        elif isinstance(target, ast.Subscript):
            base = target.value
            self.eval(target.slice, guarded)
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, EMPTY) | taint
            elif isinstance(base, ast.Attribute):
                self.attr_assign(base, taint, frozenset(), guarded)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Starred):
                    element = element.value
                self.assign(element, taint, frozenset(), guarded,
                            weak=True)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taint, types, guarded, weak)

    def attr_assign(self, target: ast.Attribute, taint: TaintSet,
                    types: FrozenSet[str], guarded: bool) -> None:
        dotted = _dotted(target)
        chain = dotted.split(".") if dotted is not None else []
        if len(chain) == 2:  # x.attr = v: flow-sensitive pseudo-local
            self.env[dotted or ""] = taint
            if types:
                self.env_types[dotted or ""] = types
        if chain and chain[0] == "self" and self.fn.cls is not None \
                and len(chain) == 2:
            self.engine.store_attr_cell(
                self.fn.cls, target.attr, concrete(taint))
            for marker in markers(taint):
                self.attr_stores.add(AttrStore(
                    self.fn.cls, target.attr, param_index(marker)))
        if not chain:
            self.eval(target.value, guarded)
            return
        self._attr_store_sinks(target, chain, taint, guarded)

    def _attr_store_sinks(self, target: ast.Attribute,
                          chain: List[str], taint: TaintSet,
                          guarded: bool) -> None:
        """Rule 1 and rule 4's assignment sinks: stores into stats
        containers and into simulator state."""
        dotted = ".".join(chain)
        into_stats = "stats" in chain
        into_state = into_stats or chain[0] in ("core", "stats") or (
            chain[0] == "self"
            and self.fn.module.in_package(*cat.MODEL_PACKAGES))
        if into_stats:
            self.check_sink(
                cat.RULE_CACHE_KEY, target.lineno,
                f"a golden-stats counter ({dotted})", taint,
                cat.NONDET, False, guarded)
        if into_state:
            self.check_sink(
                cat.RULE_TELEMETRY, target.lineno,
                f"simulator state ({dotted})", taint,
                frozenset({cat.TELDATA}), False, guarded)

    # -- expressions ---------------------------------------------------

    def eval(self, node: Optional[ast.expr],
             guarded: bool) -> TaintSet:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Attribute):
            return self.eval_attr(node, guarded)
        if isinstance(node, ast.Call):
            return self.call(node, guarded)
        if isinstance(node, ast.BinOp):
            return join(self.eval(node.left, guarded),
                        self.eval(node.right, guarded))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, guarded)
        if isinstance(node, ast.BoolOp):
            return join(*(self.eval(v, guarded) for v in node.values))
        if isinstance(node, ast.Compare):
            return join(self.eval(node.left, guarded),
                        *(self.eval(c, guarded)
                          for c in node.comparators))
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.test, guarded),
                        self.eval(node.body, guarded),
                        self.eval(node.orelse, guarded))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return join(*(self.eval(e, guarded) for e in node.elts))
        if isinstance(node, ast.Dict):
            parts = [self.eval(k, guarded)
                     for k in node.keys if k is not None]
            parts += [self.eval(v, guarded) for v in node.values]
            return join(*parts)
        if isinstance(node, ast.Subscript):
            return join(self.eval(node.value, guarded),
                        self.eval(node.slice, guarded))
        if isinstance(node, ast.Slice):
            return join(self.eval(node.lower, guarded),
                        self.eval(node.upper, guarded),
                        self.eval(node.step, guarded))
        if isinstance(node, ast.JoinedStr):
            return join(*(self.eval(v, guarded) for v in node.values))
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, guarded)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return self.comprehension(node, guarded)
        if isinstance(node, ast.Lambda):
            return self.lambda_body(node, guarded)
        if isinstance(node, ast.Await):
            return self.eval(node.value, guarded)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, guarded)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value, guarded)
            self.assign(node.target, taint, self.project.expr_types(
                self.fn, node.value, self.env_types), guarded)
            return taint
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None:
                self.ret = self.ret | self.eval(value, guarded)
            return EMPTY
        return EMPTY

    def eval_attr(self, node: ast.Attribute, guarded: bool) -> TaintSet:
        base = self.eval(node.value, guarded)
        taint = set(base)
        dotted = _dotted(node)
        if dotted is not None:
            if isinstance(node.value, ast.Name):
                taint |= self.env.get(dotted, EMPTY)
            origin = self.project.external_origin(
                self.fn.module, dotted)
            taint |= cat.ATTR_SOURCES.get(origin, EMPTY)
        if node.attr in cat.STORE_PATH_NAMES:
            taint.add(cat.STOREPATH)
        if cat.TELOBJ in base:
            taint.add(cat.TELDATA)
        if isinstance(node.value, ast.Name) \
                and node.value.id == "self" and self.fn.cls is not None:
            taint |= self.engine.attr_cell(self.fn.cls, node.attr)
            if cat.TELOBJ in self.engine.attr_cell(
                    self.fn.cls, node.attr):
                taint.add(cat.TELDATA)
        return frozenset(taint)

    def comprehension(self, node: ast.expr, guarded: bool) -> TaintSet:
        saved_env = dict(self.env)
        saved_types = dict(self.env_types)
        assert isinstance(node, (ast.ListComp, ast.SetComp,
                                 ast.DictComp, ast.GeneratorExp))
        for gen in node.generators:
            taint = self.eval(gen.iter, guarded)
            self.assign(gen.target, taint, frozenset(), guarded,
                        weak=True)
            for cond in gen.ifs:
                self.eval(cond, guarded)
        if isinstance(node, ast.DictComp):
            out = join(self.eval(node.key, guarded),
                       self.eval(node.value, guarded))
        else:
            out = self.eval(node.elt, guarded)
        self.env = saved_env
        self.env_types = saved_types
        return out

    def lambda_body(self, node: ast.Lambda, guarded: bool) -> TaintSet:
        saved_env = dict(self.env)
        saved_types = dict(self.env_types)
        for name in _function_param_names(node):
            self.env[name] = EMPTY
        out = self.eval(node.body, guarded)
        self.env = saved_env
        self.env_types = saved_types
        return out

    # -- calls ---------------------------------------------------------

    def call(self, node: ast.Call, guarded: bool) -> TaintSet:
        func = node.func
        pos: List[TaintSet] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                pos.append(self.eval(arg.value, guarded))
            else:
                pos.append(self.eval(arg, guarded))
        kw: Dict[Optional[str], TaintSet] = {}
        for keyword in node.keywords:
            kw[keyword.arg] = self.eval(keyword.value, guarded)
        every = join(*pos, *kw.values())

        if isinstance(func, ast.Name) and func.id in self.local_defs:
            # Nested def: its body was interpreted at the definition.
            return self.local_defs[func.id] | every

        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            self._mutate_receiver(func.value, every)

        result: Set[str] = set()
        recv: TaintSet = EMPTY
        if isinstance(func, ast.Attribute):
            recv = self.eval(func.value, guarded)
            if cat.TELOBJ in recv:
                result.add(cat.TELDATA)

        callees = self.project.resolve_call(
            self.fn, func, self.env_types)
        opaque = not callees
        for callee in callees:
            if callee.kind == "external":
                opaque = True
                result |= self.catalog.source_labels(callee.target)
                if callee.target in cat.OPEN_FAMILY:
                    result.add(cat.PROCLOCAL)
                    self._open_write_check(node, pos, kw, guarded)
            elif callee.kind == "opaque":
                opaque = True
            elif callee.kind == "class":
                result |= self._construct(callee.target, node, pos, kw,
                                          every, recv, guarded)
            else:
                result |= self._project_call(callee.target, node, pos,
                                             kw, every, recv, guarded)

        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name is not None:
            result |= cat.RESULT_LABELS_BY_NAME.get(name, EMPTY)
            sink = self.catalog.call_sinks.get(name)
            if sink is not None and not self.trusted:
                probes = list(pos) + list(kw.values())
                if sink.include_receiver and recv:
                    probes.append(recv)
                for taint in probes:
                    self.check_sink(
                        sink.rule, node.lineno,
                        f"{sink.description} ({name})", taint,
                        sink.trigger, sink.guardable, guarded)
            if name in cat.RAW_WRITE_METHODS \
                    and isinstance(func, ast.Attribute):
                self._raw_write_check(node, recv, guarded)
            if name == "open" and isinstance(func, ast.Attribute) \
                    and _write_mode(node, mode_position=0):
                self._raw_write_check(node, recv, guarded)
                result.add(cat.PROCLOCAL)

        if opaque:
            result |= every
        return frozenset(result)

    def _mutate_receiver(self, receiver: ast.expr,
                         taint: TaintSet) -> None:
        """``recv.append(v)``-style mutation: the stored values join
        the receiver's taint (local variable or attribute cell)."""
        if isinstance(receiver, ast.Name):
            self.env[receiver.id] = self.env.get(
                receiver.id, EMPTY) | taint
            return
        if isinstance(receiver, ast.Attribute) \
                and isinstance(receiver.value, ast.Name):
            pseudo = f"{receiver.value.id}.{receiver.attr}"
            self.env[pseudo] = self.env.get(pseudo, EMPTY) | taint
            if receiver.value.id == "self" and self.fn.cls is not None:
                self.engine.store_attr_cell(
                    self.fn.cls, receiver.attr, concrete(taint))
                for marker in markers(taint):
                    self.attr_stores.add(AttrStore(
                        self.fn.cls, receiver.attr,
                        param_index(marker)))

    def _construct(self, class_qual: str, node: ast.Call,
                   pos: List[TaintSet],
                   kw: Dict[Optional[str], TaintSet], every: TaintSet,
                   recv: TaintSet, guarded: bool) -> TaintSet:
        result: Set[str] = set(every)
        if class_qual in self.catalog.guard_classes:
            result |= {cat.LOCKGUARD, cat.PROCLOCAL}
        info = self.project.classes.get(class_qual)
        if info is not None and info.module.in_package("telemetry"):
            result |= {cat.TELOBJ, cat.PROCLOCAL}
        init = self.project.lookup_method(class_qual, "__init__")
        if init is not None:
            self._project_call(init, node, pos, kw, every, EMPTY,
                               guarded, is_method=True)
        return frozenset(result)

    def _project_call(self, qual: str, node: ast.Call,
                      pos: List[TaintSet],
                      kw: Dict[Optional[str], TaintSet],
                      every: TaintSet, recv: TaintSet, guarded: bool,
                      is_method: Optional[bool] = None) -> TaintSet:
        callee = self.project.functions.get(qual)
        if callee is None:
            return every
        self.engine.callers.setdefault(qual, set()).add(
            self.fn.qualname)
        if not self.engine.interprocedural:
            return EMPTY
        if qual in self.catalog.sanitizers:
            return frozenset(
                (every | recv) - self.catalog.sanitizers[qual])

        if is_method is None:
            is_method = callee.cls is not None \
                and isinstance(node.func, ast.Attribute)
        args: List[TaintSet] = ([recv] if is_method else []) + pos
        spill = EMPTY
        for key, taint in kw.items():
            index = callee.param_index(key) if key is not None else None
            if index is not None:
                while len(args) <= index:
                    args.append(EMPTY)
                args[index] = args[index] | taint
            else:
                spill = spill | taint

        def arg_taint(index: int) -> TaintSet:
            if index < len(args):
                return args[index] | spill
            return spill

        summary = self.summaries.get(qual, Summary())
        result: Set[str] = set()
        for label in summary.ret:
            if is_param_label(label):
                result |= arg_taint(param_index(label))
            else:
                result.add(label)
        for cond in summary.cond_sinks:
            # Keep via chains finite through call cycles: stop
            # extending once the callee already appears (recursion)
            # or the chain is deep enough to read.
            if qual in cond.via or len(cond.via) >= 6:
                via = cond.via
            else:
                via = (qual,) + cond.via
            self.check_sink(
                cond.rule, node.lineno, cond.description,
                arg_taint(cond.param), cond.trigger, cond.guardable,
                guarded, via=via, site=cond.site)
        for store in summary.attr_stores:
            taint = arg_taint(store.param)
            self.engine.store_attr_cell(
                store.cls, store.attr, concrete(taint))
            for marker in markers(taint):
                self.attr_stores.add(AttrStore(
                    store.cls, store.attr, param_index(marker)))
        return frozenset(result)

    # -- raw writes ----------------------------------------------------

    def _open_write_check(self, node: ast.Call, pos: List[TaintSet],
                          kw: Dict[Optional[str], TaintSet],
                          guarded: bool) -> None:
        if not _write_mode(node, mode_position=1):
            return
        path_taint = pos[0] if pos else kw.get("file", EMPTY)
        self._raw_write_check(node, path_taint, guarded)

    def _raw_write_check(self, node: ast.Call, path_taint: TaintSet,
                         guarded: bool) -> None:
        if self.trusted:
            return
        self.check_sink(
            cat.RULE_LOCK, node.lineno,
            "a raw (non-atomic, unlocked) write on a shared-store "
            "path; use atomic_write_text/bytes, append_line, or hold "
            "FileLock", path_taint, frozenset({cat.STOREPATH}),
            guardable=True, guarded=guarded)


def _write_mode(node: ast.Call, mode_position: int) -> bool:
    """True when an ``open``-style call's mode string writes."""
    mode: Optional[ast.expr] = None
    if len(node.args) > mode_position:
        mode = node.args[mode_position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in mode.value for c in "wax+")
    return False


def _function_param_names(
        node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda"
) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names
