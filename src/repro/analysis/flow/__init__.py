"""``repro-flow``: the interprocedural analysis tier.

Where ``repro.analysis`` checks one file at a time, this subpackage
proves whole-program properties of the determinism contracts: a
project model with call resolution (``project``), a taint lattice and
worklist solver (``lattice``), an abstract interpreter with function
summaries (``engine``), the source/sink/sanitizer catalogue
(``catalog``), the four flow rules (``rules``), a static call graph
(``callgraph``) and the CLI (``cli``).
"""

from .callgraph import CallEdge, build_callgraph
from .catalog import (RULE_CACHE_KEY, RULE_FORK, RULE_LOCK,
                      RULE_TELEMETRY, Catalog, build_catalog)
from .engine import Engine, Summary
from .lattice import EMPTY, TaintSet, concrete, fixpoint, join, markers
from .project import FlowAnnotation, Project
from .rules import FlowAnalyzer, FlowRule, default_flow_rules

__all__ = [
    "CallEdge", "build_callgraph",
    "RULE_CACHE_KEY", "RULE_FORK", "RULE_LOCK", "RULE_TELEMETRY",
    "Catalog", "build_catalog",
    "Engine", "Summary",
    "EMPTY", "TaintSet", "concrete", "fixpoint", "join", "markers",
    "FlowAnnotation", "Project",
    "FlowAnalyzer", "FlowRule", "default_flow_rules",
]
