"""The taint lattice and the worklist fixpoint solver.

The abstract domain is the powerset of a small label alphabet ordered
by inclusion: bottom is the empty set, join is union, and every
transfer function only ever adds labels, so the solver's chains are
finite and ascending.  Two kinds of label live side by side:

* **concrete labels** (``wallclock``, ``storepath``, ``telobj`` …) name
  a property a value actually has, and
* **parameter markers** (``<param:i>``) are placeholders meaning "the
  taint of the caller's *i*-th argument".  A function summary keeps its
  markers; a call site substitutes the argument taints for them, which
  is what turns one intra-procedural pass per function into an
  interprocedural analysis.

:func:`fixpoint` is the generic chaotic-iteration worklist driver: it
knows nothing about taint, only about re-running a ``step`` function
until nothing changes and requeueing dependents when something does.
The engine uses it for the function-summary fixpoint; the property
tests in ``tests/analysis/flow/`` check it against brute-force
round-robin iteration.
"""

from __future__ import annotations

from collections import deque
from typing import (Callable, Dict, FrozenSet, Iterable, Mapping, Sequence,
                    Set, Tuple, TypeVar)

TaintSet = FrozenSet[str]

EMPTY: TaintSet = frozenset()

_PARAM_PREFIX = "<param:"
_PARAM_SUFFIX = ">"


def param_label(index: int) -> str:
    """The marker standing for the taint of parameter *index*."""
    return f"{_PARAM_PREFIX}{index}{_PARAM_SUFFIX}"


def is_param_label(label: str) -> bool:
    return label.startswith(_PARAM_PREFIX)


def param_index(label: str) -> int:
    return int(label[len(_PARAM_PREFIX):-len(_PARAM_SUFFIX)])


def concrete(labels: Iterable[str]) -> TaintSet:
    """Only the real labels of *labels* (markers stripped)."""
    return frozenset(l for l in labels if not is_param_label(l))


def markers(labels: Iterable[str]) -> TaintSet:
    """Only the parameter markers of *labels*."""
    return frozenset(l for l in labels if is_param_label(l))


def join(*sets: Iterable[str]) -> TaintSet:
    """Least upper bound: union."""
    out: Set[str] = set()
    for labels in sets:
        out.update(labels)
    return frozenset(out)


Node = TypeVar("Node")
Value = TypeVar("Value")


def fixpoint(
    nodes: Sequence[Node],
    dependents: Callable[[Node], Iterable[Node]],
    step: Callable[[Node, Mapping[Node, Value]], Value],
    initial: Value,
) -> Dict[Node, Value]:
    """Solve ``values[n] = step(n, values)`` for every node by chaotic
    iteration.

    Every node starts at *initial* and is visited at least once, in the
    given order; whenever a node's value changes, ``dependents(node)``
    are requeued.  With monotone steps over a finite lattice this
    terminates at the least fixpoint; the solver itself only relies on
    ``!=`` to detect change, so any equality-comparable value works.
    Nodes returned by ``dependents`` that are not in *nodes* are
    ignored (a dependency edge may name something outside the system).
    """
    values: Dict[Node, Value] = {node: initial for node in nodes}
    queue: "deque[Node]" = deque(nodes)
    queued: Set[Node] = set(nodes)
    while queue:
        node = queue.popleft()
        queued.discard(node)
        new = step(node, values)
        if new != values[node]:
            values[node] = new
            for dep in dependents(node):
                if dep in values and dep not in queued:
                    queue.append(dep)
                    queued.add(dep)
    return values
