"""The whole-program model the flow engine analyzes.

``Project`` loads every module under the scanned roots into the same
``ModuleInfo`` the per-file tier uses, then builds what a whole-program
analysis needs on top: relative-import-aware name resolution, an index
of every function and class with a stable dotted qualname
(``repro.telemetry.sink.TelemetrySink.write_trace``), lightweight type
inference (constructor assignments, annotations, ``self.attr``
element types) so method calls resolve to their defining class, and the
``# repro-flow:`` role annotations that let source files declare
sanitizers, trusted writers, guard classes and extra sinks.

Annotation syntax (comment on the ``def``/``class`` line, a decorator
line, or alone on the line above)::

    # repro-flow: sanitizer[wallclock,env] -- quantized to a content id
    # repro-flow: trusted-write -- the one sanctioned atomic write path
    # repro-flow: guard -- holding this lock satisfies lock-discipline
    # repro-flow: sink[flow-cache-key-purity] -- digest input surface

The justification after ``--`` is mandatory, exactly as for waivers.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple, Union)

from ..core import ModuleInfo, Waivers, iter_python_files, parse_waivers

#: Comment tag of this tier; exemptions use the tier-1 grammar under
#: this tag, role annotations the grammar documented above.
FLOW_TAG = "repro-flow"

ANNOTATION_ROLES = ("sanitizer", "trusted-write", "guard", "sink")

_ANNOT_RE = re.compile(
    r"#\s*repro-flow:\s*(sanitizer|trusted-write|guard|sink)"
    r"(?:\[([A-Za-z0-9_,.\s*-]+)\])?"
    r"(?:\s*--\s*(.*\S))?")

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class FlowAnnotation:
    """One parsed ``# repro-flow: <role>[args] -- reason`` comment."""

    role: str
    args: Tuple[str, ...]
    reason: str
    line: int


def parse_annotations(
        source: str) -> Tuple[Dict[int, FlowAnnotation],
                              List[Tuple[int, str]]]:
    """Role annotations of one file, keyed by the line they attach to
    (their own line, or the next when alone on a line — the same
    placement rule as waivers), plus grammar errors."""
    annotations: Dict[int, FlowAnnotation] = {}
    errors: List[Tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return annotations, errors
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ANNOT_RE.search(token.string)
        if match is None:
            # Waiver comments belong to parse_waivers; anything else
            # mentioning the tag is a typo that must not pass silently.
            if FLOW_TAG in token.string and "waive" not in token.string:
                errors.append(
                    (token.start[0], f"unparseable {FLOW_TAG} comment"))
            continue
        role, rawargs, reason = match.groups()
        line = token.start[0]
        if not reason:
            errors.append(
                (line, f"{role} annotation missing a '-- justification'"))
            continue
        args = tuple(a.strip() for a in (rawargs or "").split(",")
                     if a.strip())
        if role == "sanitizer" and not args:
            errors.append(
                (line, "sanitizer annotation needs labels: sanitizer[...]"))
            continue
        if role == "sink" and not args:
            errors.append(
                (line, "sink annotation needs rule ids: sink[...]"))
            continue
        target = line
        if token.line[:token.start[1]].strip() == "":
            target = line + 1
        annotations[target] = FlowAnnotation(role, args, reason, line)
    return annotations, errors


@dataclass
class FunctionInfo:
    """One function or method, indexed by dotted qualname."""

    qualname: str
    name: str
    module: ModuleInfo
    node: FuncNode
    cls: Optional[str]  # owning class qualname
    params: Tuple[str, ...]  # posonly + positional + kwonly, in order
    annotation: Optional[FlowAnnotation] = None
    return_types: FrozenSet[str] = frozenset()  # class qualnames

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    """One class: its methods, inferred attribute types, and bases."""

    qualname: str
    name: str
    module: ModuleInfo
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    bases: Tuple[str, ...] = ()
    annotation: Optional[FlowAnnotation] = None


@dataclass(frozen=True)
class Callee:
    """One resolution of a call target.

    ``kind`` is ``function``/``class`` (project-internal, ``target`` a
    qualname), ``external`` (``target`` the import-substituted dotted
    origin, e.g. ``time.monotonic``), or ``opaque`` (unresolvable;
    ``target`` the bare attribute or name, still usable for name-based
    sink matching).
    """

    kind: str
    target: str


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _function_params(node: FuncNode) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return tuple(names)


class Project:
    """Everything the engine knows about the scanned source trees."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # relpath ->
        self.functions: Dict[str, FunctionInfo] = {}  # qualname ->
        self.classes: Dict[str, ClassInfo] = {}  # qualname ->
        self.imports: Dict[str, Dict[str, str]] = {}  # module name ->
        self.flow_waivers: Dict[str, Waivers] = {}  # relpath ->
        self.annotation_errors: Dict[str, List[Tuple[int, str]]] = {}
        self.syntax_errors: List[Tuple[str, int, str]] = []

    # ------------------------------------------------------------------
    # loading

    @classmethod
    def load(cls, paths: Sequence[Path]) -> "Project":
        project = cls()
        for top in paths:
            top = Path(top)
            root = top if top.is_dir() else top.parent
            for path in iter_python_files(top):
                relpath = path.relative_to(root).as_posix()
                if relpath in project.modules:
                    continue
                source = path.read_text(encoding="utf-8")
                try:
                    tree = ast.parse(source, filename=str(path))
                except SyntaxError as exc:
                    project.syntax_errors.append(
                        (relpath, exc.lineno or 0,
                         f"file does not parse: {exc.msg}"))
                    continue
                module = ModuleInfo(path, relpath, source, tree,
                                    parse_waivers(source, tag=FLOW_TAG))
                project._index_module(module)
        project._link()
        return project

    def _index_module(self, module: ModuleInfo) -> None:
        self.modules[module.relpath] = module
        self.flow_waivers[module.relpath] = module.waivers
        annotations, errors = parse_annotations(module.source)
        if errors:
            self.annotation_errors[module.relpath] = errors
        self.imports[module.module_name] = _module_imports(module)
        modname = module.module_name
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{modname}.{stmt.name}"
                self.functions[qual] = FunctionInfo(
                    qual, stmt.name, module, stmt, None,
                    _function_params(stmt),
                    _annotation_for(annotations, stmt))
            elif isinstance(stmt, ast.ClassDef):
                cqual = f"{modname}.{stmt.name}"
                info = ClassInfo(cqual, stmt.name, module, stmt,
                                 annotation=_annotation_for(
                                     annotations, stmt))
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        mqual = f"{cqual}.{sub.name}"
                        info.methods[sub.name] = mqual
                        self.functions[mqual] = FunctionInfo(
                            mqual, sub.name, module, sub, cqual,
                            _function_params(sub),
                            _annotation_for(annotations, sub))
                self.classes[cqual] = info

    def _link(self) -> None:
        """Resolve base classes, then infer attribute and return types
        (two rounds, so a return type can feed an attribute type and
        vice versa)."""
        for info in self.classes.values():
            bases: List[str] = []
            for base in info.node.bases:
                dotted = _dotted(base)
                if dotted is None:
                    continue
                qual = self.resolve_name(info.module, dotted)
                if qual is not None and qual in self.classes:
                    bases.append(qual)
            info.bases = tuple(bases)
        for _ in range(2):
            for info in self.classes.values():
                self._infer_attr_types(info)
            for fn in self.functions.values():
                fn.return_types = self._infer_return_types(fn)

    # ------------------------------------------------------------------
    # name resolution

    def resolve_name(self, module: ModuleInfo,
                     dotted: str) -> Optional[str]:
        """Map a dotted use in *module* to a project function or class
        qualname, else None."""
        imports = self.imports.get(module.module_name, {})
        head, _, rest = dotted.partition(".")
        origin = imports.get(head)
        candidates = []
        if origin is not None:
            candidates.append(f"{origin}.{rest}" if rest else origin)
        candidates.append(f"{module.module_name}.{dotted}")
        for qual in candidates:
            if qual in self.functions or qual in self.classes:
                return qual
        return None

    def external_origin(self, module: ModuleInfo,
                        dotted: str) -> str:
        """*dotted* with its head substituted through the import map:
        the canonical external name (``time.monotonic``,
        ``os.environ.get``)."""
        imports = self.imports.get(module.module_name, {})
        head, _, rest = dotted.partition(".")
        origin = imports.get(head, head)
        return f"{origin}.{rest}" if rest else origin

    def lookup_method(self, class_qual: str,
                      name: str) -> Optional[str]:
        """The qualname of *name* on *class_qual* or its bases."""
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            cqual = stack.pop()
            if cqual in seen:
                continue
            seen.add(cqual)
            info = self.classes.get(cqual)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None

    def class_attr_types(self, class_qual: str,
                         attr: str) -> FrozenSet[str]:
        out: Set[str] = set()
        seen: Set[str] = set()
        stack = [class_qual]
        while stack:
            cqual = stack.pop()
            if cqual in seen:
                continue
            seen.add(cqual)
            info = self.classes.get(cqual)
            if info is None:
                continue
            out.update(info.attr_types.get(attr, ()))
            stack.extend(info.bases)
        return frozenset(out)

    def resolve_call(self, fn: FunctionInfo, func: ast.expr,
                     env_types: Mapping[str, FrozenSet[str]]
                     ) -> List[Callee]:
        """Every resolution of a call target, best effort.

        Project functions/classes win; a dotted chain that resolves
        through the import map but not to project code is ``external``;
        a method call whose receiver type is unknown is ``opaque`` but
        keeps the attribute name for name-based sink matching.
        """
        module = fn.module
        if isinstance(func, ast.Name):
            qual = self.resolve_name(module, func.id)
            if qual is not None:
                kind = "function" if qual in self.functions else "class"
                return [Callee(kind, qual)]
            imports = self.imports.get(module.module_name, {})
            return [Callee("external", imports.get(func.id, func.id))]
        if not isinstance(func, ast.Attribute):
            return []
        dotted = _dotted(func)
        if dotted is not None:
            qual = self.resolve_name(module, dotted)
            if qual is not None:
                kind = "function" if qual in self.functions else "class"
                return [Callee(kind, qual)]
        out: List[Callee] = []
        # Receiver-typed method resolution: self.m(), self.attr.m(),
        # var.m() with var's classes known from constructor/annotation.
        recv_types = self.expr_types(fn, func.value, env_types)
        for cqual in sorted(recv_types):
            method = self.lookup_method(cqual, func.attr)
            if method is not None:
                out.append(Callee("function", method))
        if out:
            return out
        if dotted is not None:
            head = dotted.partition(".")[0]
            imports = self.imports.get(module.module_name, {})
            if head in imports or head not in env_types:
                return [Callee("external",
                               self.external_origin(module, dotted))]
        return [Callee("opaque", func.attr)]

    # ------------------------------------------------------------------
    # type inference

    def expr_types(self, fn: FunctionInfo, expr: ast.expr,
                   env_types: Mapping[str, FrozenSet[str]]
                   ) -> FrozenSet[str]:
        """The possible project classes of *expr*, best effort."""
        if isinstance(expr, ast.Name):
            types = env_types.get(expr.id, frozenset())
            if not types and expr.id == "self" and fn.cls is not None:
                return frozenset({fn.cls})
            return types
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name):
                local = env_types.get(f"{expr.value.id}.{expr.attr}")
                if local:
                    return local
            if isinstance(expr.value, ast.Name) \
                    and expr.value.id == "self" and fn.cls is not None:
                return self.class_attr_types(fn.cls, expr.attr)
            base = self.expr_types(fn, expr.value, env_types)
            out: Set[str] = set()
            for cqual in base:
                out.update(self.class_attr_types(cqual, expr.attr))
            return frozenset(out)
        if isinstance(expr, ast.IfExp):
            return self.expr_types(fn, expr.body, env_types) \
                | self.expr_types(fn, expr.orelse, env_types)
        if isinstance(expr, ast.Await):
            return self.expr_types(fn, expr.value, env_types)
        if isinstance(expr, ast.Call):
            callees = self.resolve_call(fn, expr.func, env_types)
            out = set()
            for callee in callees:
                if callee.kind == "class":
                    out.add(callee.target)
                elif callee.kind == "function":
                    info = self.functions.get(callee.target)
                    if info is not None:
                        out.update(info.return_types)
            return frozenset(out)
        return frozenset()

    def annotation_types(self, module: ModuleInfo,
                         ann: ast.expr) -> FrozenSet[str]:
        """Project classes named by a type annotation; sees through
        ``Optional``/``Final`` and string annotations."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value.strip()
            if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", name):
                qual = self.resolve_name(module, name)
                if qual in self.classes:
                    return frozenset({qual})
            return frozenset()
        if isinstance(ann, ast.Subscript):
            head = _dotted(ann.value)
            if head is not None and head.split(".")[-1] in (
                    "Optional", "Final", "ClassVar", "Annotated"):
                return self.annotation_types(module, ann.slice)
            return frozenset()
        dotted = _dotted(ann)
        if dotted is None:
            return frozenset()
        qual = self.resolve_name(module, dotted)
        if qual in self.classes:
            return frozenset({qual})
        return frozenset()

    def _infer_attr_types(self, info: ClassInfo) -> None:
        for mqual in info.methods.values():
            fn = self.functions[mqual]
            env: Dict[str, FrozenSet[str]] = {}
            # Two rounds: ast.walk is breadth-first, so a nested
            # assignment can be visited after its use — the first
            # round fills the local environment, the second reads it.
            for stmt in _two_walks(fn.node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                ann: Optional[ast.expr] = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value, ann = [stmt.target], stmt.value, \
                        stmt.annotation
                else:
                    continue
                types: Set[str] = set()
                if value is not None:
                    types |= self.expr_types(fn, value, env)
                if ann is not None:
                    types |= self.annotation_types(fn.module, ann)
                for target in targets:
                    if isinstance(target, ast.Name) and types:
                        env[target.id] = frozenset(types)
                    elif isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self" and types:
                        merged = set(info.attr_types.get(
                            target.attr, frozenset())) | types
                        info.attr_types[target.attr] = frozenset(merged)

    def _infer_return_types(self, fn: FunctionInfo) -> FrozenSet[str]:
        out: Set[str] = set(fn.return_types)
        if fn.node.returns is not None:
            out |= self.annotation_types(fn.module, fn.node.returns)
        env: Dict[str, FrozenSet[str]] = {}
        for stmt in _two_walks(fn.node):
            if isinstance(stmt, ast.Assign) \
                    and isinstance(stmt.value, ast.expr):
                types = self.expr_types(fn, stmt.value, env)
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and types:
                        env[target.id] = types
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                types = set(self.annotation_types(
                    fn.module, stmt.annotation))
                if stmt.value is not None:
                    types |= self.expr_types(fn, stmt.value, env)
                if types:
                    env[stmt.target.id] = frozenset(types)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                if isinstance(stmt.value, ast.Name) \
                        and stmt.value.id == "self" and fn.cls:
                    out.add(fn.cls)
                else:
                    out |= self.expr_types(fn, stmt.value, env)
        return frozenset(out)


def _two_walks(node: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` twice: breadth-first order can visit a use before
    a nested definition, so flow-insensitive inference iterates the
    tree a second time with the first round's bindings in hand."""
    for stmt in ast.walk(node):
        yield stmt
    for stmt in ast.walk(node):
        yield stmt


def _annotation_for(annotations: Mapping[int, FlowAnnotation],
                    node: Union[FuncNode, ast.ClassDef]
                    ) -> Optional[FlowAnnotation]:
    """The role annotation attached to *node*: on its ``def``/``class``
    line or any decorator line."""
    lines = [node.lineno]
    lines.extend(d.lineno for d in node.decorator_list)
    for line in lines:
        if line in annotations:
            return annotations[line]
    return None


def _module_imports(module: ModuleInfo) -> Dict[str, str]:
    """Local name -> absolute dotted origin for every import in the
    module, resolving relative imports against the module's package."""
    pkg = module.module_name.split(".")
    if not module.relpath.endswith("__init__.py"):
        pkg = pkg[:-1]
    mapping: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mapping[local] = alias.name if alias.asname \
                    else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = (node.module or "").split(".") \
                    if node.module else []
            else:
                drop = node.level - 1
                base = list(pkg[:len(pkg) - drop]) \
                    if drop <= len(pkg) else []
                if node.module:
                    base = base + node.module.split(".")
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = ".".join(base + [alias.name])
    return mapping
