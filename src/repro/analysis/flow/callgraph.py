"""Project-wide call graph over the parsed ASTs.

A deliberately static companion to the engine: it resolves every call
site it can — direct calls, aliased imports, ``self.method()``,
constructor-typed receivers (``obj = Klass(); obj.method()``) — into
``caller -> callee`` edges between project qualnames, with constructor
calls recorded against the class qualname itself.  The engine discovers
its own (richer, taint-typed) edges during interpretation; this module
exists for inspection: the golden test pins it, and ``repro-flow
--callgraph`` dumps it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from .project import FunctionInfo, Project, _two_walks


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: *caller* invokes *callee* at *line*."""

    caller: str
    callee: str
    line: int

    def sort_key(self) -> Tuple[str, str, int]:
        return (self.caller, self.callee, self.line)


def _local_types(project: Project,
                 fn: FunctionInfo) -> Dict[str, FrozenSet[str]]:
    """Constructor/annotation types of the function's locals, in
    lexical order (the same inference the engine uses, minus taint)."""
    env: Dict[str, FrozenSet[str]] = {}
    for stmt in _two_walks(fn.node):
        if isinstance(stmt, ast.Assign):
            types = project.expr_types(fn, stmt.value, env)
            for target in stmt.targets:
                if isinstance(target, ast.Name) and types:
                    env[target.id] = types
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            types = set(project.annotation_types(
                fn.module, stmt.annotation))
            if stmt.value is not None:
                types |= project.expr_types(fn, stmt.value, env)
            if types:
                env[stmt.target.id] = frozenset(types)
    return env


def build_callgraph(project: Project) -> List[CallEdge]:
    """Every resolvable call edge, sorted and deduplicated."""
    edges: Set[CallEdge] = set()
    for qual in sorted(project.functions):
        fn = project.functions[qual]
        env = _local_types(project, fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in project.resolve_call(fn, node.func, env):
                if callee.kind in ("function", "class"):
                    edges.add(CallEdge(qual, callee.target,
                                       node.lineno))
    return sorted(edges, key=CallEdge.sort_key)


def callers_map(edges: List[CallEdge]) -> Dict[str, Set[str]]:
    """``callee -> {callers}`` over *edges*."""
    out: Dict[str, Set[str]] = {}
    for edge in edges:
        out.setdefault(edge.callee, set()).add(edge.caller)
    return out


def render_callgraph(edges: List[CallEdge]) -> Iterator[str]:
    """Stable text rendering: one ``caller -> callee:line`` per edge."""
    for edge in edges:
        yield f"{edge.caller} -> {edge.callee}:{edge.line}"
