"""The source/sink/sanitizer catalogue: the contracts, as data.

Labels fall into two families.  The *nondeterminism* family (rule 1)
marks values whose bytes differ across runs, hosts or processes:
``wallclock``, ``env``, ``rusage``, ``random``, ``pyhash``, ``host``.
The *capability* family marks what a value **is**: ``storepath`` (a
path under a shared store), ``lockguard`` (holding it satisfies
lock-discipline), ``proclocal`` (captures process-local state — locks,
open handles, live sinks — and must not cross a fork), ``telobj`` (a
live telemetry object) and ``teldata`` (a value read out of one).

The static tables below name the standard-library facts; everything
repo-specific is declared in the source itself with ``# repro-flow:``
role annotations (see ``project.py``) and merged by
:func:`build_catalog`, so the catalogue never goes stale against a
rename the annotations would catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..core import Finding, Severity
from .lattice import TaintSet
from .project import Project

WALLCLOCK = "wallclock"
ENV = "env"
RUSAGE = "rusage"
RANDOM = "random"
PYHASH = "pyhash"
HOST = "host"
STOREPATH = "storepath"
LOCKGUARD = "lockguard"
PROCLOCAL = "proclocal"
TELOBJ = "telobj"
TELDATA = "teldata"

#: Rule 1's trigger set: bytes that vary across runs/hosts/processes.
NONDET: TaintSet = frozenset(
    {WALLCLOCK, ENV, RUSAGE, RANDOM, PYHASH, HOST})

ALL_LABELS: TaintSet = NONDET | frozenset(
    {STOREPATH, LOCKGUARD, PROCLOCAL, TELOBJ, TELDATA})

RULE_CACHE_KEY = "flow-cache-key-purity"
RULE_LOCK = "flow-lock-discipline"
RULE_FORK = "flow-fork-safety"
RULE_TELEMETRY = "flow-telemetry-purity"

RULE_TRIGGERS: Dict[str, TaintSet] = {
    RULE_CACHE_KEY: NONDET,
    RULE_LOCK: frozenset({STOREPATH}),
    RULE_FORK: frozenset({PROCLOCAL}),
    RULE_TELEMETRY: frozenset({TELDATA}),
}

#: Fully-qualified external callables whose *result* carries labels.
CALL_SOURCES: Dict[str, TaintSet] = {
    "time.time": frozenset({WALLCLOCK}),
    "time.time_ns": frozenset({WALLCLOCK}),
    "time.monotonic": frozenset({WALLCLOCK}),
    "time.monotonic_ns": frozenset({WALLCLOCK}),
    "time.perf_counter": frozenset({WALLCLOCK}),
    "time.perf_counter_ns": frozenset({WALLCLOCK}),
    "time.process_time": frozenset({WALLCLOCK}),
    "time.process_time_ns": frozenset({WALLCLOCK}),
    "datetime.datetime.now": frozenset({WALLCLOCK}),
    "datetime.datetime.utcnow": frozenset({WALLCLOCK}),
    "datetime.date.today": frozenset({WALLCLOCK}),
    "os.getenv": frozenset({ENV}),
    "os.environ.get": frozenset({ENV}),
    "resource.getrusage": frozenset({RUSAGE}),
    "os.getpid": frozenset({HOST}),
    "os.getppid": frozenset({HOST}),
    "os.uname": frozenset({HOST}),
    "platform.node": frozenset({HOST}),
    "platform.platform": frozenset({HOST}),
    "platform.machine": frozenset({HOST}),
    "socket.gethostname": frozenset({HOST}),
    "socket.getfqdn": frozenset({HOST}),
    "getpass.getuser": frozenset({HOST}),
    "subprocess.run": frozenset({HOST}),
    "subprocess.check_output": frozenset({HOST}),
    "subprocess.Popen": frozenset({HOST}),
    "os.urandom": frozenset({RANDOM}),
    "uuid.uuid1": frozenset({RANDOM}),
    "uuid.uuid4": frozenset({RANDOM}),
    "hash": frozenset({PYHASH}),
    "id": frozenset({PYHASH}),
}

#: Dotted-prefix sources: any call under the prefix carries the labels.
CALL_PREFIX_SOURCES: Tuple[Tuple[str, TaintSet], ...] = (
    ("random.", frozenset({RANDOM})),
    ("secrets.", frozenset({RANDOM})),
)

#: Exceptions to the prefixes: ``random.Random(seed)`` is the
#: sanctioned seeded generator, not a nondeterminism source.
CALL_SOURCE_EXCEPTIONS: FrozenSet[str] = frozenset({"random.Random"})

#: Attribute reads whose value carries labels.
ATTR_SOURCES: Dict[str, TaintSet] = {
    "os.environ": frozenset({ENV}),
}

#: Names (parameters or attributes) that denote shared-store roots.
STORE_PATH_NAMES: FrozenSet[str] = frozenset(
    {"cache_dir", "checkpoint_dir", "manifest_dir", "telemetry_dir",
     "store_dir"})

#: Builtins that return live OS handles (must not cross a fork, and
#: open(..., "w"-ish) is also a raw write).
OPEN_FAMILY: FrozenSet[str] = frozenset({"open", "io.open", "os.fdopen"})

#: ``.write_text``/``.write_bytes`` style raw-write method names.
RAW_WRITE_METHODS: FrozenSet[str] = frozenset(
    {"write_text", "write_bytes"})

#: Method names whose receiver/result is a live telemetry object even
#: when the receiver type cannot be resolved.
RESULT_LABELS_BY_NAME: Dict[str, TaintSet] = {
    "enable_telemetry": frozenset({TELOBJ, PROCLOCAL}),
}

#: Model packages (mirrors the tier-1 list): ``self.attr = <teldata>``
#: inside them is a telemetry-purity violation, ``<nondet>`` a
#: cache-key-purity one.
MODEL_PACKAGES: Tuple[str, ...] = (
    "uarch", "functional", "isa", "vp", "reuse", "redundancy")


@dataclass(frozen=True)
class CallSink:
    """A call-argument sink, matched by bare callee name so helper
    indirection and unresolved receivers still hit it."""

    rule: str
    description: str
    trigger: TaintSet
    include_receiver: bool = True
    guardable: bool = False


def _cache_key_sinks() -> Dict[str, CallSink]:
    out = {}
    for name in ("canonical_digest", "config_digest", "canonical_json",
                 "span_id", "sweep_digest", "cache_key", "capture",
                 "serialize"):
        out[name] = CallSink(
            RULE_CACHE_KEY,
            "a cache-key/digest/checkpoint input", NONDET)
    return out


def _fork_sinks() -> Dict[str, CallSink]:
    out = {}
    for name in ("imap", "imap_unordered", "map_async", "starmap",
                 "starmap_async", "apply_async", "submit", "Pool",
                 "Process", "ProcessPoolExecutor"):
        out[name] = CallSink(
            RULE_FORK, "worker-process submission",
            frozenset({PROCLOCAL}), include_receiver=False)
    return out


#: The static name-based call sinks; annotations add to these.
CALL_SINKS: Dict[str, CallSink] = {**_cache_key_sinks(), **_fork_sinks()}


@dataclass
class Catalog:
    """The merged (static + annotated) contract catalogue."""

    call_sources: Dict[str, TaintSet] = field(
        default_factory=lambda: dict(CALL_SOURCES))
    call_sinks: Dict[str, CallSink] = field(
        default_factory=lambda: dict(CALL_SINKS))
    #: function qualname -> labels its result is cleansed of
    sanitizers: Dict[str, TaintSet] = field(default_factory=dict)
    #: function qualnames that ARE the sanctioned write path
    trusted_writers: Set[str] = field(default_factory=set)
    #: class qualnames whose instances satisfy lock-discipline
    guard_classes: Set[str] = field(default_factory=set)
    #: functions whose result must stay free of NONDET labels
    pure_names: FrozenSet[str] = frozenset(
        {"canonical_digest", "config_digest", "span_id", "sweep_digest",
         "cache_key"})

    def source_labels(self, origin: str) -> TaintSet:
        """Labels of an external call result, or the empty set."""
        if origin in CALL_SOURCE_EXCEPTIONS:
            return frozenset()
        labels = self.call_sources.get(origin)
        if labels is not None:
            return labels
        for prefix, plabels in CALL_PREFIX_SOURCES:
            if origin.startswith(prefix):
                return plabels
        return frozenset()


def build_catalog(project: Project) -> Tuple[Catalog, List[Finding]]:
    """Merge the ``# repro-flow:`` role annotations of *project* into
    the static catalogue; malformed roles become findings."""
    catalog = Catalog()
    findings: List[Finding] = []

    def bad(relpath: str, line: int, message: str) -> None:
        findings.append(Finding(relpath, line, "bad-annotation",
                                message, Severity.ERROR))

    for relpath, errors in sorted(project.annotation_errors.items()):
        for line, message in errors:
            bad(relpath, line, message)

    for qual in sorted(project.functions):
        fn = project.functions[qual]
        ann = fn.annotation
        if ann is None:
            continue
        if ann.role == "sanitizer":
            labels: Set[str] = set()
            for arg in ann.args:
                if arg == "*":
                    labels |= ALL_LABELS
                elif arg in ALL_LABELS:
                    labels.add(arg)
                else:
                    bad(fn.module.relpath, ann.line,
                        f"sanitizer names unknown label [{arg}]; "
                        f"known: {', '.join(sorted(ALL_LABELS))}")
            if labels:
                catalog.sanitizers[qual] = frozenset(labels)
        elif ann.role == "trusted-write":
            catalog.trusted_writers.add(qual)
        elif ann.role == "guard":
            bad(fn.module.relpath, ann.line,
                "guard annotates a class, not a function")
        elif ann.role == "sink":
            for rule in ann.args:
                trigger = RULE_TRIGGERS.get(rule)
                if trigger is None:
                    bad(fn.module.relpath, ann.line,
                        f"sink names unknown rule [{rule}]; known: "
                        f"{', '.join(sorted(RULE_TRIGGERS))}")
                    continue
                existing = catalog.call_sinks.get(fn.name)
                if existing is None:
                    catalog.call_sinks[fn.name] = CallSink(
                        rule, f"a declared {rule} sink ({fn.name})",
                        trigger)
                elif existing.rule != rule:
                    bad(fn.module.relpath, ann.line,
                        f"sink [{rule}] conflicts with the existing "
                        f"[{existing.rule}] sink on {fn.name}")

    for cqual in sorted(project.classes):
        info = project.classes[cqual]
        ann = info.annotation
        if info.name == "FileLock":
            catalog.guard_classes.add(cqual)
        if ann is None:
            continue
        if ann.role == "guard":
            catalog.guard_classes.add(cqual)
        else:
            bad(info.module.relpath, ann.line,
                f"{ann.role} annotates a function, not a class")
    return catalog, findings
