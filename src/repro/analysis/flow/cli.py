"""``repro-flow`` — the interprocedural analysis tier as a command.

Exit codes match ``repro-lint``: 0 when no unwaived error-severity
findings remain, 1 otherwise, 2 for usage errors.  ``--intra-only``
disables call-summary propagation — the mode the fixture tests use to
prove each rule's findings genuinely need the interprocedural step.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..reporters import render_json, render_sarif, render_text
from .callgraph import build_callgraph, render_callgraph
from .project import Project
from .rules import FlowRule, default_flow_rules, FlowAnalyzer

TOOL = "repro-flow"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=TOOL,
        description=("Interprocedural taint and concurrency-discipline "
                     "analysis for the determinism contracts (see "
                     "docs/static-analysis.md, 'Flow analysis')"))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="RULE[,RULE...]",
                        help="run only the named flow rules")
    parser.add_argument("--show-waived", action="store_true",
                        help="include waived findings in text output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the flow rule catalogue and exit")
    parser.add_argument("--intra-only", action="store_true",
                        help="disable interprocedural summaries "
                             "(diagnostic: what a per-function pass "
                             "would still catch)")
    parser.add_argument("--callgraph", action="store_true",
                        help="dump the resolved call graph instead of "
                             "analyzing")
    return parser


def list_rules(rules: List[FlowRule]) -> str:
    width = max(len(rule.id) for rule in rules)
    lines = [f"{rule.id:<{width}}  {rule.severity.value:<7}  "
             f"{rule.description}"
             for rule in sorted(rules, key=lambda rule: rule.id)]
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = default_flow_rules()

    if args.list_rules:
        sys.stdout.write(list_rules(rules))
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
        known = {rule.id for rule in rules}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)}; "
                         f"available: {', '.join(sorted(known))}")

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    if args.callgraph:
        project = Project.load(paths)
        for line in render_callgraph(build_callgraph(project)):
            sys.stdout.write(line + "\n")
        return 0

    analyzer = FlowAnalyzer(rules,
                            interprocedural=not args.intra_only)
    report = analyzer.run(paths, select=select)
    if args.format == "json":
        sys.stdout.write(render_json(report, tool=TOOL))
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(
            report, tool=TOOL,
            rules=[(r.id, r.description) for r in rules]))
    else:
        sys.stdout.write(render_text(report,
                                     show_waived=args.show_waived))
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
