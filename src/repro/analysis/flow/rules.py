"""The flow rule catalogue and the tier-2 analyzer driver.

Flow rules differ from the per-file tier's ``Rule`` classes: they are
not independent visitors but *views* over one shared engine run — the
engine computes every taint fact once, and each rule id selects the
findings whose contract it names.  ``FlowAnalyzer`` mirrors the tier-1
``Analyzer`` surface (``run(paths, select) -> Report``) so the CLIs
and reporters are interchangeable between the tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core import Finding, Report, Severity
from . import catalog as cat
from .catalog import build_catalog
from .engine import Engine
from .project import Project


@dataclass(frozen=True)
class FlowRule:
    """Catalogue metadata for one flow rule (the engine does the work)."""

    id: str
    description: str
    severity: Severity = Severity.ERROR


def default_flow_rules() -> List[FlowRule]:
    return [
        FlowRule(
            cat.RULE_CACHE_KEY,
            "nondeterministic values (wallclock/env/rusage/random/"
            "hash()/host identity) must not reach cache keys, "
            "canonical digests, golden-stats counters or checkpoint "
            "payloads unless sanitized"),
        FlowRule(
            cat.RULE_LOCK,
            "writes reaching shared-store paths must go through "
            "atomic_write_text/bytes or append_line, or run under "
            "FileLock — checked through helper indirection"),
        FlowRule(
            cat.RULE_FORK,
            "objects capturing locks, open file handles or live "
            "telemetry sinks must not flow into worker-process "
            "submission (run_many/Pool)"),
        FlowRule(
            cat.RULE_TELEMETRY,
            "data flows into telemetry sinks/spans/progress, never "
            "back: no telemetry-derived value may be stored into "
            "simulator state or stats"),
    ]


class FlowAnalyzer:
    """Loads a project, runs the engine, applies flow-tag waivers."""

    def __init__(self, rules: Optional[Sequence[FlowRule]] = None,
                 interprocedural: bool = True) -> None:
        self.rules: List[FlowRule] = list(
            rules if rules is not None else default_flow_rules())
        self.interprocedural = interprocedural

    def run(self, paths: Sequence[Path],
            select: Optional[Sequence[str]] = None) -> Report:
        selected = [rule for rule in self.rules
                    if select is None or rule.id in select]
        selected_ids = {rule.id for rule in selected}

        project = Project.load(paths)
        catalog, annotation_findings = build_catalog(project)
        engine = Engine(project, catalog, self.interprocedural)
        engine.solve()

        raw: List[Finding] = [
            finding for finding in engine.report()
            if finding.rule in selected_ids]
        raw.extend(annotation_findings)
        for relpath, line, message in project.syntax_errors:
            raw.append(Finding(relpath, line, "syntax-error", message))

        findings = self._apply_waivers(project, raw)
        unique = sorted(set(findings), key=Finding.sort_key)
        return Report(unique,
                      len(project.modules) + len(project.syntax_errors),
                      [rule.id for rule in selected])

    def _apply_waivers(self, project: Project,
                       raw: Sequence[Finding]) -> List[Finding]:
        """Tier-1 waiver semantics under the ``repro-flow`` tag: apply
        per-line/per-file waivers, then report waiver hygiene."""
        by_file: Dict[str, List[Finding]] = {}
        out: List[Finding] = []
        for finding in raw:
            by_file.setdefault(finding.path, []).append(finding)
        for relpath, found in by_file.items():
            waivers = project.flow_waivers.get(relpath)
            if waivers is None:
                out.extend(found)
                continue
            for finding in found:
                reason = waivers.lookup(finding.line, finding.rule)
                if reason is not None:
                    out.append(Finding(
                        finding.path, finding.line, finding.rule,
                        finding.message, finding.severity,
                        waived=True, waive_reason=reason))
                else:
                    out.append(finding)
        for relpath in sorted(project.flow_waivers):
            waivers = project.flow_waivers[relpath]
            for line, message in waivers.errors:
                out.append(Finding(relpath, line, "bad-waiver", message))
            for line, rule_id in waivers.unused():
                out.append(Finding(
                    relpath, line, "unused-waiver",
                    f"waiver for [{rule_id}] matched no finding",
                    Severity.WARNING))
        return out
