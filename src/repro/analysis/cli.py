"""``repro-lint`` — the static-analysis gate as a console command.

Exit codes: 0 when no unwaived error-severity findings remain, 1
otherwise, 2 for usage errors.  CI runs ``repro-lint src/`` as a
blocking job; the pre-commit hook runs the same command locally.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import Analyzer, Rule
from .reporters import render_json, render_text
from .rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=("Determinism & invariant static analysis for the "
                     "repro codebase (rule catalogue: "
                     "docs/static-analysis.md)"))
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="RULE[,RULE...]",
                        help="run only the named rules")
    parser.add_argument("--show-waived", action="store_true",
                        help="include waived findings in text output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def list_rules(rules: List[Rule]) -> str:
    width = max(len(rule.id) for rule in rules)
    lines = [f"{rule.id:<{width}}  {rule.severity.value:<7}  "
             f"{rule.description}"
             for rule in sorted(rules, key=lambda rule: rule.id)]
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = default_rules()

    if args.list_rules:
        sys.stdout.write(list_rules(rules))
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
        known = {rule.id for rule in rules}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)} "
                         f"(see --list-rules)")

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    report = Analyzer(rules).run(paths, select=select)
    if args.format == "json":
        sys.stdout.write(render_json(report))
    else:
        sys.stdout.write(render_text(report,
                                     show_waived=args.show_waived))
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
