"""The rule catalogue: every determinism/invariant contract as a rule.

Each rule encodes one convention earlier PRs established by review
(docs/static-analysis.md is the prose catalogue).  Rules are AST-based
and deliberately *syntactic*: they flag the pattern, and a human either
fixes the code or records an explicit ``# repro-lint: waive[rule]``
with a justification.  False-negative-free soundness is not the goal —
making silent convention drift loud is.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .core import Finding, ModuleInfo, Rule, Severity
from .tables import CrossTableRule

#: Packages holding the simulation model proper: anything here runs
#: inside a simulated machine and must be bit-deterministic.
DETERMINISM_PACKAGES = ("uarch", "functional", "isa", "vp", "reuse",
                        "redundancy")

#: The determinism packages plus workload generators (which may use
#: randomness, but only explicitly seeded ``random.Random(seed)``).
SEEDED_RANDOM_PACKAGES = DETERMINISM_PACKAGES + ("workloads",)


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every import in *tree*.

    ``import json`` maps ``json -> json``; ``from json import dumps as
    d`` maps ``d -> json.dumps``.  Function-local imports are included:
    the map is a name-resolution aid, not a scope model.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mapping[local] = alias.name if alias.asname \
                    else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve(node: ast.expr, imports: Dict[str, str]) -> Optional[str]:
    """The fully-qualified dotted origin of a call target, if known."""
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = imports.get(head, head)
    return f"{origin}.{rest}" if rest else origin


class NoWallclockRule(Rule):
    """The simulated machine must not observe host time.

    Importing ``time`` or ``datetime`` anywhere in the model packages is
    a violation: simulated time is ``core.cycle``, and wallclock
    observations (profiling, manifests) belong in ``metrics``/
    ``telemetry``/``experiments`` where results never depend on them.
    """

    id = "no-wallclock"
    description = ("model packages (uarch/functional/isa/vp/reuse/"
                   "redundancy) must not import time or datetime")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*DETERMINISM_PACKAGES):
            return
        for node in ast.walk(module.tree):
            names: List[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0]
                         for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module:
                names = [node.module.split(".")[0]]
            for name in names:
                if name in ("time", "datetime"):
                    yield self.finding(
                        module, node,
                        f"import of {name!r} in a model package: "
                        "simulation results must not depend on host "
                        "time")


#: Module basenames (under ``repro/telemetry/``) whose *durations* are
#: part of the observability contract: span widths and heartbeat ages
#: must come from monotonic clocks only, never wallclock.
MONOTONIC_TRACING_MODULES = ("spans.py", "progress.py")

#: ``time.`` functions that observe wallclock or convert to/from it.
_WALLCLOCK_TIME_FNS = frozenset((
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.mktime", "time.strftime", "time.strptime", "time.ctime",
    "time.asctime",
))


class MonotonicTimeRule(Rule):
    """Span/progress timing must be monotonic.

    The tracing modules (``repro/telemetry/spans.py`` and
    ``progress.py``) stamp durations and heartbeat ages; a wallclock
    read there would make span widths jump on NTP steps and tie the
    byte-stable identity surface to the host clock.  ``time.monotonic``
    / ``time.perf_counter`` (and ``time.sleep``) are allowed;
    ``time.time`` and friends, and any ``datetime`` import, are not.
    """

    id = "monotonic-tracing"
    description = ("telemetry tracing modules (spans.py/progress.py) "
                   "may only read monotonic clocks — no time.time or "
                   "datetime")

    def _applies(self, module: ModuleInfo) -> bool:
        parts = module.relpath.split("/")
        return module.in_package("telemetry") \
            and parts[-1] in MONOTONIC_TRACING_MODULES

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self._applies(module):
            return
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                names: List[str] = []
                if isinstance(node, ast.Import):
                    names = [alias.name.split(".")[0]
                             for alias in node.names]
                elif node.level == 0 and node.module:
                    names = [node.module.split(".")[0]]
                for name in names:
                    if name == "datetime":
                        yield self.finding(
                            module, node,
                            "datetime import in a tracing module: span "
                            "and heartbeat timing must be monotonic")
            elif isinstance(node, ast.Call):
                origin = _resolve(node.func, imports)
                if origin in _WALLCLOCK_TIME_FNS:
                    yield self.finding(
                        module, node,
                        f"{origin}() in a tracing module: use "
                        "time.monotonic/perf_counter so durations "
                        "never depend on the host wallclock")


class NoUnseededRandomRule(Rule):
    """Randomness in model/workload code must be explicitly seeded.

    The module-level ``random.*`` functions share one ambient generator
    seeded from the OS; ``random.Random()`` without arguments does the
    same.  Both make a run irreproducible.  ``random.Random(seed)`` is
    the sanctioned form.  ``os.urandom``/``uuid.uuid4``/``secrets`` are
    flagged outright.
    """

    id = "no-unseeded-random"
    description = ("model/workload packages may only use seeded "
                   "random.Random(seed); no ambient randomness")

    _BANNED = ("os.urandom", "uuid.uuid4", "uuid.uuid1")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package(*SEEDED_RANDOM_PACKAGES):
            return
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module == "random":
                wanted = [a.name for a in node.names if a.name != "Random"]
                if wanted:
                    yield self.finding(
                        module, node,
                        f"from random import {', '.join(wanted)}: "
                        "module-level random functions use the ambient "
                        "(unseeded) generator")
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module == "secrets":
                yield self.finding(module, node,
                                   "secrets is never deterministic")
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve(node.func, imports)
            if origin is None:
                continue
            if origin in self._BANNED or origin.startswith("secrets."):
                yield self.finding(module, node,
                                   f"{origin} is never deterministic")
            elif origin == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module, node,
                        "random.Random() without a seed is OS-seeded; "
                        "pass an explicit seed")
            elif origin.startswith("random."):
                yield self.finding(
                    module, node,
                    f"{origin}() uses the ambient (unseeded) generator; "
                    "use an explicit random.Random(seed) instance")


class SortedSerializationRule(Rule):
    """Serialized bytes must not depend on dict/set iteration order.

    Two checks:

    * every ``json.dump``/``json.dumps`` call must pass
      ``sort_keys=True`` (the cache/manifest byte-identity contract);
    * a serialization call (``json.dump*``, ``writerow``/``writerows``)
      must not be fed directly from ``.keys()``/``.values()``/
      ``.items()`` or a ``set(...)`` unless wrapped in ``sorted(...)``.
    """

    id = "sorted-serialization"
    description = ("json.dump(s) must pass sort_keys=True, and "
                   "serialization must not consume unordered iteration "
                   "without sorted(...)")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve(node.func, imports)
            is_json_dump = origin in ("json.dump", "json.dumps")
            is_row_write = (isinstance(node.func, ast.Attribute)
                            and node.func.attr in ("writerow",
                                                   "writerows"))
            if not is_json_dump and not is_row_write:
                continue
            if is_json_dump and not _has_true_kwarg(node, "sort_keys"):
                yield self.finding(
                    module, node,
                    f"{origin} without sort_keys=True: serialized "
                    "bytes would depend on dict insertion order")
            for arg in list(node.args) + [kw.value
                                          for kw in node.keywords]:
                for unordered in _unordered_feeds(arg):
                    yield self.finding(
                        module, node,
                        f"serialization fed from {unordered} without "
                        "sorted(...): iteration order is not part of "
                        "the byte-identity contract")


def _has_true_kwarg(call: ast.Call, name: str) -> bool:
    for keyword in call.keywords:
        if keyword.arg == name:
            return isinstance(keyword.value, ast.Constant) \
                and keyword.value.value is True
        if keyword.arg is None:  # **kwargs: give it the benefit of doubt
            return True
    return False


def _unordered_feeds(node: ast.AST,
                     inside_sorted: bool = False) -> Iterator[str]:
    """Unordered-iteration expressions inside *node* not under sorted()."""
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id == "sorted":
            inside_sorted = True
        elif not inside_sorted:
            if isinstance(callee, ast.Attribute) \
                    and callee.attr in ("keys", "values", "items") \
                    and not node.args:
                yield f".{callee.attr}()"
            elif isinstance(callee, ast.Name) and callee.id in ("set",
                                                                "frozenset"):
                yield f"{callee.id}(...)"
    elif isinstance(node, ast.Set) and not inside_sorted:
        yield "a set literal"
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.expr, ast.keyword)):
            yield from _unordered_feeds(child, inside_sorted)


class NoBuiltinHashRule(Rule):
    """``hash()`` varies per process (PYTHONHASHSEED) — never derive a
    cache key, file name or any persisted value from it; use hashlib."""

    id = "no-builtin-hash"
    description = ("builtin hash() is salted per process; cache keys "
                   "and persisted values must use hashlib")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "hash" \
                    and imports.get("hash", "hash") == "hash":
                yield self.finding(
                    module, node,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); use hashlib for any value that "
                    "crosses a process boundary")


class AtomicWriteRule(Rule):
    """Shared on-disk stores go through the one audited atomic-write
    path (:func:`repro.util.locking.atomic_write_bytes`).

    Any direct use of ``os.replace``/``os.rename``/``tempfile.mkstemp``/
    ``tempfile.NamedTemporaryFile`` outside ``repro/util`` is a
    hand-rolled variant of that path: it either duplicates the
    discipline (drift risk) or gets it subtly wrong (readers observing
    partial files, leaked temp files on error).
    """

    id = "atomic-write"
    description = ("tempfile/os.replace outside repro.util: use "
                   "util.locking.atomic_write_text/bytes")

    _BANNED = ("os.replace", "os.rename", "tempfile.mkstemp",
               "tempfile.NamedTemporaryFile", "tempfile.mktemp")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_package("util"):
            return  # the implementation site itself
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve(node.func, imports)
            if origin in self._BANNED:
                yield self.finding(
                    module, node,
                    f"{origin} outside repro.util: shared stores must "
                    "use repro.util.locking.atomic_write_text/bytes "
                    "(one audited tempfile+replace path)")


class TelemetryPurityRule(Rule):
    """Telemetry observes; it never mutates the machine it watches.

    Within ``repro/telemetry``, assignments (plain, augmented or
    annotated, attribute or subscript) whose target chain is rooted at
    a *function parameter* other than ``self``/``cls`` are flagged:
    a sink receiving ``core`` may read anything but write nothing —
    the transparency tests pin SimStats byte-identity with and without
    a sink attached, and this rule keeps new telemetry code inside
    that contract.
    """

    id = "telemetry-purity"
    description = ("telemetry modules must not assign onto objects "
                   "received as parameters (observation-only contract)")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_package("telemetry"):
            return
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            args = func.args
            params = {a.arg for a in (args.posonlyargs + args.args
                                      + args.kwonlyargs)}
            if args.vararg:
                params.add(args.vararg.arg)
            if args.kwarg:
                params.add(args.kwarg.arg)
            params -= {"self", "cls"}
            if not params:
                continue
            yield from self._check_function(module, func, params)

    def _check_function(self, module: ModuleInfo, func: ast.AST,
                        params: "set[str]") -> Iterator[Finding]:
        for node in ast.walk(func):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                base = _assignment_base(target)
                if base is not None and base in params:
                    yield self.finding(
                        module, node,
                        f"assignment onto parameter {base!r}: telemetry "
                        "is observation-only and must never mutate "
                        "core/stat objects")


def _assignment_base(target: ast.expr) -> Optional[str]:
    """The root Name of an attribute/subscript assignment target."""
    saw_chain = False
    while isinstance(target, (ast.Attribute, ast.Subscript)):
        saw_chain = True
        target = target.value
    if saw_chain and isinstance(target, ast.Name):
        return target.id
    return None


class FloatFreeCountersRule(Rule):
    """``SimStats`` counters are exact integers.

    Floats accumulate rounding that can differ across summation orders;
    every derived ratio lives in a ``@property``.  A dataclass field on
    ``SimStats`` annotated ``float`` (or defaulted to a float literal)
    breaks the byte-exact cache/golden contract.
    """

    id = "float-free-counters"
    description = ("SimStats dataclass fields must be int/bool/str "
                   "counters; derived floats belong in properties")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) \
                    or node.name != "SimStats":
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) \
                        or not isinstance(stmt.target, ast.Name):
                    continue
                ann = stmt.annotation
                if isinstance(ann, ast.Name) and ann.id == "float":
                    yield self.finding(
                        module, stmt,
                        f"SimStats.{stmt.target.id} is annotated float: "
                        "counters must stay integral (derived ratios "
                        "are properties)")
                elif isinstance(stmt.value, ast.Constant) \
                        and isinstance(stmt.value.value, float):
                    yield self.finding(
                        module, stmt,
                        f"SimStats.{stmt.target.id} defaults to a float "
                        "literal: counters must stay integral")


class MainGuardRule(Rule):
    """Every CLI module must be import-safe.

    A module that builds an ``argparse.ArgumentParser`` or defines a
    top-level ``main`` is a CLI; importing it (for tests, for the
    console-script shims, for ``--help`` generation in docs) must never
    execute it, so it needs an ``if __name__ == "__main__":`` guard.
    """

    id = "main-guard"
    description = ("modules defining main()/building an ArgumentParser "
                   "need an if __name__ == '__main__' guard")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        is_cli = any(isinstance(node, ast.FunctionDef)
                     and node.name == "main"
                     for node in module.tree.body)
        if not is_cli:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Call) and _resolve(
                        node.func, imports) == "argparse.ArgumentParser":
                    is_cli = True
                    break
        if not is_cli:
            return
        for node in module.tree.body:
            if isinstance(node, ast.If) and _is_main_guard(node.test):
                return
        yield Finding(
            module.relpath, 0, self.id,
            "CLI module (defines main()/builds an ArgumentParser) has "
            "no `if __name__ == \"__main__\":` guard", self.severity)


def _is_main_guard(test: ast.expr) -> bool:
    return (isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == "__main__")


class KernelPurityRule(Rule):
    """The compiled kernel stays mypyc-clean and monkeypatch-free.

    ``repro/uarch/_kernel`` is the set of modules the optional mypyc
    extension compiles to native code; both backends must behave
    byte-identically.  Patterns that compile differently (or not at
    all) under mypyc are banned at lint time so the drift is loud even
    on checkouts without a mypy toolchain:

    * every ``def`` is fully annotated — parameters and return type
      (the strict per-package mypy config enforces the same thing when
      the toolchain is present);
    * no ``**kwargs`` (or bare unannotated ``*args``) on any function:
      kernel calls stay positional/keyword-explicit so the compiler
      emits direct calls on the hot path;
    * no module-level mutable state (list/dict/set literals or
      constructors): a native module's globals are not patchable, so a
      mutable global would behave differently per backend;
    * no dynamic attribute machinery (``getattr``/``setattr``/
      ``delattr``/``vars``/``globals``/``eval``/``exec``): native
      classes have no ``__dict__`` for it to hit.
    """

    id = "kernel-purity"
    description = ("uarch/_kernel modules must be fully annotated, "
                   "**kwargs-free, without module-level mutable state "
                   "or dynamic attribute access (mypyc contract)")

    _DYNAMIC = ("getattr", "setattr", "delattr", "vars", "globals",
                "eval", "exec")
    _MUTABLE_CALLS = ("list", "dict", "set", "bytearray",
                      "collections.defaultdict", "collections.deque",
                      "collections.Counter", "collections.OrderedDict")

    def _in_kernel(self, module: ModuleInfo) -> bool:
        return module.in_package("uarch") \
            and "_kernel" in module.relpath.split("/")

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not self._in_kernel(module):
            return
        imports = _import_map(module.tree)
        yield from self._check_module_state(module, imports)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(module, node)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in self._DYNAMIC \
                    and imports.get(node.func.id,
                                    node.func.id) == node.func.id:
                yield self.finding(
                    module, node,
                    f"{node.func.id}() in the kernel: native classes "
                    "and modules have no __dict__ for dynamic "
                    "attribute access to hit")

    def _check_module_state(self, module: ModuleInfo,
                            imports: Dict[str, str]
                            ) -> Iterator[Finding]:
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            reason = self._mutable_value(value, imports)
            if reason is None:
                continue
            names = ", ".join(filter(None, (_dotted(t) for t in targets)))
            yield self.finding(
                module, stmt,
                f"module-level mutable state ({names or 'assignment'} "
                f"= {reason}) in the kernel: compiled modules are not "
                "monkeypatchable, so shared mutable globals diverge "
                "between backends")

    def _mutable_value(self, value: ast.expr,
                       imports: Dict[str, str]) -> Optional[str]:
        if isinstance(value, (ast.List, ast.ListComp)):
            return "a list"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "a dict"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "a set"
        if isinstance(value, ast.Call):
            origin = _resolve(value.func, imports)
            if origin in self._MUTABLE_CALLS:
                return f"{origin}(...)"
        return None

    def _check_signature(self, module: ModuleInfo,
                         func: ast.AST) -> Iterator[Finding]:
        args = func.args
        if args.kwarg is not None:
            yield self.finding(
                module, func,
                f"{func.name}(**{args.kwarg.arg}) in the kernel: "
                "hot-path signatures must be explicit so the compiler "
                "emits direct calls")
        ordered = args.posonlyargs + args.args
        missing = [a.arg for i, a in enumerate(ordered)
                   if a.annotation is None
                   and not (i == 0 and a.arg in ("self", "cls"))]
        missing += [a.arg for a in args.kwonlyargs if a.annotation is None]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if missing:
            yield self.finding(
                module, func,
                f"{func.name}() has unannotated parameter(s) "
                f"{', '.join(missing)}: kernel defs must be fully "
                "typed for mypyc")
        if func.returns is None:
            yield self.finding(
                module, func,
                f"{func.name}() has no return annotation: kernel defs "
                "must be fully typed for mypyc")


def default_rules() -> List[Rule]:
    """The full shipped rule set, cross-table checker included."""
    return [
        NoWallclockRule(),
        MonotonicTimeRule(),
        NoUnseededRandomRule(),
        SortedSerializationRule(),
        NoBuiltinHashRule(),
        AtomicWriteRule(),
        TelemetryPurityRule(),
        FloatFreeCountersRule(),
        MainGuardRule(),
        KernelPurityRule(),
        CrossTableRule(),
    ]
