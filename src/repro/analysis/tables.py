"""Cross-table exhaustiveness: the ISA's four parallel tables agree.

One opcode touches four places that grew independently:

1. the **opcode table** — ``repro/isa/opcodes.py`` registers it via
   ``_define``/``_alu``/``_mem``/``_branch``;
2. the **assembler decode entry** — ``Assembler._build`` must handle its
   operand :class:`Format`;
3. the **compiled execution semantics** — ``compile_exec`` and
   ``compile_ff`` in ``repro/functional/compiled.py`` must handle its
   ``exec_kind`` (``KIND_ALU`` is the documented fall-through tail);
4. the **functional-unit mapping** — ``FunctionalUnits.__init__`` must
   key its :class:`OpClass` in ``self.pools``.

Drift between them is only caught dynamically today if a workload
happens to execute the missing opcode.  This checker parses all four
files (pure AST, nothing is imported or executed) and proves coverage
for *every* registered opcode — plus the meta-invariant that each
extraction found a plausible table at all, so a refactor that moves a
table can never silently turn the checker into a no-op.

The extraction functions take file paths so the mutation tests can run
them over deliberately broken copies of the sources.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Finding, ProjectRule, Severity

RULE_ID = "cross-table"

#: The four table files, relative to the source root (the directory
#: containing the ``repro`` package).
OPCODES_FILE = "repro/isa/opcodes.py"
INSTRUCTION_FILE = "repro/isa/instruction.py"
ASSEMBLER_FILE = "repro/isa/assembler.py"
COMPILED_FILE = "repro/functional/compiled.py"
FUNCTIONAL_UNITS_FILE = "repro/uarch/functional_units.py"


@dataclass
class OpcodeEntry:
    """What the checker knows about one registered opcode."""

    name: str
    line: int
    fmt: Optional[str] = None  # Format member name
    op_class: Optional[str] = None  # OpClass member name
    flags: Dict[str, bool] = field(default_factory=dict)

    def flag(self, name: str) -> bool:
        return self.flags.get(name, False)

    @property
    def exec_kind(self) -> str:
        """Mirror of ``Instruction._decode_exec_kind`` (same priority)."""
        if self.op_class == "NOP":
            return "KIND_NOP"
        if self.flag("is_branch"):
            return "KIND_BRANCH"
        if self.flag("is_jump"):
            return "KIND_JUMP"
        if self.flag("is_load"):
            return "KIND_LOAD"
        if self.flag("is_store"):
            return "KIND_STORE"
        if self.flag("writes_hi_lo"):
            return "KIND_HILO"
        return "KIND_ALU"


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _member_of(node: ast.expr, enum_name: str) -> Optional[str]:
    """``X`` from an ``<enum_name>.X`` attribute expression."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == enum_name:
        return node.attr
    return None


def _truthy_const(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def parse_opcode_table(path: Path) -> List[OpcodeEntry]:
    """Every opcode registered at module level in ``opcodes.py``.

    Understands the four registration idioms: ``_alu(name, fmt, ...)``,
    ``_branch(name, fmt, ...)``, ``_mem(name, is_load, nbytes, ...)``
    and ``_define(Opcode(name, fmt, op_class, ...))``.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    entries: List[OpcodeEntry] = []
    for node in tree.body:
        if not isinstance(node, ast.Expr) \
                or not isinstance(node.value, ast.Call):
            continue
        call = node.value
        if not isinstance(call.func, ast.Name):
            continue
        helper = call.func.id
        entry: Optional[OpcodeEntry] = None
        if helper == "_alu" and call.args:
            name = _const_str(call.args[0])
            if name:
                entry = OpcodeEntry(name, call.lineno, op_class="INT_ALU")
                if len(call.args) > 1:
                    entry.fmt = _member_of(call.args[1], "Format")
        elif helper == "_branch" and call.args:
            name = _const_str(call.args[0])
            if name:
                entry = OpcodeEntry(name, call.lineno,
                                    op_class="BRANCH",
                                    flags={"is_branch": True})
                if len(call.args) > 1:
                    entry.fmt = _member_of(call.args[1], "Format")
        elif helper == "_mem" and len(call.args) >= 2:
            name = _const_str(call.args[0])
            if name:
                is_load = _truthy_const(call.args[1])
                entry = OpcodeEntry(
                    name, call.lineno, fmt="MEM", op_class="LOAD_STORE",
                    flags={"is_load": is_load, "is_store": not is_load})
        elif helper == "_define" and call.args \
                and isinstance(call.args[0], ast.Call):
            inner = call.args[0]
            if isinstance(inner.func, ast.Name) \
                    and inner.func.id == "Opcode" and inner.args:
                name = _const_str(inner.args[0])
                if name:
                    entry = OpcodeEntry(name, call.lineno)
                    if len(inner.args) > 1:
                        entry.fmt = _member_of(inner.args[1], "Format")
                    if len(inner.args) > 2:
                        entry.op_class = _member_of(inner.args[2],
                                                    "OpClass")
                    for keyword in inner.keywords:
                        if keyword.arg:
                            entry.flags[keyword.arg] = _truthy_const(
                                keyword.value)
        if entry is not None:
            entries.append(entry)
    return entries


def parse_op_class_members(path: Path) -> Set[str]:
    """Member names of the ``OpClass`` enum in ``opcodes.py``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    members: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "OpClass":
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) \
                                and not target.id.startswith("_"):
                            members.add(target.id)
    return members


def parse_instruction_kinds(path: Path) -> Set[str]:
    """``KIND_*`` codes defined at module level in ``instruction.py``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    kinds: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id.startswith("KIND_"):
                    kinds.add(target.id)
    return kinds


def parse_assembler_formats(path: Path) -> Set[str]:
    """Format members ``Assembler._build`` dispatches on.

    ``Format.NONE`` is the fall-through tail (the final ``return``), so
    only explicit ``fmt == Format.X`` comparisons count.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    handled: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_build":
            for inner in ast.walk(node):
                if isinstance(inner, ast.Compare):
                    for comparator in inner.comparators:
                        member = _member_of(comparator, "Format")
                        if member is not None:
                            handled.add(member)
    return handled


def parse_compiled_kinds(path: Path) -> Dict[str, Set[str]]:
    """``{function_name: {KIND_* it handles}}`` for ``compiled.py``.

    ``KIND_ALU`` is each function's documented fall-through tail and is
    treated as always handled.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    handled: Dict[str, Set[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef) \
                or node.name not in ("compile_exec", "compile_ff"):
            continue
        kinds: Set[str] = {"KIND_ALU"}
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Compare):
                continue
            for operand in [inner.left] + list(inner.comparators):
                if isinstance(operand, ast.Name) \
                        and operand.id.startswith("KIND_"):
                    kinds.add(operand.id)
        handled[node.name] = kinds
    return handled


def parse_fu_pools(path: Path) -> Set[str]:
    """OpClass members keyed in ``FunctionalUnits.__init__``'s
    ``self.pools`` dict literal."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    members: Set[str] = set()
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Dict):
            continue
        for target in targets:
            if isinstance(target, ast.Attribute) \
                    and target.attr == "pools" \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                for key in value.keys:
                    if key is None:
                        continue
                    member = _member_of(key, "OpClass")
                    if member is not None:
                        members.add(member)
    return members


def check_tables(root: Path) -> List[Finding]:
    """Prove every opcode covered across all four tables under *root*.

    *root* is the directory containing the ``repro`` package (``src/``
    in this repository, a fixture tree in the mutation tests).  Returns
    sorted error findings; an empty list is the proof.
    """
    root = Path(root)
    findings: List[Finding] = []

    paths = {
        "opcodes": root / OPCODES_FILE,
        "instruction": root / INSTRUCTION_FILE,
        "assembler": root / ASSEMBLER_FILE,
        "compiled": root / COMPILED_FILE,
        "functional_units": root / FUNCTIONAL_UNITS_FILE,
    }
    missing = [str(p.relative_to(root)) for p in paths.values()
               if not p.is_file()]
    if missing:
        return [Finding("repro", 0, RULE_ID,
                        f"table files missing: {', '.join(missing)}")]

    opcodes = parse_opcode_table(paths["opcodes"])
    op_classes = parse_op_class_members(paths["opcodes"])
    kinds = parse_instruction_kinds(paths["instruction"])
    formats = parse_assembler_formats(paths["assembler"])
    compiled = parse_compiled_kinds(paths["compiled"])
    pools = parse_fu_pools(paths["functional_units"])

    # Meta-invariant: every extraction must have found its table.  A
    # refactor that moves/renames a table shows up here instead of
    # silently passing an empty coverage check.
    checks: List[Tuple[bool, str, str]] = [
        (not opcodes, OPCODES_FILE,
         "no opcode registrations found (extraction broken?)"),
        (not op_classes, OPCODES_FILE, "OpClass enum not found"),
        (not kinds, INSTRUCTION_FILE, "no KIND_* codes found"),
        (not formats, ASSEMBLER_FILE,
         "Assembler._build handles no Format members"),
        ("compile_exec" not in compiled, COMPILED_FILE,
         "compile_exec not found"),
        ("compile_ff" not in compiled, COMPILED_FILE,
         "compile_ff not found"),
        (not pools, FUNCTIONAL_UNITS_FILE,
         "FunctionalUnits.pools dict not found"),
    ]
    for failed, rel, message in checks:
        if failed:
            findings.append(Finding(rel, 0, RULE_ID, message))
    if findings:
        return sorted(findings, key=Finding.sort_key)

    seen: Set[str] = set()
    for entry in opcodes:
        if entry.name in seen:
            findings.append(Finding(
                OPCODES_FILE, entry.line, RULE_ID,
                f"opcode {entry.name!r} registered twice"))
            continue
        seen.add(entry.name)

        # Table 2: assembler decode entry for the operand format.
        if entry.fmt is None:
            findings.append(Finding(
                OPCODES_FILE, entry.line, RULE_ID,
                f"opcode {entry.name!r}: could not determine its "
                "Format statically"))
        elif entry.fmt != "NONE" and entry.fmt not in formats:
            findings.append(Finding(
                ASSEMBLER_FILE, 0, RULE_ID,
                f"opcode {entry.name!r} (Format.{entry.fmt}) has no "
                "decode entry in Assembler._build"))

        # Table 3: compiled execution semantics for the exec kind.
        kind = entry.exec_kind
        if kind not in kinds:
            findings.append(Finding(
                INSTRUCTION_FILE, 0, RULE_ID,
                f"opcode {entry.name!r} maps to {kind}, which "
                "instruction.py does not define"))
        for function in ("compile_exec", "compile_ff"):
            if kind not in compiled[function]:
                findings.append(Finding(
                    COMPILED_FILE, 0, RULE_ID,
                    f"opcode {entry.name!r} ({kind}) has no handler "
                    f"in {function}"))

        # Table 4: a functional-unit pool for the op class.
        if entry.op_class is None:
            findings.append(Finding(
                OPCODES_FILE, entry.line, RULE_ID,
                f"opcode {entry.name!r}: could not determine its "
                "OpClass statically"))
        elif entry.op_class not in pools:
            findings.append(Finding(
                FUNCTIONAL_UNITS_FILE, 0, RULE_ID,
                f"opcode {entry.name!r} (OpClass.{entry.op_class}) has "
                "no FunctionalUnits pool mapping"))
        if entry.op_class is not None \
                and entry.op_class not in op_classes:
            findings.append(Finding(
                OPCODES_FILE, entry.line, RULE_ID,
                f"opcode {entry.name!r} names unknown "
                f"OpClass.{entry.op_class}"))

    # Every OpClass member needs a pool even if no opcode uses it yet
    # (an opcode added later would inherit the gap).
    for member in sorted(op_classes - pools):
        findings.append(Finding(
            FUNCTIONAL_UNITS_FILE, 0, RULE_ID,
            f"OpClass.{member} has no FunctionalUnits pool mapping"))

    # Every defined KIND_* (bar the KIND_ALU tail) must have handlers —
    # catches a deleted dispatch arm even before an opcode maps to it.
    for function, handled in sorted(compiled.items()):
        for kind in sorted(kinds - handled):
            findings.append(Finding(
                COMPILED_FILE, 0, RULE_ID,
                f"{kind} is defined but {function} has no handler "
                "for it"))

    return sorted(findings, key=Finding.sort_key)


class CrossTableRule(ProjectRule):
    """Framework wrapper running :func:`check_tables` once per root."""

    id = RULE_ID
    severity = Severity.ERROR
    description = ("every opcode needs an assembler decode entry, "
                   "compiled exec/ff semantics and a functional-unit "
                   "pool mapping")

    def check_project(self, root: Path) -> Iterable[Finding]:
        return check_tables(root)
