"""Figure 7: net speedups for VP_LVP (four configurations).

The paper warns VP_LVP results should not be compared against the IR bars
(one instance per instruction vs four), so the IR column is omitted.
Expectation: SB configurations degrade below 1.0 (spurious squashes are
not offset by the lower prediction accuracy), and NSB beats SB — the
opposite of VP_Magic's ordering.
"""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..uarch.config import PredictorKind
from .runner import ExperimentRunner, Pair
from . import figure6


def pairs() -> List[Pair]:
    return (figure6.pairs_for(0, PredictorKind.LAST_VALUE, include_ir=False)
            + figure6.pairs_for(1, PredictorKind.LAST_VALUE,
                                include_ir=False))


def run(runner: ExperimentRunner, verify_latency: int = 0) -> "Report":
    return figure6.run(runner, verify_latency,
                       kind=PredictorKind.LAST_VALUE, include_ir=False)


def run_both(runner: ExperimentRunner) -> List["Report"]:
    runner.prefetch(pairs())
    return [run(runner, 0), run(runner, 1)]
