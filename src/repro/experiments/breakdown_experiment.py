"""Where does each technique capture redundancy?  (per-class breakdown)

An analysis beyond the paper's aggregate Table 3: committed instructions
are split into classes (ALU / load / store / branch / jump / mult-div)
and each class's reuse and prediction rates are reported per workload.
The paper's qualitative claims become visible mechanically: branches are
IR-only territory (prediction of branch outcomes is the *branch
predictor's* job), stores reuse only their address computation, and
long-latency mult/div hits are where IR's execution-skipping pays most.
"""

from __future__ import annotations

from typing import Iterable, List

from ..metrics.breakdown import CLASSES, ClassBreakdown
from ..metrics.report import Report
from ..uarch.core import OutOfOrderCore
from ..workloads import all_workloads, get_workload
from .configs import IR_EARLY, vp_magic
from .runner import ExperimentRunner


def _measure(runner: ExperimentRunner, workload: str, config):
    """A breakdown needs the commit hook, so it bypasses the JSON cache."""
    spec = get_workload(workload)
    core = OutOfOrderCore(config, spec.program())
    breakdown = ClassBreakdown(core)
    core.skip(spec.skip_instructions)
    core.run(max_instructions=runner.max_instructions,
             max_cycles=runner.max_cycles)
    return breakdown


def pairs() -> list:
    """Breakdowns need the commit hook and bypass the JSON cache, so
    there is nothing to prefetch (kept for CLI sweep uniformity)."""
    return []


def run(runner: ExperimentRunner,
        workloads: Iterable[str] | None = None) -> Report:
    names = list(workloads) if workloads else list(all_workloads())
    report = Report(
        title="Per-class capture: IR reuse% / VP_Magic correct-pred% by "
              "instruction class",
        headers=["bench"] + [f"{cls} IR/VP" for cls in CLASSES
                             if cls != "jump"],
    )
    for name in names:
        if not runner.quiet:
            print(f"[breakdown] {name}", flush=True)
        reuse = _measure(runner, name, IR_EARLY)
        predict = _measure(runner, name, vp_magic())
        cells: List[str] = []
        for cls in CLASSES:
            if cls == "jump":
                continue
            ir_counts = reuse.counts[cls]
            vp_counts = predict.counts[cls]
            ir_rate = 100.0 * ir_counts.rate(ir_counts.reused)
            vp_rate = 100.0 * vp_counts.rate(vp_counts.predicted_correct)
            cells.append(f"{ir_rate:.0f}/{vp_rate:.0f}")
        report.add_row(name, *cells)
    report.add_note("branches: IR-only (VP does not predict branch "
                    "outcomes); stores: address reuse only, so 0/0 here")
    return report
