"""Figure 9: input readiness of repeated instructions.

Each repeated instruction falls into one of three buckets: producers were
themselves reused (inputs ready), unreused producers at distance >= 50
(ready), or unreused producers within 50 instructions (not ready).
Paper: most repeated instructions have reused producers; <10% not ready.
"""

from __future__ import annotations

from ..metrics.report import Report
from ..workloads import all_workloads
from .runner import ExperimentRunner


def pairs() -> list:
    """Limit studies use only the functional simulator: no timing pairs
    to prefetch (kept for CLI sweep uniformity)."""
    return []


def run(runner: ExperimentRunner, producer_distance: int = 50) -> Report:
    report = Report(
        title=f"Figure 9: readiness of repeated instructions' inputs "
              f"(producer distance threshold {producer_distance})",
        headers=["bench", "producers reused %", "prod-dist >= 50 %",
                 "prod-dist < 50 (not ready) %"],
    )
    for name in all_workloads():
        analyzer = runner.run_redundancy(
            name, producer_distance=producer_distance)
        pct = analyzer.counts.readiness_percentages()
        report.add_row(name, pct["producers_reused"], pct["producers_far"],
                       pct["producers_near"])
    report.add_note("paper: producers mostly reused; <10% not ready. Our "
                    "analogs have ~3x denser loop bodies than compiled "
                    "SPEC, so the 50-instruction horizon is stricter here")
    return report
