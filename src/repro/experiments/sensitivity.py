"""Methodology check: are the reproduced shapes stable across windows?

DESIGN.md section 2 argues that the paper's *relative* effects survive
reducing the simulation window from 200M cycles to tens of thousands of
instructions because the analog workloads are stationary loops.  This
experiment tests that claim directly: the headline speedups (VP_Magic
ME-SB and IR) are measured at several window sizes and reported side by
side; a reproduction claim is only as good as its insensitivity to this
parameter.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..metrics.report import Report
from ..metrics.stats import speedup
from ..workloads import all_workloads
from .configs import BASE, IR_EARLY, vp_magic
from .runner import ExperimentRunner

DEFAULT_WINDOWS = (5_000, 10_000, 20_000)


def pairs() -> list:
    """Window-sensitivity pairs live under per-window cache keys, so the
    sized runners inside :func:`run` prefetch them; nothing global."""
    return []


def run(runner: ExperimentRunner,
        windows: Iterable[int] = DEFAULT_WINDOWS,
        workloads: Iterable[str] | None = None) -> Report:
    windows = tuple(windows)
    names = list(workloads) if workloads else list(all_workloads())
    report = Report(
        title="Window sensitivity: VP_Magic(ME-SB) and IR speedups at "
              "several instruction budgets",
        headers=["bench"]
                + [f"VP @{w // 1000}k" for w in windows]
                + [f"IR @{w // 1000}k" for w in windows]
                + ["max drift"],
    )
    sized_runners = {}
    for window in windows:
        sized = ExperimentRunner(
            max_instructions=window,
            max_cycles=runner.max_cycles,
            cache_dir=runner.cache_dir,
            quiet=runner.quiet,
            jobs=runner.jobs,
            mp_start_method=runner.mp_start_method)
        sized.prefetch([(name, config) for name in names
                        for config in (BASE, vp_magic(), IR_EARLY)])
        sized_runners[window] = sized
    for name in names:
        vp_cells: List[float] = []
        ir_cells: List[float] = []
        for window in windows:
            sized = sized_runners[window]
            base = sized.run(name, BASE)
            vp_cells.append(speedup(sized.run(name, vp_magic()), base))
            ir_cells.append(speedup(sized.run(name, IR_EARLY), base))
        drift = max(
            max(vp_cells) - min(vp_cells),
            max(ir_cells) - min(ir_cells))
        report.add_row(name, *vp_cells, *ir_cells, drift)
    report.add_note("small drift (< ~0.1) across windows supports the "
                    "reduced-window methodology; large drift flags a "
                    "workload whose phases exceed the window")
    return report
