"""Table 2: benchmark programs, instruction counts, prediction rates."""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..workloads import all_workloads
from .configs import BASE
from .runner import ExperimentRunner, Pair


def pairs() -> List[Pair]:
    return [(name, BASE) for name in all_workloads()]


def run(runner: ExperimentRunner) -> Report:
    runner.prefetch(pairs())
    report = Report(
        title="Table 2: benchmarks, committed instructions, branch and "
              "return prediction rates",
        headers=["bench", "insts (paper, mil.)", "insts (sim)",
                 "br. pred % (paper)", "br. pred % (sim)",
                 "ret. pred % (paper)", "ret. pred % (sim)"],
    )
    for name, spec in all_workloads().items():
        stats = runner.run(name, BASE)
        report.add_row(
            name,
            spec.paper.inst_count_millions,
            stats.committed,
            spec.paper.branch_pred_rate,
            100.0 * stats.branch_prediction_rate,
            spec.paper.return_pred_rate,
            100.0 * stats.return_prediction_rate,
        )
    report.add_note("paper counts are over 200M-cycle SimpleScalar runs; "
                    "simulated counts use this harness's reduced window")
    return report
