"""Table 3: IR reuse rates and VP prediction/misprediction rates."""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..workloads import all_workloads
from .configs import IR_EARLY, vp_lvp, vp_magic
from .runner import ExperimentRunner, Pair


def pairs() -> List[Pair]:
    return [(name, config) for name in all_workloads()
            for config in (IR_EARLY, vp_magic(), vp_lvp())]


def run(runner: ExperimentRunner) -> Report:
    runner.prefetch(pairs())
    report = Report(
        title="Table 3: percentage IR and VP rates "
              "(result % over dynamic insts, address % over memory ops)",
        headers=["bench",
                 "IR res (paper)", "IR res", "IR addr (paper)", "IR addr",
                 "VPM res (paper)", "VPM res", "VPM res mis",
                 "VPM addr (paper)", "VPM addr",
                 "LVP res (paper)", "LVP res", "LVP res mis"],
    )
    for name, spec in all_workloads().items():
        ir = runner.run(name, IR_EARLY)
        magic = runner.run(name, vp_magic())
        lvp = runner.run(name, vp_lvp())
        paper = spec.paper
        report.add_row(
            name,
            paper.ir_result_rate, 100.0 * ir.ir_result_rate,
            paper.ir_addr_rate, 100.0 * ir.ir_addr_rate,
            paper.vp_magic_result_rate, 100.0 * magic.vp_result_rate,
            100.0 * magic.vp_result_misp_rate,
            paper.vp_magic_addr_rate, 100.0 * magic.vp_addr_rate,
            paper.vp_lvp_result_rate, 100.0 * lvp.vp_result_rate,
            100.0 * lvp.vp_result_misp_rate,
        )
    return report
