"""Figure 8: classification of instruction results.

unique / repeated / derivable / unaccounted, per the Section 4.3 limit
study (10K buffered instances per static instruction).  Paper: <5%
unique, 80-90% repeated, <5% derivable.
"""

from __future__ import annotations

from ..metrics.report import Report
from ..workloads import all_workloads
from .runner import ExperimentRunner


def pairs() -> list:
    """Limit studies use only the functional simulator: no timing pairs
    to prefetch (kept for CLI sweep uniformity)."""
    return []


def run(runner: ExperimentRunner) -> Report:
    report = Report(
        title="Figure 8: classification of instruction results "
              "(% of result-producing dynamic instructions)",
        headers=["bench", "unique", "repeated", "derivable", "unaccounted",
                 "redundant (rep+der)"],
    )
    for name in all_workloads():
        analyzer = runner.run_redundancy(name)
        counts = analyzer.classifier.counts
        pct = counts.as_percentages()
        report.add_row(name, pct["unique"], pct["repeated"],
                       pct["derivable"], pct["unaccounted"],
                       pct["repeated"] + pct["derivable"])
    report.add_note("paper: <5% unique, 80-90% repeated, <5% derivable")
    return report
