"""Figure 3: the performance value of early validation.

``early`` validates reused results at decode (real IR); ``late`` defers
validation to execute, as if reused instructions were predicted
correctly.  The paper: more than half the IR improvement is lost when
validation is deferred.
"""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..metrics.stats import harmonic_mean, speedup
from ..workloads import all_workloads
from .configs import BASE, IR_EARLY, IR_LATE
from .runner import ExperimentRunner, Pair


def pairs() -> List[Pair]:
    return [(name, config) for name in all_workloads()
            for config in (BASE, IR_EARLY, IR_LATE)]


def run(runner: ExperimentRunner) -> Report:
    runner.prefetch(pairs())
    report = Report(
        title="Figure 3: % speedup over base with early vs late validation "
              "of reused results",
        headers=["bench", "early %", "late %", "benefit lost %"],
    )
    early_speedups = []
    late_speedups = []
    for name in all_workloads():
        base = runner.run(name, BASE)
        early = speedup(runner.run(name, IR_EARLY), base)
        late = speedup(runner.run(name, IR_LATE), base)
        early_speedups.append(early)
        late_speedups.append(late)
        early_pct = 100.0 * (early - 1.0)
        late_pct = 100.0 * (late - 1.0)
        lost = (100.0 * (early_pct - late_pct) / early_pct
                if early_pct > 0 else 0.0)
        report.add_row(name, early_pct, late_pct, lost)
    hm_early = 100.0 * (harmonic_mean(early_speedups) - 1.0)
    hm_late = 100.0 * (harmonic_mean(late_speedups) - 1.0)
    report.add_row("HM", hm_early, hm_late,
                   100.0 * (hm_early - hm_late) / hm_early
                   if hm_early > 0 else 0.0)
    report.add_note("paper: more than half of the IR improvement is lost "
                    "when validation moves to the execute stage")
    return report
