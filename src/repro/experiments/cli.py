"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiment table3
    repro-experiment figure6 --instructions 50000
    repro-experiment all --instructions 30000 --jobs 8
    python -m repro.experiments.cli figure8

``--jobs N`` fans uncached (workload x config) simulations out over N
worker processes (default: all cores).  The result cache is written
canonically and atomically with per-key file locking, so a parallel
sweep produces byte-identical cache files to ``--jobs 1`` — see the
determinism contract in ``docs/internals.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List

from ..metrics.report import Report
from .runner import (
    DEFAULT_INSTRUCTIONS,
    ExperimentRunner,
    Pair,
    default_jobs,
    default_runner,
)
from . import (
    ablations,
    breakdown_experiment,
    sensitivity,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table2,
    table3,
    table4,
    table5,
    table6,
    zoo,
)


def _single(module) -> Callable[[ExperimentRunner], List[Report]]:
    return lambda runner: [module.run(runner)]


EXPERIMENTS: Dict[str, Callable[[ExperimentRunner], List[Report]]] = {
    "table2": _single(table2),
    "table3": _single(table3),
    "table4": _single(table4),
    "table5": _single(table5),
    "table6": _single(table6),
    "figure3": _single(figure3),
    "figure4": figure4.run_both,
    "figure5": _single(figure5),
    "figure6": figure6.run_both,
    "figure7": figure7.run_both,
    "figure8": _single(figure8),
    "figure9": _single(figure9),
    "figure10": _single(figure10),
    "ablations": ablations.run,
    "sensitivity": _single(sensitivity),
    "breakdown": _single(breakdown_experiment),
    "zoo": _single(zoo),
}

#: Each experiment's (workload, config) pairs, so a multi-experiment
#: invocation can warm the cache in one pool instead of one pool per
#: experiment (shared pairs — e.g. every base run — are deduplicated).
PAIRS: Dict[str, Callable[[], List[Pair]]] = {
    "table2": table2.pairs,
    "table3": table3.pairs,
    "table4": table4.pairs,
    "table5": table5.pairs,
    "table6": table6.pairs,
    "figure3": figure3.pairs,
    "figure4": figure4.pairs,
    "figure5": figure5.pairs,
    "figure6": figure6.pairs,
    "figure7": figure7.pairs,
    "figure8": figure8.pairs,
    "figure9": figure9.pairs,
    "figure10": figure10.pairs,
    "ablations": ablations.pairs,
    "sensitivity": sensitivity.pairs,
    "breakdown": breakdown_experiment.pairs,
    "zoo": zoo.pairs,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate tables and figures from Sodani & Sohi, "
                    "MICRO 1998")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--instructions", type=int,
                        default=DEFAULT_INSTRUCTIONS,
                        help="committed-instruction budget per run")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for uncached simulations "
                             f"(default: all cores, here {default_jobs()}; "
                             "1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the results/ cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result-cache directory (default: the "
                             "repository's results/; run manifests go "
                             "to its manifests/ subdirectory)")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        help="capture a per-run interval time-series "
                             "for every *simulated* pair into this "
                             "directory (cache keys are unchanged, so "
                             "cached results stay valid; see "
                             "docs/telemetry.md)")
    parser.add_argument("--telemetry-interval", type=int, default=None,
                        metavar="CYCLES",
                        help="sampling period for --telemetry-dir "
                             "(default 500 cycles)")
    parser.add_argument("--no-tracing", action="store_true",
                        help="with --telemetry-dir: capture interval "
                             "series only, without span tracing "
                             "(spans.jsonl) or live progress "
                             "(progress.jsonl / repro-top)")
    parser.add_argument("--no-manifests", action="store_true",
                        help="do not write per-run/per-sweep provenance "
                             "manifests")
    parser.add_argument("--checkpoint-dir", type=Path, default=None,
                        help="warm-state checkpoint store directory "
                             "(default: <cache>/checkpoints; see "
                             "docs/internals.md)")
    parser.add_argument("--no-checkpoint", action="store_true",
                        help="re-execute every warm-up skip instead of "
                             "restoring warm-state checkpoints")
    parser.add_argument("--verify", action="store_true",
                        help="cross-check every commit against the "
                             "functional simulator (slower)")
    parser.add_argument("--charts", action="store_true",
                        help="also render each report as an ASCII bar "
                             "chart (speedup figures use a 1.0 marker)")
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    overrides = {"max_instructions": args.instructions,
                 "verify": args.verify,
                 "jobs": args.jobs}
    if args.no_cache:
        overrides["cache_dir"] = None
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir
    if args.checkpoint_dir is not None:
        overrides["checkpoint_dir"] = args.checkpoint_dir
    if args.no_checkpoint:
        overrides["use_checkpoints"] = False
    if args.telemetry_dir is not None:
        overrides["telemetry_dir"] = args.telemetry_dir
    if args.telemetry_interval is not None:
        overrides["telemetry_interval"] = args.telemetry_interval
    if args.no_tracing:
        overrides["tracing"] = False
    if args.no_manifests:
        overrides["manifests"] = False
    runner = default_runner(**overrides)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    sweep: List[Pair] = []
    for name in names:
        sweep.extend(PAIRS[name]())
    if sweep:
        runner.prefetch(sweep)
    for name in names:
        for report in EXPERIMENTS[name](runner):
            print()
            print(report.render())
            if args.charts:
                from ..metrics.charts import report_to_chart
                reference = 1.0 if "speedup" in report.title.lower() \
                    else None
                print()
                print(report_to_chart(report, reference=reference))
    return 0


if __name__ == "__main__":
    sys.exit(main())
