"""The named machine configurations used across the evaluation."""

from __future__ import annotations

from typing import Dict, List

from ..uarch.config import (
    BranchPolicy,
    IRValidation,
    MachineConfig,
    PredictorKind,
    ReexecPolicy,
    base_config,
    ir_config,
    vfr_config,
    vp_config,
)

BASE = base_config()
IR_EARLY = ir_config(IRValidation.EARLY)
IR_LATE = ir_config(IRValidation.LATE)


def vp_matrix(kind: PredictorKind, verify_latency: int) -> List[MachineConfig]:
    """The paper's four VP configurations: ME/NME x SB/NSB (Sec 4.1.4)."""
    return [
        vp_config(kind, ReexecPolicy.MULTIPLE, BranchPolicy.SPECULATIVE,
                  verify_latency),
        vp_config(kind, ReexecPolicy.SINGLE, BranchPolicy.SPECULATIVE,
                  verify_latency),
        vp_config(kind, ReexecPolicy.MULTIPLE, BranchPolicy.NON_SPECULATIVE,
                  verify_latency),
        vp_config(kind, ReexecPolicy.SINGLE, BranchPolicy.NON_SPECULATIVE,
                  verify_latency),
    ]


def vp_magic(reexec: ReexecPolicy = ReexecPolicy.MULTIPLE,
             branches: BranchPolicy = BranchPolicy.SPECULATIVE,
             verify_latency: int = 0) -> MachineConfig:
    return vp_config(PredictorKind.MAGIC, reexec, branches, verify_latency)


def vp_lvp(reexec: ReexecPolicy = ReexecPolicy.MULTIPLE,
           branches: BranchPolicy = BranchPolicy.SPECULATIVE,
           verify_latency: int = 0) -> MachineConfig:
    return vp_config(PredictorKind.LAST_VALUE, reexec, branches,
                     verify_latency)


def short_vp_name(config: MachineConfig) -> str:
    """'ME-SB'-style label as the paper prints them."""
    return f"{config.vp.reexec_policy.value}-{config.vp.branch_policy.value}"


def evaluation_configs(verify_latencies=(0, 1)) -> List[MachineConfig]:
    """Every timing configuration the paper's tables/figures touch.

    One deduplicated list (by config name) so a sweep can be handed to
    :meth:`ExperimentRunner.run_many` in a single fan-out, and so the
    determinism harness can cover the whole configuration space.
    """
    configs: List[MachineConfig] = [BASE, IR_EARLY, IR_LATE]
    for kind in (PredictorKind.MAGIC, PredictorKind.LAST_VALUE):
        for latency in verify_latencies:
            configs.extend(vp_matrix(kind, latency))
    unique: Dict[str, MachineConfig] = {}
    for config in configs:
        unique.setdefault(config.name, config)
    return list(unique.values())


#: The realistic predictor-zoo kinds (MAGIC and PERFECT are oracles).
ZOO_KINDS = (PredictorKind.LAST_VALUE, PredictorKind.STRIDE,
             PredictorKind.FCM, PredictorKind.HYBRID_SELECT)


def zoo_configs() -> List[MachineConfig]:
    """Base plus every realistic predictor kind (ME-SB, zero-latency
    verify) plus the variable-fetch-rate frontend on the hybrid: the
    configuration axis of the predictor-zoo experiment."""
    configs = [BASE]
    configs += [vp_config(kind) for kind in ZOO_KINDS]
    configs.append(vfr_config(PredictorKind.HYBRID_SELECT))
    return configs


def sweep_pairs(workloads, verify_latencies=(0, 1)):
    """(workload, config) pairs for a full-suite sweep, ready for
    :meth:`ExperimentRunner.run_many`."""
    return [(name, config) for name in workloads
            for config in evaluation_configs(verify_latencies)]
