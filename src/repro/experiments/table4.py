"""Table 4: % increase in branch squashes from spurious mispredictions.

Only the SB configurations are shown — under NSB branches resolve with
non-speculative operands, so the squash count is unaffected (Sec 4.2.2).
"""

from __future__ import annotations

from typing import List

from ..metrics.stats import SimStats
from ..metrics.report import Report
from ..uarch.config import BranchPolicy, ReexecPolicy
from ..workloads import all_workloads
from .configs import BASE, vp_lvp, vp_magic
from .runner import ExperimentRunner, Pair


def _increase(stats: SimStats, base: SimStats) -> float:
    if base.branch_squashes == 0:
        return 0.0
    delta = stats.branch_squashes - base.branch_squashes
    return 100.0 * delta / base.branch_squashes


def pairs() -> List[Pair]:
    configs = (BASE, vp_magic(ReexecPolicy.MULTIPLE),
               vp_magic(ReexecPolicy.SINGLE),
               vp_lvp(ReexecPolicy.MULTIPLE), vp_lvp(ReexecPolicy.SINGLE))
    return [(name, config) for name in all_workloads()
            for config in configs]


def run(runner: ExperimentRunner) -> Report:
    runner.prefetch(pairs())
    report = Report(
        title="Table 4: % increase in branch squashes due to value "
              "misprediction (SB configurations)",
        headers=["bench", "VPM ME-SB", "VPM NME-SB",
                 "LVP ME-SB", "LVP NME-SB"],
    )
    for name in all_workloads():
        base = runner.run(name, BASE)
        report.add_row(
            name,
            _increase(runner.run(name, vp_magic(ReexecPolicy.MULTIPLE)),
                      base),
            _increase(runner.run(name, vp_magic(ReexecPolicy.SINGLE)), base),
            _increase(runner.run(name, vp_lvp(ReexecPolicy.MULTIPLE)), base),
            _increase(runner.run(name, vp_lvp(ReexecPolicy.SINGLE)), base),
        )
    report.add_note("paper reports e.g. go +20.0/+17.1 (VPM), "
                    "vortex +164.5 (LVP ME-SB); expect LVP >> VPM")
    return report
