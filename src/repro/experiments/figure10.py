"""Figure 10: how much of the redundancy is reusable.

reusable = repeated - (inputs not ready) - (different inputs) -
(memory-invalidated loads); reported as a % of redundant (repeated +
derivable) instructions.  Paper: 84-97%.
"""

from __future__ import annotations

from ..metrics.report import Report
from ..workloads import all_workloads
from .runner import ExperimentRunner


def pairs() -> list:
    """Limit studies use only the functional simulator: no timing pairs
    to prefetch (kept for CLI sweep uniformity)."""
    return []


def run(runner: ExperimentRunner, producer_distance: int = 50) -> Report:
    report = Report(
        title="Figure 10: amount of redundancy that can be reused "
              "(% of redundant instructions)",
        headers=["bench", "redundant (dyn insts)", "reusable %",
                 "lost: not ready %", "lost: different inputs %",
                 "lost: memory invalidated %", "lost: derivable %"],
    )
    for name in all_workloads():
        analyzer = runner.run_redundancy(
            name, producer_distance=producer_distance)
        counts = analyzer.counts
        redundant = counts.redundant or 1
        report.add_row(
            name,
            counts.redundant,
            100.0 * counts.reusable_fraction_of_redundant,
            100.0 * counts.producers_near / redundant,
            100.0 * counts.different_inputs / redundant,
            100.0 * counts.memory_invalidated / redundant,
            100.0 * counts.derivable / redundant,
        )
    report.add_note("paper: 84-97% of redundancy reusable; see Figure 9 "
                    "note on the producer-distance horizon for compact "
                    "analog loops")
    return report
