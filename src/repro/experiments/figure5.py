"""Figure 5: resource contention, normalised to the base machine.

Contention = (resource-unavailable events) / (resource requests) at
issue, over functional units and data-cache ports.  IR tends to reduce
contention (reused instructions do not execute); VP tends to raise it
(re-executions, earlier clustering of ready instructions).  ME vs NME
should barely differ (Table 6: few multiple executions).
"""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..uarch.config import BranchPolicy, PredictorKind, ReexecPolicy
from ..workloads import all_workloads
from .configs import BASE, IR_EARLY, vp_lvp, vp_magic
from .runner import ExperimentRunner, Pair


def pairs() -> List[Pair]:
    configs = (BASE, IR_EARLY, vp_magic(ReexecPolicy.MULTIPLE),
               vp_magic(ReexecPolicy.SINGLE), vp_lvp(ReexecPolicy.MULTIPLE))
    return [(name, config) for name in all_workloads()
            for config in configs]


def run(runner: ExperimentRunner) -> Report:
    runner.prefetch(pairs())
    report = Report(
        title="Figure 5: resource contention normalised to base "
              "(0-cycle VP-verification)",
        headers=["bench", "base", "reuse-n+d",
                 "VPM ME-SB", "VPM NME-SB", "LVP ME-SB"],
    )
    for name in all_workloads():
        base = runner.run(name, BASE)
        baseline = base.resource_contention or 1e-9
        report.add_row(
            name,
            base.resource_contention,
            runner.run(name, IR_EARLY).resource_contention / baseline,
            runner.run(name, vp_magic(ReexecPolicy.MULTIPLE))
            .resource_contention / baseline,
            runner.run(name, vp_magic(ReexecPolicy.SINGLE))
            .resource_contention / baseline,
            runner.run(name, vp_lvp(ReexecPolicy.MULTIPLE))
            .resource_contention / baseline,
        )
    report.add_note("expect: IR mostly <= 1.0, VP >= 1.0; ME vs NME "
                    "nearly identical")
    return report
