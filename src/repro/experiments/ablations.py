"""Ablation studies beyond the paper's own tables.

Three sweeps probe the design choices the paper fixes by fiat, plus the
hybrid technique its conclusion motivates:

* ``hybrid`` — VP-only vs IR-only vs the combined machine (reuse first,
  predict the misses).  The paper: "a better understanding would help in
  designing other mechanisms (which may be hybrid of VP and IR)".
* ``storage`` — the 4:1 VPT:RB entry ratio equalises hardware storage
  (an RB entry is ~4x a VPT entry).  The sweep varies total storage to
  show both techniques' sensitivity to capacity.
* ``instances`` — the structures are 4-way associative, i.e. up to four
  instances per static instruction.  Varying associativity shows how
  much of the captured redundancy needs multiple instances (VP_Magic's
  oracle selection and the RB's instance matching both depend on it).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List

from ..metrics.report import Report
from ..metrics.stats import harmonic_mean, speedup
from ..uarch.config import (
    IRConfig,
    PredictorKind,
    VPConfig,
    hybrid_config,
    ir_config,
    vp_config,
)
from ..workloads import all_workloads
from .configs import BASE
from .runner import ExperimentRunner, Pair

_DEFAULT_WORKLOADS = ("go", "m88ksim", "perl", "compress")


def predictors(runner: ExperimentRunner,
               workloads: Iterable[str] = _DEFAULT_WORKLOADS) -> Report:
    """Predictor-family sweep: Magic vs LVP vs the stride extension.

    The stride predictor targets the 'derivable' slice of Figure 8 that
    neither the paper's predictors nor IR can touch."""
    report = Report(
        title="Ablation: predictor families (ME-SB, 0-cycle verification)",
        headers=["bench", "VP_Magic", "VP_LVP", "VP_Stride",
                 "stride correct %"],
    )
    runner.prefetch(
        [(name, config) for name in workloads
         for config in (BASE, vp_config(PredictorKind.MAGIC),
                        vp_config(PredictorKind.LAST_VALUE),
                        vp_config(PredictorKind.STRIDE))])
    speedups = {kind: [] for kind in PredictorKind}
    for name in workloads:
        base = runner.run(name, BASE)
        cells = []
        stride_stats = None
        for kind in (PredictorKind.MAGIC, PredictorKind.LAST_VALUE,
                     PredictorKind.STRIDE):
            stats = runner.run(name, vp_config(kind))
            speedups[kind].append(speedup(stats, base))
            cells.append(speedups[kind][-1])
            if kind == PredictorKind.STRIDE:
                stride_stats = stats
        report.add_row(name, *cells, 100.0 * stride_stats.vp_result_rate)
    report.add_row("HM", *[harmonic_mean(speedups[kind]) for kind in
                           (PredictorKind.MAGIC, PredictorKind.LAST_VALUE,
                            PredictorKind.STRIDE)], None)
    return report


def hybrid(runner: ExperimentRunner,
           workloads: Iterable[str] = _DEFAULT_WORKLOADS) -> Report:
    report = Report(
        title="Ablation: hybrid VP+IR (reuse first, predict the misses)",
        headers=["bench", "VP speedup", "IR speedup", "hybrid speedup",
                 "hybrid reuse %", "hybrid pred %"],
    )
    runner.prefetch([(name, config) for name in workloads
                     for config in (BASE, vp_config(), ir_config(),
                                    hybrid_config())])
    vp_speedups, ir_speedups, hybrid_speedups = [], [], []
    for name in workloads:
        base = runner.run(name, BASE)
        vp = runner.run(name, vp_config())
        ir = runner.run(name, ir_config())
        combined = runner.run(name, hybrid_config())
        vp_speedups.append(speedup(vp, base))
        ir_speedups.append(speedup(ir, base))
        hybrid_speedups.append(speedup(combined, base))
        report.add_row(name, vp_speedups[-1], ir_speedups[-1],
                       hybrid_speedups[-1],
                       100.0 * combined.ir_result_rate,
                       100.0 * combined.vp_result_rate)
    report.add_row("HM", harmonic_mean(vp_speedups),
                   harmonic_mean(ir_speedups),
                   harmonic_mean(hybrid_speedups), None, None)
    report.add_note("hybrid uses both structures at full size (2x storage "
                    "of either technique alone)")
    return report


def _storage_configs(scales: Iterable[int]) -> List:
    configs = []
    for scale in scales:
        config = vp_config()
        configs.append(dataclasses.replace(
            config, name=f"{config.name}-e{16384 // scale}",
            vp=dataclasses.replace(config.vp, entries=16384 // scale)))
    for scale in scales:
        config = ir_config()
        configs.append(dataclasses.replace(
            config, name=f"{config.name}-e{4096 // scale}",
            ir=dataclasses.replace(config.ir, entries=4096 // scale)))
    return configs


def storage(runner: ExperimentRunner,
            workloads: Iterable[str] = _DEFAULT_WORKLOADS,
            scales: Iterable[int] = (1, 4, 16)) -> Report:
    """Divide both structures' entry counts by each scale factor."""
    scales = tuple(scales)
    report = Report(
        title="Ablation: structure capacity (entries divided by scale; "
              "VPT:RB stays 4:1)",
        headers=["bench"] + [f"VP /{s}" for s in scales]
                + [f"IR /{s}" for s in scales],
    )
    configs = _storage_configs(scales)
    runner.prefetch([(name, config) for name in workloads
                     for config in [BASE] + configs])
    for name in workloads:
        base = runner.run(name, BASE)
        cells = [speedup(runner.run(name, config), base)
                 for config in configs]
        report.add_row(name, *cells)
    return report


def _instance_configs(ways: Iterable[int]) -> List:
    configs = []
    for way in ways:
        config = vp_config()
        configs.append(dataclasses.replace(
            config, name=f"{config.name}-a{way}",
            vp=dataclasses.replace(config.vp, associativity=way)))
    for way in ways:
        config = ir_config()
        configs.append(dataclasses.replace(
            config, name=f"{config.name}-a{way}",
            ir=dataclasses.replace(config.ir, associativity=way)))
    return configs


def instances(runner: ExperimentRunner,
              workloads: Iterable[str] = _DEFAULT_WORKLOADS,
              ways: Iterable[int] = (1, 2, 4)) -> Report:
    """Vary instances-per-instruction at constant entry count."""
    ways = tuple(ways)
    report = Report(
        title="Ablation: instances per static instruction (associativity)",
        headers=["bench"] + [f"VP {w}w" for w in ways]
                + [f"IR {w}w" for w in ways],
    )
    configs = _instance_configs(ways)
    runner.prefetch([(name, config) for name in workloads
                     for config in [BASE] + configs])
    for name in workloads:
        base = runner.run(name, BASE)
        cells = [speedup(runner.run(name, config), base)
                 for config in configs]
        report.add_row(name, *cells)
    report.add_note("VP_Magic's oracle selection and the RB's instance "
                    "matching both lose coverage with fewer instances")
    return report


def upper_bound(runner: ExperimentRunner,
                workloads: Iterable[str] = _DEFAULT_WORKLOADS) -> Report:
    """VP_Perfect: the footnote-3 bound realised in the timing model.

    Wrong-path instructions are still predicted by the oracle (their
    dispatch-time outcome is correct *along that path*), so this bounds
    what any predictor of this machine's structure could deliver."""
    report = Report(
        title="Ablation: oracle upper bound (VP_Perfect) vs realistic "
              "schemes",
        headers=["bench", "VP_Magic", "VP_Perfect", "headroom %"],
    )
    runner.prefetch(
        [(name, config) for name in workloads
         for config in (BASE, vp_config(),
                        vp_config(PredictorKind.PERFECT))])
    for name in workloads:
        base = runner.run(name, BASE)
        magic = speedup(runner.run(name, vp_config()), base)
        perfect = speedup(
            runner.run(name, vp_config(PredictorKind.PERFECT)), base)
        headroom = 100.0 * (perfect - magic) / magic if magic else 0.0
        report.add_row(name, magic, perfect, headroom)
    return report


def _confidence_configs(thresholds: Iterable[int]) -> List:
    configs = []
    for threshold in thresholds:
        config = vp_config()
        configs.append(dataclasses.replace(
            config, name=f"{config.name}-t{threshold}",
            vp=dataclasses.replace(config.vp,
                                   confidence_threshold=threshold)))
    return configs


def confidence(runner: ExperimentRunner,
               workloads: Iterable[str] = _DEFAULT_WORKLOADS,
               thresholds: Iterable[int] = (1, 2, 3)) -> Report:
    """Confidence-threshold sweep for VP_Magic (paper fixes it by fiat).

    Lower thresholds predict sooner but mispredict more; under SB that
    trades spurious squashes against coverage."""
    report = Report(
        title="Ablation: VP_Magic confidence threshold (ME-SB)",
        headers=["bench"] + [f"thr {t}" for t in thresholds]
                + [f"mis% thr {t}" for t in thresholds],
    )
    configs = _confidence_configs(thresholds)
    runner.prefetch([(name, config) for name in workloads
                     for config in [BASE] + configs])
    for name in workloads:
        base = runner.run(name, BASE)
        cells: List[float] = []
        misses: List[float] = []
        for config in configs:
            stats = runner.run(name, config)
            cells.append(speedup(stats, base))
            misses.append(100.0 * stats.vp_result_misp_rate)
        report.add_row(name, *cells, *misses)
    return report


def chaining(runner: ExperimentRunner,
             workloads: Iterable[str] = _DEFAULT_WORKLOADS) -> Report:
    """S_n vs S_{n+d}: what dependence-pointer chaining buys.

    The 'd' is what lets a whole dependent chain reuse in one cycle
    (Figure 2's IR pipeline); without it, each link must wait for its
    producer's value to be architecturally readable at the test."""
    report = Report(
        title="Ablation: dependence chaining (S_n vs S_{n+d})",
        headers=["bench", "S_n speedup", "S_n+d speedup",
                 "S_n reuse %", "S_n+d reuse %"],
    )
    no_chain_config = ir_config()
    no_chain_config = dataclasses.replace(
        no_chain_config, name="reuse-n",
        ir=dataclasses.replace(no_chain_config.ir,
                               dependence_chaining=False))
    runner.prefetch([(name, config) for name in workloads
                     for config in (BASE, ir_config(), no_chain_config)])
    for name in workloads:
        base = runner.run(name, BASE)
        full = runner.run(name, ir_config())
        no_chain = runner.run(name, no_chain_config)
        report.add_row(name,
                       speedup(no_chain, base), speedup(full, base),
                       100.0 * no_chain.ir_result_rate,
                       100.0 * full.ir_result_rate)
    return report


def pairs(workloads: Iterable[str] = _DEFAULT_WORKLOADS) -> List[Pair]:
    """Union of every sub-ablation's (workload, config) pairs, so a sweep
    can fan the whole suite out in one pool."""
    workloads = tuple(workloads)
    no_chain_config = ir_config()
    no_chain_config = dataclasses.replace(
        no_chain_config, name="reuse-n",
        ir=dataclasses.replace(no_chain_config.ir,
                               dependence_chaining=False))
    configs = ([BASE, ir_config(), hybrid_config(), no_chain_config]
               + [vp_config(kind) for kind in PredictorKind]
               + _storage_configs((1, 4, 16))
               + _instance_configs((1, 2, 4))
               + _confidence_configs((1, 2, 3)))
    unique = {}
    for config in configs:
        unique.setdefault(config.name, config)
    return [(name, config) for name in workloads
            for config in unique.values()]


def run(runner: ExperimentRunner) -> List[Report]:
    runner.prefetch(pairs())
    return [hybrid(runner), predictors(runner), storage(runner),
            instances(runner), upper_bound(runner), confidence(runner),
            chaining(runner)]
