"""Experiment harness: one module per table/figure of the paper."""

from .runner import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_MAX_CYCLES,
    ExperimentRunner,
    Pair,
    default_jobs,
    default_runner,
)

__all__ = [
    "ExperimentRunner",
    "Pair",
    "default_jobs",
    "default_runner",
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_MAX_CYCLES",
]
