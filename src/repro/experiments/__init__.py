"""Experiment harness: one module per table/figure of the paper."""

from .runner import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_MAX_CYCLES,
    ExperimentRunner,
    default_runner,
)

__all__ = [
    "ExperimentRunner",
    "default_runner",
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_MAX_CYCLES",
]
