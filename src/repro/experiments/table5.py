"""Table 5: wrong-path work squashed, and how much IR recovers."""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..workloads import all_workloads
from .configs import IR_EARLY
from .runner import ExperimentRunner, Pair


def pairs() -> List[Pair]:
    return [(name, IR_EARLY) for name in all_workloads()]


def run(runner: ExperimentRunner) -> Report:
    runner.prefetch(pairs())
    report = Report(
        title="Table 5: executed instructions squashed by branch "
              "mispredictions, and % recovered through the reuse buffer",
        headers=["bench", "insts executed", "squashed (% of executed)",
                 "recovered (% of squashed)", "paper recovered %"],
    )
    paper_recovered = {"go": 36.6, "m88ksim": 53.9, "ijpeg": 49.4,
                       "perl": 33.8, "vortex": 29.8, "gcc": 35.3,
                       "compress": 27.7}
    for name in all_workloads():
        stats = runner.run(name, IR_EARLY)
        report.add_row(
            name,
            stats.executed_instructions,
            100.0 * stats.squashed_executed_fraction,
            100.0 * stats.recovered_fraction,
            paper_recovered[name],
        )
    report.add_note("paper: >30% of squashed executed instructions "
                    "recovered for most benchmarks")
    return report
