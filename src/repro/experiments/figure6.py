"""Figure 6: net speedups — VP_Magic (four configurations) and IR.

Parts (a)/(b) are 0- and 1-cycle VP-verification latency; the IR bars
are identical in both.  HM rows give the harmonic mean across the suite.
"""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..metrics.stats import harmonic_mean, speedup
from ..uarch.config import PredictorKind
from ..workloads import all_workloads
from .configs import BASE, IR_EARLY, short_vp_name, vp_matrix
from .runner import ExperimentRunner, Pair


def pairs_for(verify_latency: int = 0,
              kind: PredictorKind = PredictorKind.MAGIC,
              include_ir: bool = True) -> List[Pair]:
    configs = [BASE] + vp_matrix(kind, verify_latency)
    if include_ir:
        configs.append(IR_EARLY)
    return [(name, config) for name in all_workloads()
            for config in configs]


def pairs() -> List[Pair]:
    return pairs_for(0) + pairs_for(1)


def run(runner: ExperimentRunner, verify_latency: int = 0,
        kind: PredictorKind = PredictorKind.MAGIC,
        include_ir: bool = True) -> Report:
    runner.prefetch(pairs_for(verify_latency, kind, include_ir))
    part = "a" if verify_latency == 0 else "b"
    configs = vp_matrix(kind, verify_latency)
    kind_label = "VP_Magic" if kind == PredictorKind.MAGIC else "VP_LVP"
    headers = ["bench"] + [short_vp_name(c) for c in configs]
    if include_ir:
        headers.append("reuse-n+d")
    report = Report(
        title=f"Figure 6({part}): speedups over base, {kind_label} "
              f"({verify_latency}-cycle VP-verification)"
        if kind == PredictorKind.MAGIC else
        f"Figure 7({part}): speedups over base, {kind_label} "
        f"({verify_latency}-cycle VP-verification)",
        headers=headers,
    )
    columns: List[List[float]] = [[] for _ in headers[1:]]
    for name in all_workloads():
        base = runner.run(name, BASE)
        cells = [speedup(runner.run(name, config), base)
                 for config in configs]
        if include_ir:
            cells.append(speedup(runner.run(name, IR_EARLY), base))
        for column, value in zip(columns, cells):
            column.append(value)
        report.add_row(name, *cells)
    report.add_row("HM", *[harmonic_mean(column) for column in columns])
    return report


def run_both(runner: ExperimentRunner) -> List[Report]:
    runner.prefetch(pairs())
    return [run(runner, 0), run(runner, 1)]
