"""Back-compat re-export: the lock moved to :mod:`repro.util.locking`.

The advisory file lock started life here, private to the experiment
cache; the warm-state checkpoint store (:mod:`repro.functional.checkpoint`)
needs the same primitive from a lower layer, so the implementation now
lives in :mod:`repro.util.locking` and this module only re-exports it.
"""

from ..util.locking import STALE_LOCK_SECONDS, FileLock

__all__ = ["FileLock", "STALE_LOCK_SECONDS"]
