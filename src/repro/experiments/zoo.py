"""Predictor zoo over generated workloads: redundancy vs coverage.

The paper's footnote 3 bounds value-predictable instructions by the
measured redundancy (Figure 8).  This experiment turns that bound into
an *independent variable*: the seeded workload generator
(:mod:`repro.workloads.generator`) manufactures programs whose result
redundancy is dialled from near-zero to near-total, and every realistic
predictor in the zoo (last-value, stride, order-2 FCM, the hybrid
selector, and the hybrid under the variable-fetch-rate frontend) runs
over each one.  Columns report the measured redundancy next to each
predictor's correct-prediction rate and speedup, so the table reads as
"how much of the paper's bound does each scheme actually capture as the
bound grows?".
"""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..metrics.stats import speedup
from ..workloads.generator import GeneratorKnobs, measure
from .configs import BASE, zoo_configs
from .runner import ExperimentRunner, Pair

#: The generated-workload redundancy sweep: one row per knob setting.
REDUNDANCY_POINTS = (0.1, 0.35, 0.6, 0.85)
_SEED = 7
_SIZE = 48
_TRIPS = 200
_BRANCH_ENTROPY = 0.25


def zoo_knobs() -> List[GeneratorKnobs]:
    """The generator knob settings of the redundancy sweep."""
    return [GeneratorKnobs(seed=_SEED, size=_SIZE, trips=_TRIPS,
                           result_redundancy=point,
                           branch_entropy=_BRANCH_ENTROPY)
            for point in REDUNDANCY_POINTS]


def zoo_workloads() -> List[str]:
    """Canonical names (materialised on demand by ``get_workload``)."""
    return [knobs.name for knobs in zoo_knobs()]


def pairs() -> List[Pair]:
    return [(name, config)
            for name in zoo_workloads()
            for config in zoo_configs()]


def run(runner: ExperimentRunner) -> Report:
    configs = zoo_configs()
    predictor_configs = [c for c in configs if c.name != BASE.name]
    report = Report(
        title="Predictor zoo: correct result predictions per committed "
              "instruction vs generated-workload redundancy",
        headers=["workload", "redundant%"]
                + [f"{c.name} rate" for c in predictor_configs]
                + [f"{c.name} speedup" for c in predictor_configs],
    )
    for knobs in zoo_knobs():
        name = knobs.name
        measured = measure(knobs)
        base = runner.run(name, BASE)
        rates: List[float] = []
        speedups: List[float] = []
        for config in predictor_configs:
            stats = runner.run(name, config)
            rates.append(100.0 * stats.vp_result_rate)
            speedups.append(speedup(stats, base))
        report.add_row(f"r={knobs.result_redundancy:.2f}",
                       measured["redundant"], *rates, *speedups)
    report.add_note(
        "workloads: " + ", ".join(zoo_workloads()))
    report.add_note(
        "redundant% is the functional-simulation Figure 8 bound "
        "(repeated + derivable); rate is vp_result_correct/committed "
        "in the timing model — footnote 3 says rate cannot exceed the "
        "bound, and the gap is each predictor's unreached headroom")
    return report
