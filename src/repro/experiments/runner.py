"""Shared experiment driver with on-disk result caching and parallel fan-out.

Every table/figure experiment needs timing-simulation results for some
(workload x configuration) pairs; many pairs are shared between
experiments (e.g. the base run is the denominator of every speedup).
:class:`ExperimentRunner` runs each pair once and caches the resulting
:class:`SimStats` as JSON, keyed by workload, configuration name, window
size and a hash of the workload source — so editing a workload
invalidates its cached results automatically.

Pairs are independent simulations, so :meth:`ExperimentRunner.run_many`
fans the uncached ones out over a ``multiprocessing`` pool (``jobs=1``
keeps the strictly serial path).  Parallelism is only acceptable under
the repository's **determinism contract**: a simulation's result — and
the cached JSON bytes — must be identical no matter which process ran it
or in what order.  Three mechanisms uphold the contract:

* simulations share no state: each worker rebuilds its program from the
  workload registry and runs a private core;
* cache files are written canonically (sorted keys) and atomically
  (tempfile + ``os.replace``), so a cache produced by a ``jobs=8`` sweep
  is byte-identical to a serial one;
* a per-key :class:`~repro.util.locking.FileLock` makes
  concurrent workers (or concurrent CLI invocations) cooperate instead
  of double-running or corrupting an entry.

Warm-up skips are shared through the content-addressed checkpoint
store (:mod:`repro.functional.checkpoint`, default
``<cache>/checkpoints``): the first simulation of a workload captures
the post-skip architectural state and every later configuration,
worker process or invocation restores it — byte-identical statistics
either way, under the same locking discipline as the result cache.

``tests/experiments/test_parallel.py`` asserts all of this.

Window sizes default to a laptop-scale budget (the paper simulates 200M
cycles per run on SimpleScalar; a pure-Python model is ~10^4x slower, so
the defaults reproduce shapes rather than absolute magnitudes — see
DESIGN.md section 2).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..functional.checkpoint import CheckpointStore
from ..functional.simulator import FunctionalSimulator
from ..isa.program import Program
from ..metrics.stats import SimStats
from ..redundancy.reusability import ReusabilityAnalyzer
from ..uarch.config import MachineConfig
from ..workloads import WorkloadSpec, all_workloads, get_workload
from ..util.locking import FileLock

CACHE_VERSION = 4

DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_MAX_CYCLES = 600_000

#: A unit of simulation work: (workload name, machine configuration).
Pair = Tuple[str, MachineConfig]


def default_jobs() -> int:
    """Default degree of parallelism: every core the machine has."""
    return os.cpu_count() or 1


class ExperimentRunner:
    """Runs (workload x config) timing simulations with JSON caching.

    ``jobs`` sets the default pool size for :meth:`run_many` /
    :meth:`run_workloads`; ``None`` means "all cores".  ``jobs=1`` never
    spawns a pool.
    """

    def __init__(self,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 cache_dir: Optional[Path] = None,
                 verify: bool = False,
                 quiet: bool = False,
                 jobs: Optional[int] = None,
                 mp_start_method: Optional[str] = None,
                 checkpoint_dir: Optional[Path] = None,
                 use_checkpoints: bool = True):
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.verify = verify
        self.quiet = quiet
        self.jobs = jobs
        self.mp_start_method = mp_start_method
        # Warm-state checkpoints (repro.functional.checkpoint): every
        # configuration of a workload shares one warm-up.  The store
        # defaults to a subdirectory of the result cache so sweeps from
        # any process share it; without a cache_dir it is process-local
        # (memoized captures, nothing persisted).
        if checkpoint_dir is None and self.cache_dir is not None:
            checkpoint_dir = self.cache_dir / "checkpoints"
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir \
            else None
        self.use_checkpoints = use_checkpoints
        self.checkpoints: Optional[CheckpointStore] = (
            CheckpointStore(self.checkpoint_dir) if use_checkpoints
            else None)
        self._memory_cache: Dict[str, SimStats] = {}
        self._program_cache: Dict[str, Program] = {}

    # -- timing runs ------------------------------------------------------------

    def run(self, workload: str, config: MachineConfig) -> SimStats:
        """Simulate *workload* under *config* (cached, lock-protected)."""
        spec = get_workload(workload)
        key = self._key(spec, config)
        cached = self._load(key)
        if cached is not None:
            return cached
        with self._lock(key):
            # Another process may have produced the entry while we waited.
            cached = self._load(key)
            if cached is not None:
                return cached
            stats = self._simulate(spec, workload, config)
            self._store(key, stats)
        return stats

    def run_many(self, pairs: Iterable[Pair],
                 jobs: Optional[int] = None
                 ) -> Dict[Tuple[str, str], SimStats]:
        """Run every (workload, config) pair, fanning uncached ones out.

        Returns ``{(workload, config.name): SimStats}`` for every input
        pair.  Duplicates are deduplicated by cache key; already-cached
        pairs never reach the pool.  With ``jobs=1`` (or one pending
        pair) this is exactly the serial path.
        """
        pairs = list(pairs)
        jobs = self._effective_jobs(jobs)
        unique: Dict[str, Pair] = {}
        for workload, config in pairs:
            key = self._key(get_workload(workload), config)
            unique.setdefault(key, (workload, config))

        results: Dict[Tuple[str, str], SimStats] = {}
        pending: List[Tuple[str, str, MachineConfig]] = []
        for key, (workload, config) in unique.items():
            cached = self._load(key)
            if cached is not None:
                results[(workload, config.name)] = cached
            else:
                pending.append((key, workload, config))

        if len(pending) <= 1 or jobs <= 1:
            for _, workload, config in pending:
                results[(workload, config.name)] = self.run(workload, config)
            return results

        ctx = multiprocessing.get_context(self.mp_start_method)
        settings = {
            "max_instructions": self.max_instructions,
            "max_cycles": self.max_cycles,
            "cache_dir": self.cache_dir,
            "verify": self.verify,
            "quiet": True,  # children are silent; the parent narrates
            "jobs": 1,
            "checkpoint_dir": self.checkpoint_dir,
            "use_checkpoints": self.use_checkpoints,
        }
        total, done = len(pending), 0
        started = time.perf_counter()
        with ctx.Pool(processes=min(jobs, total),
                      initializer=_worker_init,
                      initargs=(settings,)) as pool:
            tasks = [(workload, config) for _, workload, config in pending]
            for workload, cname, payload, elapsed in \
                    pool.imap_unordered(_worker_run, tasks):
                done += 1
                stats = SimStats.from_dict(payload)
                results[(workload, cname)] = stats
                if not self.quiet:
                    print(f"[run {done}/{total}] {workload} / {cname} "
                          f"({stats.committed} insts, {elapsed:.1f}s)",
                          flush=True)
        if not self.quiet:
            print(f"[run] {total} simulations on {min(jobs, total)} workers "
                  f"in {time.perf_counter() - started:.1f}s", flush=True)
        # Adopt the children's results into this process's memory cache.
        for key, workload, config in pending:
            self._memory_cache[key] = results[(workload, config.name)]
        return results

    def run_workloads(self, config: MachineConfig,
                      workloads: Optional[Iterable[str]] = None,
                      jobs: Optional[int] = None) -> Dict[str, SimStats]:
        names = list(workloads) if workloads else list(all_workloads())
        results = self.run_many([(name, config) for name in names],
                                jobs=jobs)
        return {name: results[(name, config.name)] for name in names}

    def prefetch(self, pairs: Iterable[Pair],
                 jobs: Optional[int] = None) -> None:
        """Warm the cache for *pairs*; later :meth:`run` calls are hits."""
        self.run_many(pairs, jobs=jobs)

    def _simulate(self, spec: WorkloadSpec, workload: str,
                  config: MachineConfig) -> SimStats:
        from ..uarch.core import OutOfOrderCore
        if not self.quiet:
            print(f"[run] {workload} / {config.name} "
                  f"({self.max_instructions} insts)", flush=True)
        if self.verify:
            config = dataclasses.replace(config, verify_commits=True)
        program = self._program(spec)
        core = OutOfOrderCore(config, program)
        if self.checkpoints is not None:
            core.restore_warm(
                self.checkpoints.get(program, spec.skip_instructions))
        else:
            core.skip(spec.skip_instructions)
        stats = core.run(max_cycles=self.max_cycles,
                         max_instructions=self.max_instructions)
        stats.workload_name = workload
        return stats

    def _program(self, spec: WorkloadSpec) -> Program:
        """Assemble *spec* once per process (programs are immutable)."""
        program = self._program_cache.get(spec.name)
        if program is None:
            program = self._program_cache[spec.name] = spec.program()
        return program

    def _effective_jobs(self, jobs: Optional[int]) -> int:
        if jobs is None:
            jobs = self.jobs
        if jobs is None:
            jobs = default_jobs()
        return max(1, int(jobs))

    # -- limit-study runs ---------------------------------------------------------

    def run_redundancy(self, workload: str,
                       warmup: int = 60_000,
                       window: int = 60_000,
                       producer_distance: int = 50) -> ReusabilityAnalyzer:
        """Functional-simulation limit study (Figures 8-10). Not cached:
        it is much cheaper than a timing run.  The warm-up (which
        dominates: skip + warmup vs a smaller window) restores from the
        checkpoint store when one is attached."""
        spec = get_workload(workload)
        program = self._program(spec)
        sim = FunctionalSimulator(program)
        total_skip = spec.skip_instructions + warmup
        if self.checkpoints is not None:
            warm = self.checkpoints.get(program, total_skip)
            sim.restore(warm)
            sim.skip(total_skip - warm.executed)
        else:
            sim.skip(total_skip)
        analyzer = ReusabilityAnalyzer(producer_distance=producer_distance)
        for outcome in sim.stream(window):
            analyzer.observe(outcome)
        return analyzer

    # -- caching -------------------------------------------------------------------

    def _key(self, spec: WorkloadSpec, config: MachineConfig) -> str:
        source_hash = hashlib.sha256(spec.source().encode()).hexdigest()[:12]
        return (f"v{CACHE_VERSION}-{spec.name}-{config.name}"
                f"-i{self.max_instructions}-c{self.max_cycles}-{source_hash}")

    def _lock(self, key: str):
        if self.cache_dir is None:
            return contextlib.nullcontext()
        return FileLock(self.cache_dir / f"{key}.lock")

    def _load(self, key: str) -> Optional[SimStats]:
        if key in self._memory_cache:
            return self._memory_cache[key]
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError, ValueError):
            # Truncated/corrupt cache entry (e.g. a crash mid-write before
            # stores became atomic, or disk trouble): re-simulate.
            if not self.quiet:
                print(f"[cache] discarding malformed entry {path.name}",
                      flush=True)
            return None
        if not isinstance(payload, dict):
            if not self.quiet:
                print(f"[cache] discarding malformed entry {path.name}",
                      flush=True)
            return None
        stats = SimStats.from_dict(payload)
        self._memory_cache[key] = stats
        return stats

    def _store(self, key: str, stats: SimStats) -> None:
        self._memory_cache[key] = stats
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{key}.json"
        # Canonical bytes (sorted keys) + atomic replace: a parallel sweep
        # leaves a cache byte-identical to a serial one, and a reader can
        # never observe a partial file.
        fd, tmp_name = tempfile.mkstemp(dir=str(self.cache_dir),
                                        prefix=f".{key}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(stats.canonical_json())
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise


# -- pool plumbing ----------------------------------------------------------------
# The worker runner is a module global so it survives across tasks in one
# worker process (keeping its memory cache warm) under every start method.

_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _worker_init(settings: Dict) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = ExperimentRunner(**settings)


def _worker_run(pair: Pair) -> Tuple[str, str, Dict, float]:
    workload, config = pair
    started = time.perf_counter()
    stats = _WORKER_RUNNER.run(workload, config)
    return workload, config.name, stats.as_dict(), \
        time.perf_counter() - started


def default_runner(**overrides) -> ExperimentRunner:
    """Runner with the repository-standard cache directory."""
    cache = Path(__file__).resolve().parents[3] / "results"
    settings = {"cache_dir": cache}
    settings.update(overrides)
    return ExperimentRunner(**settings)
