"""Shared experiment driver with on-disk result caching.

Every table/figure experiment needs timing-simulation results for some
(workload x configuration) pairs; many pairs are shared between
experiments (e.g. the base run is the denominator of every speedup).
:class:`ExperimentRunner` runs each pair once and caches the resulting
:class:`SimStats` as JSON, keyed by workload, configuration name, window
size and a hash of the workload source — so editing a workload
invalidates its cached results automatically.

Window sizes default to a laptop-scale budget (the paper simulates 200M
cycles per run on SimpleScalar; a pure-Python model is ~10^4x slower, so
the defaults reproduce shapes rather than absolute magnitudes — see
DESIGN.md section 2).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from ..functional.simulator import FunctionalSimulator
from ..metrics.stats import SimStats
from ..redundancy.reusability import ReusabilityAnalyzer
from ..uarch.config import MachineConfig
from ..uarch.core import OutOfOrderCore
from ..workloads import WorkloadSpec, all_workloads, get_workload

CACHE_VERSION = 2

DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_MAX_CYCLES = 600_000


class ExperimentRunner:
    """Runs (workload x config) timing simulations with JSON caching."""

    def __init__(self,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 cache_dir: Optional[Path] = None,
                 verify: bool = False,
                 quiet: bool = False):
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.verify = verify
        self.quiet = quiet
        self._memory_cache: Dict[str, SimStats] = {}

    # -- timing runs ------------------------------------------------------------

    def run(self, workload: str, config: MachineConfig) -> SimStats:
        """Simulate *workload* under *config* (cached)."""
        spec = get_workload(workload)
        key = self._key(spec, config)
        cached = self._load(key)
        if cached is not None:
            return cached
        if not self.quiet:
            print(f"[run] {workload} / {config.name} "
                  f"({self.max_instructions} insts)", flush=True)
        if self.verify:
            config = dataclasses.replace(config, verify_commits=True)
        core = OutOfOrderCore(config, spec.program())
        core.skip(spec.skip_instructions)
        stats = core.run(max_cycles=self.max_cycles,
                         max_instructions=self.max_instructions)
        stats.workload_name = workload
        self._store(key, stats)
        return stats

    def run_workloads(self, config: MachineConfig,
                      workloads: Optional[Iterable[str]] = None
                      ) -> Dict[str, SimStats]:
        names = list(workloads) if workloads else list(all_workloads())
        return {name: self.run(name, config) for name in names}

    # -- limit-study runs ---------------------------------------------------------

    def run_redundancy(self, workload: str,
                       warmup: int = 60_000,
                       window: int = 60_000,
                       producer_distance: int = 50) -> ReusabilityAnalyzer:
        """Functional-simulation limit study (Figures 8-10). Not cached:
        it is much cheaper than a timing run."""
        spec = get_workload(workload)
        sim = FunctionalSimulator(spec.program())
        sim.skip(spec.skip_instructions + warmup)
        analyzer = ReusabilityAnalyzer(producer_distance=producer_distance)
        for outcome in sim.stream(window):
            analyzer.observe(outcome)
        return analyzer

    # -- caching -------------------------------------------------------------------

    def _key(self, spec: WorkloadSpec, config: MachineConfig) -> str:
        source_hash = hashlib.sha256(spec.source().encode()).hexdigest()[:12]
        return (f"v{CACHE_VERSION}-{spec.name}-{config.name}"
                f"-i{self.max_instructions}-c{self.max_cycles}-{source_hash}")

    def _load(self, key: str) -> Optional[SimStats]:
        if key in self._memory_cache:
            return self._memory_cache[key]
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        if not path.exists():
            return None
        stats = SimStats.from_dict(json.loads(path.read_text()))
        self._memory_cache[key] = stats
        return stats

    def _store(self, key: str, stats: SimStats) -> None:
        self._memory_cache[key] = stats
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self.cache_dir / f"{key}.json"
            path.write_text(json.dumps(stats.as_dict(), indent=1))


def default_runner(**overrides) -> ExperimentRunner:
    """Runner with the repository-standard cache directory."""
    cache = Path(__file__).resolve().parents[3] / "results"
    settings = {"cache_dir": cache}
    settings.update(overrides)
    return ExperimentRunner(**settings)
