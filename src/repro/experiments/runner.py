"""Shared experiment driver with on-disk result caching and parallel fan-out.

Every table/figure experiment needs timing-simulation results for some
(workload x configuration) pairs; many pairs are shared between
experiments (e.g. the base run is the denominator of every speedup).
:class:`ExperimentRunner` runs each pair once and caches the resulting
:class:`SimStats` as JSON, keyed by workload, configuration name, window
size and a hash of the workload source — so editing a workload
invalidates its cached results automatically.

Pairs are independent simulations, so :meth:`ExperimentRunner.run_many`
fans the uncached ones out over a ``multiprocessing`` pool (``jobs=1``
keeps the strictly serial path).  Parallelism is only acceptable under
the repository's **determinism contract**: a simulation's result — and
the cached JSON bytes — must be identical no matter which process ran it
or in what order.  Three mechanisms uphold the contract:

* simulations share no state: each worker rebuilds its program from the
  workload registry and runs a private core;
* cache files are written canonically (sorted keys) and atomically
  (:func:`repro.util.locking.atomic_write_text`), so a cache produced by
  a ``jobs=8`` sweep is byte-identical to a serial one;
* a per-key :class:`~repro.util.locking.FileLock` makes
  concurrent workers (or concurrent CLI invocations) cooperate instead
  of double-running or corrupting an entry.

Warm-up skips are shared through the content-addressed checkpoint
store (:mod:`repro.functional.checkpoint`, default
``<cache>/checkpoints``): the first simulation of a workload captures
the post-skip architectural state and every later configuration,
worker process or invocation restores it — byte-identical statistics
either way, under the same locking discipline as the result cache.

``tests/experiments/test_parallel.py`` asserts all of this.

Window sizes default to a laptop-scale budget (the paper simulates 200M
cycles per run on SimpleScalar; a pure-Python model is ~10^4x slower, so
the defaults reproduce shapes rather than absolute magnitudes — see
DESIGN.md section 2).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..functional.checkpoint import CheckpointStore
from ..functional.simulator import FunctionalSimulator
from ..isa.program import Program
from ..metrics.stats import SimStats
from ..redundancy.reusability import ReusabilityAnalyzer
from ..telemetry.progress import PROGRESS_FILE, ProgressWriter
from ..telemetry.spans import SpanRecorder, span_id, sweep_digest
from ..uarch.config import MachineConfig
from ..workloads import WorkloadSpec, all_workloads, get_workload
from ..util.locking import FileLock, atomic_write_text

CACHE_VERSION = 4

DEFAULT_INSTRUCTIONS = 20_000
DEFAULT_MAX_CYCLES = 600_000

#: A unit of simulation work: (workload name, machine configuration).
Pair = Tuple[str, MachineConfig]


def default_jobs() -> int:
    """Default degree of parallelism: every core the machine has."""
    return os.cpu_count() or 1


class ExperimentRunner:
    """Runs (workload x config) timing simulations with JSON caching.

    ``jobs`` sets the default pool size for :meth:`run_many` /
    :meth:`run_workloads`; ``None`` means "all cores".  ``jobs=1`` never
    spawns a pool.
    """

    def __init__(self,
                 max_instructions: int = DEFAULT_INSTRUCTIONS,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 cache_dir: Optional[Path] = None,
                 verify: bool = False,
                 quiet: bool = False,
                 jobs: Optional[int] = None,
                 mp_start_method: Optional[str] = None,
                 checkpoint_dir: Optional[Path] = None,
                 use_checkpoints: bool = True,
                 manifests: bool = True,
                 manifest_dir: Optional[Path] = None,
                 telemetry_dir: Optional[Path] = None,
                 telemetry_interval: Optional[int] = None,
                 tracing: Optional[bool] = None):
        self.max_instructions = max_instructions
        self.max_cycles = max_cycles
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.verify = verify
        self.quiet = quiet
        self.jobs = jobs
        self.mp_start_method = mp_start_method
        # Run manifests (repro.telemetry.manifest): provenance records
        # for every simulated pair and every sweep.  They live in a
        # subdirectory of the result cache — the determinism contract
        # covers the top-level *.json result bytes only, and manifests
        # carry wallclock/host facts that legitimately differ between
        # byte-identical sweeps.
        if manifest_dir is None and manifests and self.cache_dir is not None:
            manifest_dir = self.cache_dir / "manifests"
        self.manifest_dir = Path(manifest_dir) if manifests and manifest_dir \
            else None
        # Optional per-run interval telemetry: uncached runs attach a
        # TelemetrySink (interval collector only; no event ring buffer)
        # and write <cache key>.jsonl here.  Cache keys are unchanged, so
        # capturing telemetry never invalidates existing results.
        self.telemetry_dir = Path(telemetry_dir) if telemetry_dir else None
        self.telemetry_interval = telemetry_interval
        # Sweep observability (repro.telemetry.spans / .progress):
        # hierarchical sweep -> job -> phase spans plus the live
        # progress protocol behind repro-top.  Defaults to on whenever a
        # telemetry directory is given; pass ``tracing=False`` to
        # capture interval series without spans (or ``tracing=True``
        # without a telemetry_dir for in-memory spans only).  Both are
        # observation-only: spans never enter cache keys and a traced
        # sweep's cache/SimStats bytes are pinned identical to an
        # untraced one (tests/experiments/test_tracing.py).
        self.tracing = ((self.telemetry_dir is not None)
                        if tracing is None else bool(tracing))
        self._spans: Optional[SpanRecorder] = (
            SpanRecorder() if self.tracing else None)
        self._progress: Optional[ProgressWriter] = (
            ProgressWriter(self.telemetry_dir / PROGRESS_FILE)
            if self.tracing and self.telemetry_dir is not None else None)
        self._traced_hits: set = set()
        # Warm-state checkpoints (repro.functional.checkpoint): every
        # configuration of a workload shares one warm-up.  The store
        # defaults to a subdirectory of the result cache so sweeps from
        # any process share it; without a cache_dir it is process-local
        # (memoized captures, nothing persisted).
        if checkpoint_dir is None and self.cache_dir is not None:
            checkpoint_dir = self.cache_dir / "checkpoints"
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir \
            else None
        self.use_checkpoints = use_checkpoints
        self.checkpoints: Optional[CheckpointStore] = (
            CheckpointStore(self.checkpoint_dir) if use_checkpoints
            else None)
        self._memory_cache: Dict[str, SimStats] = {}
        self._program_cache: Dict[str, Program] = {}

    # -- timing runs ------------------------------------------------------------

    def run(self, workload: str, config: MachineConfig) -> SimStats:
        """Simulate *workload* under *config* (cached, lock-protected)."""
        spec = get_workload(workload)
        key = self._key(spec, config)
        cached = self._load(key)
        if cached is not None:
            self._trace_cache_hit(key, workload, config)
            return cached
        with self._lock(key):
            # Another process may have produced the entry while we waited.
            cached = self._load(key)
            if cached is not None:
                self._trace_cache_hit(key, workload, config)
                return cached
            stats = self._traced_job(key, spec, workload, config)
        return stats

    def _traced_job(self, key: str, spec: WorkloadSpec, workload: str,
                    config: MachineConfig) -> SimStats:
        """One uncached cell: job span (with rusage accounting) around
        simulate + store, progress records at the edges."""
        name = f"{workload}/{config.name}"
        self._traced_hits.add(key)
        if self._progress is not None:
            self._progress.job_start(key, workload, config.name)
        if self._spans is not None:
            measure = self._spans.measure("job", key, name, rusage=True)
        else:
            measure = contextlib.nullcontext({})
        started = time.perf_counter()
        with measure as attrs:
            stats = self._simulate(spec, workload, config, key=key)
            elapsed = time.perf_counter() - started
            if self._spans is not None:
                write_phase = self._spans.measure(
                    "phase", key, "cache-write",
                    parent=span_id("job", key))
            else:
                write_phase = contextlib.nullcontext({})
            with write_phase:
                self._store(key, stats)
                self._write_run_manifest(key, spec, workload, config,
                                         stats, cache_hit=False,
                                         wallclock=elapsed)
            attrs.update({
                "workload": workload,
                "config": config.name,
                "cache_hit": False,
                "committed": stats.committed,
                "cycles": stats.cycles,
                "wall_s": round(elapsed, 6),
            })
        if self._progress is not None:
            self._progress.job_done(key, elapsed, stats.committed)
        return stats

    def _trace_cache_hit(self, key: str, workload: str,
                         config: MachineConfig) -> None:
        """Record a cache-served cell, once per key per runner (both
        the span dedup and the progress counters see each cell once,
        however many experiments ask for it)."""
        if not self.tracing or key in self._traced_hits:
            return
        self._traced_hits.add(key)
        if self._spans is not None:
            self._spans.point(
                "job", key, f"{workload}/{config.name}",
                attrs={"workload": workload, "config": config.name,
                       "cache_hit": True})
        if self._progress is not None:
            self._progress.cache_hit(key)

    def run_many(self, pairs: Iterable[Pair],
                 jobs: Optional[int] = None
                 ) -> Dict[Tuple[str, str], SimStats]:
        """Run every (workload, config) pair, fanning uncached ones out.

        Returns ``{(workload, config.name): SimStats}`` for every input
        pair.  Duplicates are deduplicated by cache key; already-cached
        pairs never reach the pool.  With ``jobs=1`` (or one pending
        pair) this is exactly the serial path.
        """
        pairs = list(pairs)
        jobs = self._effective_jobs(jobs)
        sweep_started = time.perf_counter()
        unique: Dict[str, Pair] = {}
        for workload, config in pairs:
            key = self._key(get_workload(workload), config)
            unique.setdefault(key, (workload, config))

        results: Dict[Tuple[str, str], SimStats] = {}
        pending: List[Tuple[str, str, MachineConfig]] = []
        cached_keys: List[str] = []
        for key, (workload, config) in unique.items():
            cached = self._load(key)
            if cached is not None:
                results[(workload, config.name)] = cached
                cached_keys.append(key)
            else:
                pending.append((key, workload, config))

        if self._progress is not None and unique:
            self._progress.sweep_start(
                total=len(unique), cached=len(cached_keys),
                pending=len(pending),
                jobs=1 if len(pending) <= 1 else min(jobs, len(pending)))
        for key in cached_keys:
            workload, config = unique[key]
            self._trace_cache_hit(key, workload, config)

        if len(pending) <= 1 or jobs <= 1:
            for _, workload, config in pending:
                results[(workload, config.name)] = self.run(workload, config)
            self._finish_sweep(unique, results, cached_keys,
                               simulated=len(pending), jobs=1,
                               started=sweep_started)
            return results

        ctx = multiprocessing.get_context(self.mp_start_method)
        settings = {
            "max_instructions": self.max_instructions,
            "max_cycles": self.max_cycles,
            "cache_dir": self.cache_dir,
            "verify": self.verify,
            "quiet": True,  # children are silent; the parent narrates
            "jobs": 1,
            "checkpoint_dir": self.checkpoint_dir,
            "use_checkpoints": self.use_checkpoints,
            "manifests": self.manifest_dir is not None,
            "manifest_dir": self.manifest_dir,
            "telemetry_dir": self.telemetry_dir,
            "telemetry_interval": self.telemetry_interval,
            "tracing": self.tracing,
        }
        total, done = len(pending), 0
        started = time.perf_counter()
        with ctx.Pool(processes=min(jobs, total),
                      initializer=_worker_init,
                      initargs=(settings,)) as pool:
            tasks = [(workload, config) for _, workload, config in pending]
            for workload, cname, payload, elapsed, spans in \
                    pool.imap_unordered(_worker_run, tasks):
                done += 1
                stats = SimStats.from_dict(payload)
                results[(workload, cname)] = stats
                # Spans ride the existing result channel: the worker
                # drains its recorder per task, the parent adopts them
                # under the sweep span in _finish_sweep.
                if self._spans is not None:
                    self._spans.extend(spans)
                if not self.quiet:
                    print(f"[run {done}/{total}] {workload} / {cname} "
                          f"({stats.committed} insts, {elapsed:.1f}s)",
                          flush=True)
        if not self.quiet:
            print(f"[run] {total} simulations on {min(jobs, total)} workers "
                  f"in {time.perf_counter() - started:.1f}s", flush=True)
        # Adopt the children's results into this process's memory cache.
        # The keys count as traced too: a worker already recorded the
        # job span and progress for them, so a later cache-served
        # lookup must not count the cell again.
        for key, workload, config in pending:
            self._memory_cache[key] = results[(workload, config.name)]
            self._traced_hits.add(key)
        self._finish_sweep(unique, results, cached_keys,
                           simulated=len(pending),
                           jobs=min(jobs, total), started=sweep_started)
        return results

    def _finish_sweep(self, unique: Dict[str, Pair],
                      results: Dict[Tuple[str, str], SimStats],
                      cached_keys: List[str], simulated: int, jobs: int,
                      started: float) -> None:
        """Tracing + manifest bookkeeping at the end of one
        :meth:`run_many`.

        Closes the sweep span (adopting every job/phase span recorded
        this sweep, locally or in workers), writes ``spans.jsonl`` and
        the ``sweep_done`` progress record, then backfills
        ``cache_hit=True`` run manifests for pairs that were served
        from a cache populated before manifests existed and writes the
        sweep manifest.  Manifest steps are a no-op without a manifest
        directory.
        """
        if not unique:
            return
        if self._spans is not None:
            self._finish_tracing(unique, simulated, jobs, started)
        if self._progress is not None:
            self._progress.sweep_done(
                total=len(unique), simulated=simulated,
                wall_s=time.perf_counter() - started)
        if self.manifest_dir is None:
            return
        from ..telemetry.manifest import sweep_manifest, write_manifest
        for key in cached_keys:
            if (self.manifest_dir / f"{key}.json").exists():
                continue
            workload, config = unique[key]
            self._write_run_manifest(
                key, get_workload(workload), workload, config,
                results[(workload, config.name)],
                cache_hit=True, wallclock=None)
        manifest = sweep_manifest(
            run_keys=list(unique),
            simulated=simulated,
            cached=len(unique) - simulated,
            jobs=jobs,
            wallclock_seconds=time.perf_counter() - started)
        write_manifest(
            self.manifest_dir / f"sweep-{manifest['sweep_digest']}.json",
            manifest)

    def _finish_tracing(self, unique: Dict[str, Pair], simulated: int,
                        jobs: int, started: float) -> None:
        """Close one sweep's trace: record the sweep span, adopt every
        orphan job/phase record under it, export ``spans.jsonl``.

        The recorder accumulates across :meth:`run_many` calls (e.g.
        ``repro-experiment all`` runs several sweeps) and the export is
        a full atomic rewrite, so the file always holds every span of
        the process so far.
        """
        digest = sweep_digest(list(unique))
        sid = span_id("sweep", digest)
        record = self._spans.point(
            "sweep", digest, "run_many", trace=sid,
            attrs={"total": len(unique), "simulated": simulated,
                   "cached": len(unique) - simulated, "jobs": jobs})
        record["t_start"] = self._spans.rel(started)
        record["duration_s"] = round(time.perf_counter() - started, 6)
        self._spans.adopt(trace=sid, parent=sid)
        if self.telemetry_dir is not None:
            self._spans.write(self.telemetry_dir / "spans.jsonl")

    def _write_run_manifest(self, key: str, spec: WorkloadSpec,
                            workload: str, config: MachineConfig,
                            stats: SimStats, *, cache_hit: bool,
                            wallclock: Optional[float]) -> None:
        if self.manifest_dir is None:
            return
        from ..telemetry.manifest import run_manifest, write_manifest
        if cache_hit or self.checkpoints is None:
            checkpoint = "disabled" if self.checkpoints is None else "cached"
        else:
            checkpoint = self.checkpoints.last_source or "disabled"
        manifest = run_manifest(
            cache_key=key,
            workload=workload,
            config=config,
            program_digest=self._program(spec).canonical_digest(),
            source_sha12=self._source_sha(spec),
            max_instructions=self.max_instructions,
            max_cycles=self.max_cycles,
            cache_hit=cache_hit,
            checkpoint=checkpoint,
            wallclock_seconds=wallclock,
            stats=stats)
        write_manifest(self.manifest_dir / f"{key}.json", manifest)

    def run_workloads(self, config: MachineConfig,
                      workloads: Optional[Iterable[str]] = None,
                      jobs: Optional[int] = None) -> Dict[str, SimStats]:
        names = list(workloads) if workloads else list(all_workloads())
        results = self.run_many([(name, config) for name in names],
                                jobs=jobs)
        return {name: results[(name, config.name)] for name in names}

    def prefetch(self, pairs: Iterable[Pair],
                 jobs: Optional[int] = None) -> None:
        """Warm the cache for *pairs*; later :meth:`run` calls are hits."""
        self.run_many(pairs, jobs=jobs)

    def _simulate(self, spec: WorkloadSpec, workload: str,
                  config: MachineConfig,
                  key: Optional[str] = None) -> SimStats:
        from ..uarch.core import OutOfOrderCore
        if not self.quiet:
            print(f"[run] {workload} / {config.name} "
                  f"({self.max_instructions} insts)", flush=True)
        if self.verify:
            config = dataclasses.replace(config, verify_commits=True)

        # Phase spans nest under the job span via its content-derived
        # id — no recorder plumbing between run() and here is needed.
        def phase(name: str):
            if self._spans is None or key is None:
                return contextlib.nullcontext({})
            return self._spans.measure("phase", key, name,
                                       parent=span_id("job", key))

        with phase("decode"):
            program = self._program(spec)
        core = OutOfOrderCore(config, program)
        # Set the workload name up front so the telemetry context block
        # sees it; the statistics are identical either way.
        core.stats.workload_name = workload
        sink = None
        if self.telemetry_dir is not None:
            # Interval collector only: the event ring buffer is for
            # interactive runs (repro-sim --trace-out), not bulk sweeps.
            sink = core.enable_telemetry(
                interval=self.telemetry_interval, events=False)
            if self._progress is not None and key is not None:
                # Throttled mid-simulation heartbeats so a long cell
                # stays visibly alive in repro-top.
                sink.on_sample = (
                    lambda cycle, committed: self._progress.heartbeat(
                        current=key, cycles=cycle, committed=committed))
        with phase("warm-restore") as warm_attrs:
            if self.checkpoints is not None:
                core.restore_warm(
                    self.checkpoints.get(program, spec.skip_instructions))
                warm_attrs["checkpoint"] = \
                    self.checkpoints.last_source or "disabled"
                if self._progress is not None:
                    self._progress.checkpoint(self.checkpoints.last_source)
            else:
                core.skip(spec.skip_instructions)
                warm_attrs["checkpoint"] = "disabled"
        with phase("simulate"):
            stats = core.run(max_cycles=self.max_cycles,
                             max_instructions=self.max_instructions)
        if sink is not None:
            if key is not None:
                sink.series.context["cache_key"] = key
            self.telemetry_dir.mkdir(parents=True, exist_ok=True)
            name = key if key is not None \
                else f"{workload}-{config.name}"
            sink.write_timeseries(self.telemetry_dir / f"{name}.jsonl")
        return stats

    def _program(self, spec: WorkloadSpec) -> Program:
        """Assemble *spec* once per process (programs are immutable)."""
        program = self._program_cache.get(spec.name)
        if program is None:
            program = self._program_cache[spec.name] = spec.program()
        return program

    def _effective_jobs(self, jobs: Optional[int]) -> int:
        if jobs is None:
            jobs = self.jobs
        if jobs is None:
            jobs = default_jobs()
        return max(1, int(jobs))

    # -- limit-study runs ---------------------------------------------------------

    def run_redundancy(self, workload: str,
                       warmup: int = 60_000,
                       window: int = 60_000,
                       producer_distance: int = 50) -> ReusabilityAnalyzer:
        """Functional-simulation limit study (Figures 8-10). Not cached:
        it is much cheaper than a timing run.  The warm-up (which
        dominates: skip + warmup vs a smaller window) restores from the
        checkpoint store when one is attached."""
        spec = get_workload(workload)
        program = self._program(spec)
        sim = FunctionalSimulator(program)
        total_skip = spec.skip_instructions + warmup
        if self.checkpoints is not None:
            warm = self.checkpoints.get(program, total_skip)
            sim.restore(warm)
            sim.skip(total_skip - warm.executed)
        else:
            sim.skip(total_skip)
        analyzer = ReusabilityAnalyzer(producer_distance=producer_distance)
        for outcome in sim.stream(window):
            analyzer.observe(outcome)
        return analyzer

    # -- caching -------------------------------------------------------------------

    @staticmethod
    def _source_sha(spec: WorkloadSpec) -> str:
        return hashlib.sha256(spec.source().encode()).hexdigest()[:12]

    def _key(self, spec: WorkloadSpec, config: MachineConfig) -> str:
        return (f"v{CACHE_VERSION}-{spec.name}-{config.name}"
                f"-i{self.max_instructions}-c{self.max_cycles}"
                f"-{self._source_sha(spec)}")

    def _lock(self, key: str):
        if self.cache_dir is None:
            return contextlib.nullcontext()
        return FileLock(self.cache_dir / f"{key}.lock")

    def _load(self, key: str) -> Optional[SimStats]:
        if key in self._memory_cache:
            return self._memory_cache[key]
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError, ValueError):
            # Truncated/corrupt cache entry (e.g. a crash mid-write before
            # stores became atomic, or disk trouble): re-simulate.
            if not self.quiet:
                print(f"[cache] discarding malformed entry {path.name}",
                      flush=True)
            return None
        if not isinstance(payload, dict):
            if not self.quiet:
                print(f"[cache] discarding malformed entry {path.name}",
                      flush=True)
            return None
        stats = SimStats.from_dict(payload)
        self._memory_cache[key] = stats
        return stats

    def _store(self, key: str, stats: SimStats) -> None:
        self._memory_cache[key] = stats
        if self.cache_dir is None:
            return
        path = self.cache_dir / f"{key}.json"
        # Canonical bytes (sorted keys) + atomic replace: a parallel sweep
        # leaves a cache byte-identical to a serial one, and a reader can
        # never observe a partial file.
        atomic_write_text(path, stats.canonical_json())


# -- pool plumbing ----------------------------------------------------------------
# The worker runner is a module global so it survives across tasks in one
# worker process (keeping its memory cache warm) under every start method.

_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _worker_init(settings: Dict) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = ExperimentRunner(**settings)


def _worker_run(pair: Pair) -> Tuple[str, str, Dict, float, List[Dict]]:
    workload, config = pair
    started = time.perf_counter()
    stats = _WORKER_RUNNER.run(workload, config)
    # Span records ride the result channel back to the parent, which
    # adopts them under its sweep span; draining per task keeps the
    # payload proportional to the work just done.
    spans = (_WORKER_RUNNER._spans.drain()
             if _WORKER_RUNNER._spans is not None else [])
    return workload, config.name, stats.as_dict(), \
        time.perf_counter() - started, spans


def default_runner(**overrides) -> ExperimentRunner:
    """Runner with the repository-standard cache directory."""
    cache = Path(__file__).resolve().parents[3] / "results"
    settings = {"cache_dir": cache}
    settings.update(overrides)
    return ExperimentRunner(**settings)
