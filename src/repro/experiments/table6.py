"""Table 6: how many times dynamic instructions execute under VP.

Measured on VP_Magic ME-SB with 1-cycle verification latency, as in the
paper.  The expectation: very few instructions execute more than twice,
which is why NME (restricting re-execution) barely matters.
"""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..uarch.config import BranchPolicy, ReexecPolicy
from ..workloads import all_workloads
from .configs import vp_magic
from .runner import ExperimentRunner, Pair

_PAPER = {"go": (94.4, 4.9, 0.7), "m88ksim": (97.6, 2.3, 0.1),
          "ijpeg": (98.9, 1.0, 0.1), "perl": (98.3, 1.6, 0.2),
          "vortex": (98.5, 1.5, 0.0), "gcc": (96.3, 3.3, 0.4),
          "compress": (99.6, 0.4, 0.0)}


def _config():
    return vp_magic(ReexecPolicy.MULTIPLE, BranchPolicy.SPECULATIVE,
                    verify_latency=1)


def pairs() -> List[Pair]:
    return [(name, _config()) for name in all_workloads()]


def run(runner: ExperimentRunner) -> Report:
    runner.prefetch(pairs())
    config = _config()
    report = Report(
        title="Table 6: % of dynamic instructions executed once / twice / "
              "three+ times (VP_Magic ME-SB, 1-cycle verification)",
        headers=["bench", "x1", "x2", "x3+",
                 "paper x1", "paper x2", "paper x3"],
    )
    for name in all_workloads():
        stats = runner.run(name, config)
        total = sum(stats.exec_count_histogram.values())
        once = stats.exec_count_fraction(1)
        twice = stats.exec_count_fraction(2)
        more = (sum(count for times, count
                    in stats.exec_count_histogram.items() if times >= 3)
                / total) if total else 0.0
        paper = _PAPER[name]
        report.add_row(name, 100.0 * once, 100.0 * twice, 100.0 * more,
                       *paper)
    report.add_note("expectation: <0.5%% executed three or more times for "
                    "most benchmarks, so NME gains little")
    return report
