"""Figure 4: branch resolution latency, normalised to the base machine.

Reused branches resolve at decode (latency 0); SB resolves at execute;
NSB waits for operands to become non-value-speculative.  Parts (a)/(b)
use 0- and 1-cycle VP-verification latency; the IR bar is the same in
both (the reuse test runs in parallel with decode).
"""

from __future__ import annotations

from typing import List

from ..metrics.report import Report
from ..uarch.config import BranchPolicy, PredictorKind, ReexecPolicy
from ..workloads import all_workloads
from .configs import BASE, IR_EARLY, short_vp_name, vp_config, vp_matrix
from .runner import ExperimentRunner, Pair


def pairs_for(verify_latency: int = 0,
              kind: PredictorKind = PredictorKind.MAGIC) -> List[Pair]:
    configs = [BASE, IR_EARLY] + vp_matrix(kind, verify_latency)
    return [(name, config) for name in all_workloads()
            for config in configs]


def pairs() -> List[Pair]:
    return pairs_for(0) + pairs_for(1)


def run(runner: ExperimentRunner, verify_latency: int = 0,
        kind: PredictorKind = PredictorKind.MAGIC) -> Report:
    runner.prefetch(pairs_for(verify_latency, kind))
    part = "a" if verify_latency == 0 else "b"
    configs = vp_matrix(kind, verify_latency)
    report = Report(
        title=f"Figure 4({part}): branch resolution latency normalised to "
              f"base ({verify_latency}-cycle VP-verification)",
        headers=["bench", "base (cycles)"]
                + [short_vp_name(c) for c in configs] + ["reuse-n+d"],
    )
    for name in all_workloads():
        base = runner.run(name, BASE)
        baseline = base.mean_branch_resolution_latency or 1.0
        cells: List[float] = []
        for config in configs:
            stats = runner.run(name, config)
            cells.append(stats.mean_branch_resolution_latency / baseline)
        reuse = runner.run(name, IR_EARLY)
        cells.append(reuse.mean_branch_resolution_latency / baseline)
        report.add_row(name, baseline, *cells)
    report.add_note("expect: IR lowest; SB < NSB; the gap grows with "
                    "1-cycle verification latency")
    return report


def run_both(runner: ExperimentRunner) -> List[Report]:
    runner.prefetch(pairs())
    return [run(runner, 0), run(runner, 1)]
