"""The Value Prediction Table (VPT).

Section 4.1.3: 16K entries, 4-way set associative with LRU replacement —
i.e. up to four value *instances* per static instruction — each instance
carrying a 2-bit confidence counter.  Only confident instances are used
for prediction.  The VP_LVP variant uses the same structure with one
instance per instruction.

Result and address predictions share the table's capacity: a memory
instruction's address instances are stored under a distinct key derived
from its PC (keys are ``(pc << 1) | kind``), so total storage matches the
paper's single 16K-entry budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..uarch.config import VPConfig


@dataclass
class VPTInstance:
    """One stored value instance with its confidence counter."""

    tag: int
    value: int
    confidence: int


KIND_RESULT = 0
KIND_ADDRESS = 1


class ValuePredictionTable:
    """Set-associative instance store with per-instance confidence."""

    def __init__(self, config: VPConfig):
        self.config = config
        self.assoc = config.associativity
        self.num_sets = max(1, config.entries // self.assoc)
        self.set_mask = self.num_sets - 1
        if self.num_sets & self.set_mask:
            raise ValueError("VPT set count must be a power of two")
        # MRU-first lists of instances.
        self.sets: List[List[VPTInstance]] = [[] for _ in range(self.num_sets)]

    @staticmethod
    def key(pc: int, kind: int) -> int:
        return ((pc >> 2) << 1) | kind

    def _set_for(self, key: int) -> List[VPTInstance]:
        return self.sets[key & self.set_mask]

    def confident_instances(self, pc: int, kind: int) -> List[VPTInstance]:
        """All instances for this instruction at or above the threshold."""
        return self.confident_for_key(self.key(pc, kind))

    def confident_for_key(self, key: int) -> List[VPTInstance]:
        """Like :meth:`confident_instances` with a pre-computed key."""
        threshold = self.config.confidence_threshold
        return [inst for inst in self.sets[key & self.set_mask]
                if inst.tag == key and inst.confidence >= threshold]

    def instances(self, pc: int, kind: int) -> List[VPTInstance]:
        key = self.key(pc, kind)
        return [inst for inst in self._set_for(key) if inst.tag == key]

    def update(self, pc: int, kind: int, actual: int,
               mispredicted: Optional[int] = None) -> None:
        """Train the table with the committed *actual* value.

        * the instance holding *actual* gains confidence (and becomes MRU);
          if absent it is inserted over the LRU victim with confidence 1;
        * when a wrong prediction *mispredicted* was made, the instance
          that supplied it loses confidence.
        """
        key = self.key(pc, kind)
        ways = self._set_for(key)

        if mispredicted is not None and mispredicted != actual:
            for inst in ways:
                if inst.tag == key and inst.value == mispredicted:
                    inst.confidence = max(0, inst.confidence - 1)
                    break

        for index, inst in enumerate(ways):
            if inst.tag == key and inst.value == actual:
                inst.confidence = min(self.config.max_confidence,
                                      inst.confidence + 1)
                ways.insert(0, ways.pop(index))
                return
        ways.insert(0, VPTInstance(key, actual, 1))
        if len(ways) > self.assoc:
            ways.pop()
