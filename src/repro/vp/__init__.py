"""Value prediction: the VPT structure and the predictor zoo.

Predictors: VP_Magic / VP_LVP (the paper's Section 4.1.1 pair), the
two-delta stride predictor, the order-2 FCM predictor, and the
confidence-gated stride/LVP/FCM hybrid selector.
"""

from .fcm import FCMPredictor, FCMTable
from .hybrid_select import HybridSelectPredictor
from .predictors import ValuePredictor, make_predictor
from .stride import StrideEntry, StridePredictor, StrideTable
from .table import KIND_ADDRESS, KIND_RESULT, ValuePredictionTable, VPTInstance

__all__ = [
    "ValuePredictor",
    "make_predictor",
    "StridePredictor",
    "StrideTable",
    "StrideEntry",
    "FCMPredictor",
    "FCMTable",
    "HybridSelectPredictor",
    "ValuePredictionTable",
    "VPTInstance",
    "KIND_RESULT",
    "KIND_ADDRESS",
]
