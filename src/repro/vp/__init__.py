"""Value prediction: VPT structure and VP_Magic / VP_LVP predictors."""

from .predictors import ValuePredictor, make_predictor
from .stride import StrideEntry, StridePredictor, StrideTable
from .table import KIND_ADDRESS, KIND_RESULT, ValuePredictionTable, VPTInstance

__all__ = [
    "ValuePredictor",
    "make_predictor",
    "StridePredictor",
    "StrideTable",
    "StrideEntry",
    "ValuePredictionTable",
    "VPTInstance",
    "KIND_RESULT",
    "KIND_ADDRESS",
]
