"""Stride value predictor (extension).

The paper's Figure 8 classifies a slice of redundancy as *derivable* —
results that fall on a stride, which instruction reuse can never capture
(the operands are new every time) but value prediction in principle can.
The VP_Magic/VP_LVP predictors the paper evaluates do not exploit
strides either; this two-delta stride predictor (Eickemeyer & Vassiliadis
style, as cited in the VP literature the paper builds on) covers exactly
that slice, so the repository can quantify how much of the derivable
category is actually reachable.

Per-instruction state: last value, confirmed stride, candidate stride,
and a 2-bit confidence counter.  A new stride must be seen twice in a
row (two-delta rule) before it replaces the confirmed stride, which
keeps one-off jumps (e.g. loop exits) from destroying a learned pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa.opcodes import u32
from ..uarch.config import VPConfig


@dataclass
class StrideEntry:
    """Two-delta stride state for one static instruction."""

    tag: int
    last_value: int
    stride: int = 0  # confirmed stride
    candidate: int = 0  # last observed delta (two-delta rule)
    confidence: int = 0
    # Predictions issued for instances that have not committed yet: a
    # tight loop keeps several iterations in flight, so the k-th
    # outstanding prediction must be last + (k+1) * stride.
    outstanding: int = 0


class StrideTable:
    """Set-associative table of :class:`StrideEntry` (LRU)."""

    def __init__(self, config: VPConfig):
        self.config = config
        self.assoc = max(1, config.associativity)
        self.num_sets = max(1, config.entries // self.assoc)
        self.set_mask = self.num_sets - 1
        if self.num_sets & self.set_mask:
            raise ValueError("stride table sets must be a power of two")
        self.sets: List[List[StrideEntry]] = [[] for _ in
                                              range(self.num_sets)]

    @staticmethod
    def key(pc: int, kind: int) -> int:
        return ((pc >> 2) << 1) | kind

    def _set_for(self, key: int) -> List[StrideEntry]:
        return self.sets[key & self.set_mask]

    def find(self, pc: int, kind: int) -> Optional[StrideEntry]:
        return self.find_key(self.key(pc, kind))

    def find_key(self, key: int) -> Optional[StrideEntry]:
        """Like :meth:`find` with a pre-computed key."""
        for entry in self.sets[key & self.set_mask]:
            if entry.tag == key:
                return entry
        return None

    def update(self, pc: int, kind: int, actual: int,
               was_predicted: bool = False) -> None:
        key = self.key(pc, kind)
        ways = self._set_for(key)
        for index, entry in enumerate(ways):
            if entry.tag == key:
                delta = u32(actual - entry.last_value)
                if delta == entry.stride:
                    entry.confidence = min(self.config.max_confidence,
                                           entry.confidence + 1)
                elif delta == entry.candidate:
                    # two-delta: the new stride confirmed itself
                    entry.stride = delta
                    entry.confidence = 1
                else:
                    entry.candidate = delta
                    entry.confidence = max(0, entry.confidence - 1)
                entry.last_value = actual
                if was_predicted:
                    # one in-flight prediction retired; unpredicted
                    # instances never incremented the counter
                    entry.outstanding = max(0, entry.outstanding - 1)
                ways.insert(0, ways.pop(index))
                return
        ways.insert(0, StrideEntry(key, actual))
        if len(ways) > self.assoc:
            ways.pop()


class StridePredictor:
    """Drop-in predictor with the :class:`ValuePredictor` interface."""

    KIND_RESULT = 0
    KIND_ADDRESS = 1

    def __init__(self, config: VPConfig):
        self.config = config
        self.table = StrideTable(config)

    def predict_result(self, pc: int, oracle: int,
                       key: Optional[int] = None) -> Optional[int]:
        if key is None:
            key = self.table.key(pc, self.KIND_RESULT)
        return self._predict(key)

    def predict_address(self, pc: int, oracle: int,
                        key: Optional[int] = None) -> Optional[int]:
        if not self.config.predict_addresses:
            return None
        if key is None:
            key = self.table.key(pc, self.KIND_ADDRESS)
        return self._predict(key)

    def _predict(self, key: int) -> Optional[int]:
        entry = self.table.find_key(key)
        if entry is None \
                or entry.confidence < self.config.confidence_threshold:
            return None
        entry.outstanding += 1
        return u32(entry.last_value + entry.stride * entry.outstanding)

    def abort_result(self, pc: int) -> None:
        """A predicted instance was squashed before committing."""
        self._abort(pc, self.KIND_RESULT)

    def abort_address(self, pc: int) -> None:
        self._abort(pc, self.KIND_ADDRESS)

    def _abort(self, pc: int, kind: int) -> None:
        entry = self.table.find(pc, kind)
        if entry is not None:
            entry.outstanding = max(0, entry.outstanding - 1)

    def train_result(self, pc: int, actual: int,
                     predicted: Optional[int]) -> None:
        self.table.update(pc, self.KIND_RESULT, actual,
                          was_predicted=predicted is not None)

    def train_address(self, pc: int, actual: int,
                      predicted: Optional[int]) -> None:
        if self.config.predict_addresses:
            self.table.update(pc, self.KIND_ADDRESS, actual,
                              was_predicted=predicted is not None)

    def telemetry_snapshot(self) -> dict:
        """End-of-run predictor facts for telemetry context blocks."""
        return {
            "kind": self.config.kind.value,
            "stride_entries": sum(len(ways) for ways in self.table.sets),
        }
