"""VP_Magic and VP_LVP value predictors (Section 4.1.1).

``VP_Magic`` stores the last *n* unique results of an instruction (n = VPT
associativity = 4) with 2-bit confidence counters and uses an *oracle
selection policy*: if the correct result is among the stored confident
instances, that instance is the prediction; otherwise the most confident
instance is used.  The paper adopts this policy to make VP comparable to
IR (whose reuse test also selects the correct instance from up to four),
and notes it is realistic (Wang & Franklin's hybrid predictor selects
among n buffered values accurately).

``VP_LVP`` is the classic last-value predictor: one instance per
instruction, predicted when confident.

Because the timing core executes instructions functionally at dispatch,
the "correct result" needed by the oracle selection is simply the
dispatch-time outcome — no separate oracle simulator is required.
"""

from __future__ import annotations

from typing import Optional

from ..uarch.config import PredictorKind, VPConfig
from .table import KIND_ADDRESS, KIND_RESULT, ValuePredictionTable


class ValuePredictor:
    """Front-end interface of the value predictor used by the core."""

    def __init__(self, config: VPConfig):
        self.config = config
        self.table = ValuePredictionTable(config)
        self.result_lookups = 0
        self.addr_lookups = 0

    # -- prediction (dispatch time) ----------------------------------------------

    def predict_result(self, pc: int, oracle: int,
                       key: Optional[int] = None) -> Optional[int]:
        """Predict the result of the instruction at *pc*, or ``None``.

        *oracle* is the correct result along the current (possibly wrong)
        path, used only for VP_Magic's oracle selection policy.  *key* is
        the optional pre-computed table key (``StaticOp.vp_result_key``);
        it saves re-deriving the key from the PC on the hot path.
        """
        self.result_lookups += 1
        if key is None:
            key = self.table.key(pc, KIND_RESULT)
        return self._predict(key, oracle)

    def predict_address(self, pc: int, oracle: int,
                        key: Optional[int] = None) -> Optional[int]:
        """Predict the effective address of the memory op at *pc*."""
        if not self.config.predict_addresses:
            return None
        self.addr_lookups += 1
        if key is None:
            key = self.table.key(pc, KIND_ADDRESS)
        return self._predict(key, oracle)

    def _predict(self, key: int, oracle: int) -> Optional[int]:
        confident = self.table.confident_for_key(key)
        if not confident:
            return None
        if self.config.kind == PredictorKind.MAGIC:
            for instance in confident:
                if instance.value == oracle:
                    return instance.value
        # Most confident instance; MRU breaks ties (list is MRU-first).
        best = max(confident, key=lambda inst: inst.confidence)
        return best.value

    # -- training (commit time) -----------------------------------------------------

    def train_result(self, pc: int, actual: int,
                     predicted: Optional[int]) -> None:
        self.table.update(pc, KIND_RESULT, actual, predicted)

    def train_address(self, pc: int, actual: int,
                      predicted: Optional[int]) -> None:
        if self.config.predict_addresses:
            self.table.update(pc, KIND_ADDRESS, actual, predicted)

    def abort_result(self, pc: int) -> None:
        """Squash notification; the table-based predictors are stateless
        with respect to in-flight predictions."""

    def abort_address(self, pc: int) -> None:
        pass

    # -- observability ----------------------------------------------------------------

    def telemetry_snapshot(self) -> dict:
        """End-of-run predictor facts for telemetry context blocks."""
        return {
            "kind": self.config.kind.value,
            "result_lookups": self.result_lookups,
            "addr_lookups": self.addr_lookups,
            "vpt_instances": sum(len(ways) for ways in self.table.sets),
        }


class PerfectPredictor:
    """Oracle predictor: every eligible instruction predicted correctly.

    The paper's footnote 3 notes that the measured redundancy (Figure 8)
    is "a rough upper bound on the number of instructions that can be
    value predicted"; this predictor realises the bound in the timing
    model, so limit studies can compare realisable speedup against the
    realistic schemes.  It deliberately masks the "real life" effects the
    paper wants visible (Section 4.1), so it appears only in ablations.
    """

    def __init__(self, config: VPConfig):
        self.config = config

    def predict_result(self, pc: int, oracle: int,
                       key: Optional[int] = None):
        return oracle

    def predict_address(self, pc: int, oracle: int,
                        key: Optional[int] = None):
        return oracle if self.config.predict_addresses else None

    def train_result(self, pc: int, actual: int, predicted) -> None:
        pass

    def train_address(self, pc: int, actual: int, predicted) -> None:
        pass

    def abort_result(self, pc: int) -> None:
        pass

    def abort_address(self, pc: int) -> None:
        pass

    def telemetry_snapshot(self) -> dict:
        return {"kind": self.config.kind.value}


def make_predictor(config: VPConfig):
    """Factory: the right predictor object for *config.kind*."""
    if config.kind == PredictorKind.STRIDE:
        from .stride import StridePredictor
        return StridePredictor(config)
    if config.kind == PredictorKind.FCM:
        from .fcm import FCMPredictor
        return FCMPredictor(config)
    if config.kind == PredictorKind.HYBRID_SELECT:
        from .hybrid_select import HybridSelectPredictor
        return HybridSelectPredictor(config)
    if config.kind == PredictorKind.PERFECT:
        return PerfectPredictor(config)
    return ValuePredictor(config)
