"""Confidence-gated hybrid value predictor (stride / LVP / FCM selector).

Wang & Franklin-style component arbitration: three component predictors
run side by side and a per-instruction selector with one 2-bit
confidence counter *per component* decides which one (if any) supplies
the prediction.  At commit, every component is scored against the
actual value — the counter of a component that would have been right
goes up, a wrong one goes down — so the selector converges on the
component whose model matches each static instruction's value stream:
LVP for constants, stride for arithmetic sequences (the paper's
*derivable* slice), FCM for repeating patterns (the context-sensitive
slice).  A prediction is made only when the winning component's
selector counter has reached ``confidence_threshold``, gating early
wild guesses exactly as the paper's 2-bit VPT counters do.

This is a zoo predictor, not an equal-storage design point: each
component keeps its own ``config.entries``-sized table (the ablation
experiments own storage sweeps).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..isa.opcodes import u32
from ..uarch.config import VPConfig
from .fcm import FCMTable
from .stride import StrideTable
from .table import ValuePredictionTable

KIND_RESULT = 0
KIND_ADDRESS = 1

#: Fixed arbitration order; earlier wins selector-confidence ties.
COMPONENTS = ("stride", "lvp", "fcm")


class HybridSelectPredictor:
    """Drop-in predictor with the :class:`ValuePredictor` interface."""

    def __init__(self, config: VPConfig):
        self.config = config
        self.stride = StrideTable(config)
        # The LVP component is a one-instance-per-instruction VPT.
        self.lvp = ValuePredictionTable(
            dataclasses.replace(config, associativity=1))
        self.fcm = FCMTable(config)
        # Selector state, keyed like the component tables: one small
        # confidence vector per static instruction (bounded by the
        # program's static footprint, like the decode table).
        self.selector: Dict[int, List[int]] = {}
        # In-flight predictions per key (any component): the stride
        # candidate for the k-th outstanding instance is
        # last + (k+1) * stride, exactly as the standalone predictor.
        self.outstanding: Dict[int, int] = {}
        self.component_predictions = {name: 0 for name in COMPONENTS}

    @staticmethod
    def key(pc: int, kind: int) -> int:
        # Shared key layout of the VPT/stride/FCM tables.
        return ((pc >> 2) << 1) | kind

    # -- component candidates (read-only peeks) ---------------------------------

    def _candidates(self, key: int,
                    offset: int) -> Tuple[Optional[int], ...]:
        """(stride, lvp, fcm) candidate values; ``None`` = no opinion.

        *offset* is how many strides ahead of the last committed value
        the candidate should be: 1 at train time (the committing
        instance), ``outstanding + 1`` at predict time.
        """
        threshold = self.config.confidence_threshold
        entry = self.stride.find_key(key)
        stride_candidate = None
        if entry is not None and entry.confidence >= threshold:
            stride_candidate = u32(entry.last_value
                                   + entry.stride * offset)
        confident = self.lvp.confident_for_key(key)
        lvp_candidate = confident[0].value if confident else None
        return stride_candidate, lvp_candidate, self.fcm.peek(key, offset)

    def _predict(self, key: int) -> Optional[int]:
        offset = self.outstanding.get(key, 0) + 1
        candidates = self._candidates(key, offset)
        if all(candidate is None for candidate in candidates):
            return None
        confidences = self.selector.get(key)
        if confidences is None:
            confidences = self.selector[key] = [1] * len(COMPONENTS)
        best_index: Optional[int] = None
        for index, candidate in enumerate(candidates):
            if candidate is None:
                continue
            if best_index is None \
                    or confidences[index] > confidences[best_index]:
                best_index = index
        if best_index is None \
                or confidences[best_index] < self.config.confidence_threshold:
            return None
        self.component_predictions[COMPONENTS[best_index]] += 1
        self.outstanding[key] = self.outstanding.get(key, 0) + 1
        return candidates[best_index]

    # -- prediction (dispatch time) ----------------------------------------------

    def predict_result(self, pc: int, oracle: int,
                       key: Optional[int] = None) -> Optional[int]:
        if key is None:
            key = self.key(pc, KIND_RESULT)
        return self._predict(key)

    def predict_address(self, pc: int, oracle: int,
                        key: Optional[int] = None) -> Optional[int]:
        if not self.config.predict_addresses:
            return None
        if key is None:
            key = self.key(pc, KIND_ADDRESS)
        return self._predict(key)

    # -- training (commit time) -----------------------------------------------------

    def _train(self, pc: int, kind: int, actual: int,
               predicted: Optional[int]) -> None:
        key = self.key(pc, kind)
        # Score every component on what it would have predicted for the
        # committing instance (offset 1 past the last committed value).
        candidates = self._candidates(key, 1)
        confidences = self.selector.get(key)
        if confidences is None:
            confidences = self.selector[key] = [1] * len(COMPONENTS)
        maximum = self.config.max_confidence
        for index, candidate in enumerate(candidates):
            if candidate is None:
                continue
            if candidate == actual:
                confidences[index] = min(maximum, confidences[index] + 1)
            else:
                confidences[index] = max(0, confidences[index] - 1)
        # Train the components themselves.
        self.stride.update(pc, kind, actual)
        self.lvp.update(pc, kind, actual,
                        candidates[1] if candidates[1] is not None
                        and candidates[1] != actual else None)
        self.fcm.train(key, actual)
        if predicted is not None:
            pending = self.outstanding.get(key, 0)
            if pending > 1:
                self.outstanding[key] = pending - 1
            else:
                self.outstanding.pop(key, None)

    def train_result(self, pc: int, actual: int,
                     predicted: Optional[int]) -> None:
        self._train(pc, KIND_RESULT, actual, predicted)

    def train_address(self, pc: int, actual: int,
                      predicted: Optional[int]) -> None:
        if self.config.predict_addresses:
            self._train(pc, KIND_ADDRESS, actual, predicted)

    # -- squash notifications ---------------------------------------------------

    def _abort(self, key: int) -> None:
        pending = self.outstanding.get(key, 0)
        if pending > 1:
            self.outstanding[key] = pending - 1
        elif pending:
            self.outstanding.pop(key, None)

    def abort_result(self, pc: int) -> None:
        self._abort(self.key(pc, KIND_RESULT))

    def abort_address(self, pc: int) -> None:
        self._abort(self.key(pc, KIND_ADDRESS))

    # -- observability ----------------------------------------------------------------

    def telemetry_snapshot(self) -> dict:
        """End-of-run predictor facts for telemetry context blocks."""
        snapshot = {
            "kind": self.config.kind.value,
            "selector_entries": len(self.selector),
        }
        for name in COMPONENTS:
            snapshot[f"{name}_predictions"] = \
                self.component_predictions[name]
        return snapshot
