"""Order-2 finite-context-method (FCM) value predictor (extension).

Sazeides & Smith's two-level design: a first-level table records, per
static instruction, the last *order* committed values (the *context*);
a second-level table maps a hash of that context to the value that
followed it last time, with a 2-bit confidence counter.  Where the
last-value and stride predictors capture constant and arithmetic
sequences, FCM captures *repeating patterns* — exactly the
context-sensitive slice of the paper's Figure 8 redundancy taxonomy
that neither VP_LVP nor a stride predictor can reach (e.g. a result
alternating between two values trains FCM to full confidence while
destroying a last-value predictor).

Both levels are finite and direct-mapped, so the predictor is a fixed
hardware budget like the paper's VPT: ``config.entries`` context slots
and ``config.entries`` value slots, tags checked on both.  All hashing
is explicit integer mixing (never the salted builtin ``hash``), so
predictions are bit-reproducible across processes — the determinism
contract the sweep cache depends on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..uarch.config import VPConfig

# Knuth/Murmur-style 32-bit mixing constants.
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77
_MIX_C = 0xC2B2AE3D
_MASK32 = 0xFFFFFFFF


def mix_context(key: int, values: Tuple[int, ...]) -> int:
    """Deterministic 32-bit hash of (table key, recent values)."""
    acc = (key * _MIX_A) & _MASK32
    for value in values:
        acc ^= (value * _MIX_B) & _MASK32
        acc = ((acc << 13 | acc >> 19) & _MASK32) * _MIX_C & _MASK32
    return acc


class FCMTable:
    """Two-level finite-context state shared by result/address streams.

    Level 1 (contexts) and level 2 (values) are separate direct-mapped
    arrays of ``config.entries`` slots each; a level-1 conflict evicts
    the old context, a level-2 conflict steals the slot only once the
    incumbent's confidence has decayed to zero.
    """

    KIND_RESULT = 0
    KIND_ADDRESS = 1

    def __init__(self, config: VPConfig):
        self.config = config
        self.order = max(1, config.fcm_order)
        size = max(1, config.entries)
        self.index_mask = size - 1
        if size & self.index_mask:
            raise ValueError("FCM table sizes must be a power of two")
        # Level 1: per-static-instruction context (tag, recent values).
        self.ctx_tags: List[Optional[int]] = [None] * size
        self.ctx_values: List[Tuple[int, ...]] = [()] * size
        # Level 2: context hash -> (tag, predicted value, confidence).
        self.val_tags: List[Optional[int]] = [None] * size
        self.val_values: List[int] = [0] * size
        self.val_conf: List[int] = [0] * size

    @staticmethod
    def key(pc: int, kind: int) -> int:
        # Shared key layout of the VPT/stride tables: (pc>>2)<<1 | kind.
        return ((pc >> 2) << 1) | kind

    # -- level 1 ----------------------------------------------------------------

    def context(self, key: int) -> Optional[Tuple[int, ...]]:
        """The complete context for *key*, or ``None`` if not yet built."""
        slot = key & self.index_mask
        if self.ctx_tags[slot] != key:
            return None
        values = self.ctx_values[slot]
        return values if len(values) == self.order else None

    def push_value(self, key: int, value: int) -> None:
        """Shift *value* into the context (evicting on a tag conflict)."""
        slot = key & self.index_mask
        if self.ctx_tags[slot] == key:
            self.ctx_values[slot] = \
                (self.ctx_values[slot] + (value,))[-self.order:]
        else:
            self.ctx_tags[slot] = key
            self.ctx_values[slot] = (value,)

    # -- level 2 ----------------------------------------------------------------

    def peek(self, key: int, ahead: int = 1) -> Optional[int]:
        """The confident value *ahead* steps past *key*'s context.

        ``ahead=1`` is the plain FCM lookup.  Larger values chain the
        level-2 table forward through its own predictions — the FCM
        analogue of the stride predictor's ``outstanding`` multiplier:
        with k predicted instances still in flight, the next instance's
        context is the committed context advanced by those k predicted
        values, so a tight loop with several iterations in flight stays
        on-pattern.  Every link must be confident; any miss aborts the
        whole prediction.
        """
        context = self.context(key)
        if context is None:
            return None
        value: Optional[int] = None
        for _ in range(max(1, ahead)):
            value = self._lookup(key, context)
            if value is None:
                return None
            context = (context + (value,))[-self.order:]
        return value

    def _lookup(self, key: int, context: Tuple[int, ...]) -> Optional[int]:
        signature = mix_context(key, context)
        slot = signature & self.index_mask
        if self.val_tags[slot] != signature:
            return None
        if self.val_conf[slot] < self.config.confidence_threshold:
            return None
        return self.val_values[slot]

    def train(self, key: int, actual: int) -> None:
        """Record that *actual* followed the current context, then shift
        it into the context."""
        context = self.context(key)
        if context is not None:
            signature = mix_context(key, context)
            slot = signature & self.index_mask
            if self.val_tags[slot] == signature:
                if self.val_values[slot] == actual:
                    self.val_conf[slot] = min(self.config.max_confidence,
                                              self.val_conf[slot] + 1)
                else:
                    self.val_conf[slot] -= 1
                    if self.val_conf[slot] <= 0:
                        self.val_values[slot] = actual
                        self.val_conf[slot] = 1
            elif self.val_conf[slot] <= 0 or self.val_tags[slot] is None:
                self.val_tags[slot] = signature
                self.val_values[slot] = actual
                self.val_conf[slot] = 1
            else:
                # Conflict with a still-confident incumbent: decay it.
                self.val_conf[slot] -= 1
        self.push_value(key, actual)

    def occupied_contexts(self) -> int:
        return sum(1 for tag in self.ctx_tags if tag is not None)


class FCMPredictor:
    """Drop-in predictor with the :class:`ValuePredictor` interface."""

    def __init__(self, config: VPConfig):
        self.config = config
        self.table = FCMTable(config)
        # Predictions issued for instances that have not committed yet,
        # per key: the k-th outstanding prediction chains the level-2
        # table k+1 links past the committed context (see peek()).
        self.outstanding: Dict[int, int] = {}

    def _predict(self, key: int) -> Optional[int]:
        value = self.table.peek(key, self.outstanding.get(key, 0) + 1)
        if value is not None:
            self.outstanding[key] = self.outstanding.get(key, 0) + 1
        return value

    def predict_result(self, pc: int, oracle: int,
                       key: Optional[int] = None) -> Optional[int]:
        if key is None:
            key = self.table.key(pc, FCMTable.KIND_RESULT)
        return self._predict(key)

    def predict_address(self, pc: int, oracle: int,
                        key: Optional[int] = None) -> Optional[int]:
        if not self.config.predict_addresses:
            return None
        if key is None:
            key = self.table.key(pc, FCMTable.KIND_ADDRESS)
        return self._predict(key)

    def _retire(self, key: int) -> None:
        pending = self.outstanding.get(key, 0)
        if pending > 1:
            self.outstanding[key] = pending - 1
        elif pending:
            self.outstanding.pop(key, None)

    def train_result(self, pc: int, actual: int,
                     predicted: Optional[int]) -> None:
        key = self.table.key(pc, FCMTable.KIND_RESULT)
        self.table.train(key, actual)
        if predicted is not None:
            self._retire(key)

    def train_address(self, pc: int, actual: int,
                      predicted: Optional[int]) -> None:
        if self.config.predict_addresses:
            key = self.table.key(pc, FCMTable.KIND_ADDRESS)
            self.table.train(key, actual)
            if predicted is not None:
                self._retire(key)

    def abort_result(self, pc: int) -> None:
        """A predicted instance was squashed before committing."""
        self._retire(self.table.key(pc, FCMTable.KIND_RESULT))

    def abort_address(self, pc: int) -> None:
        self._retire(self.table.key(pc, FCMTable.KIND_ADDRESS))

    def telemetry_snapshot(self) -> dict:
        """End-of-run predictor facts for telemetry context blocks."""
        return {
            "kind": self.config.kind.value,
            "fcm_order": self.table.order,
            "fcm_contexts": self.table.occupied_contexts(),
        }
