"""Workload registry: the seven SPECint95-analog programs.

The paper evaluates go, m88ksim, ijpeg, perl, vortex, gcc and compress
(Table 2).  We cannot ship SPEC binaries, so each analog is a hand-written
assembly program that imitates the *computational character* of its
namesake — the properties the paper's effects depend on:

* result redundancy (SPECint: >75% of dynamic instructions repeat results),
* branch predictability in the right band (Table 2: 75.8%..97.8%),
* memory behaviour (e.g. compress reuses load addresses, not results),
* call/return structure (Table 2 return rates ~100%).

Each spec records the paper's Table 2/Table 3 reference numbers so the
experiment harness can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..isa import Program, assemble


@dataclass(frozen=True)
class PaperReference:
    """Numbers the paper reports for the original SPEC95 benchmark."""

    inst_count_millions: float
    branch_pred_rate: float  # percent
    return_pred_rate: float  # percent
    ir_result_rate: float  # percent of dynamic instructions (Table 3)
    ir_addr_rate: float  # percent of memory operations
    vp_magic_result_rate: float
    vp_magic_addr_rate: float
    vp_lvp_result_rate: float
    redundancy_repeated: float = 85.0  # Figure 8 band (approximate)


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark-analog: how to build and run it.

    Like SPEC's ref/train inputs, every analog offers input *variants*:
    the same program over a different deterministic input (the paper's
    Table 2 lists one input per benchmark; variants let studies check
    input sensitivity).  ``"ref"`` is the default.
    """

    name: str
    description: str
    source_fn: Callable[..., str]
    skip_instructions: int  # functional fast-forward (init phase)
    paper: PaperReference
    variants: tuple = ("ref", "train")

    def source(self, variant: str = "ref") -> str:
        self._check(variant)
        return self.source_fn(variant=variant)

    def program(self, variant: str = "ref") -> Program:
        return assemble(self.source(variant))

    def _check(self, variant: str) -> None:
        if variant not in self.variants:
            raise ValueError(
                f"{self.name} has no input variant {variant!r}; "
                f"choose from {self.variants}")


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate workload {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    _ensure_loaded()
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    if name.startswith("gen-"):
        # Generated workloads (repro.workloads.generator) are first-class
        # but registry-free: any canonical gen-… name materialises on
        # demand — crucially also inside multiprocessing workers, which
        # rebuild workloads by name — while all_workloads() stays the
        # seven paper analogs.
        from .generator import spec_from_name
        return spec_from_name(name)
    raise KeyError(name)


def all_workloads() -> Dict[str, WorkloadSpec]:
    _ensure_loaded()
    return dict(_REGISTRY)


def workload_names() -> list:
    _ensure_loaded()
    return list(_REGISTRY)


def _ensure_loaded() -> None:
    """Import the analog modules (each registers itself)."""
    if _REGISTRY:
        return
    from . import (  # noqa: F401  (import for side effects)
        go_analog,
        m88ksim_analog,
        ijpeg_analog,
        perl_analog,
        vortex_analog,
        gcc_analog,
        compress_analog,
    )
