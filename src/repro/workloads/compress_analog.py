"""compress analog: LZW-style dictionary compression.

compress95 is the paper's showcase for *address* reuse: its hash-table
loads hit the same addresses repeatedly while the stored codes keep
changing as the dictionary evolves, so IR reuses 65.1% of addresses but
only 16.5% of results (Table 3) — and VP_Magic likewise predicts far more
addresses (43.4%) than results (20.5%).

The analog compresses a deterministic, skewed byte stream with an LZW-ish
loop: hash the (prefix, char) pair, probe a 512-entry open-addressed
table (probe limit 8), extend the prefix on a hit, insert and emit on a
miss.  The dictionary persists across passes — like real compress, whose
dictionary saturates and then serves mostly lookups — but every pass
clears a rotating 64-entry region and the code counter keeps growing, so
a steady trickle of inserts keeps table *values* changing while probe
*addresses* recur: the address-reuse-without-result-reuse signature.
The per-char global statistics (in-count, checksum, periodic ratio
check) replicate compress's bookkeeping: fixed-address memory traffic
with ever-changing values.
"""

from __future__ import annotations

from .spec import PaperReference, WorkloadSpec, register

_INPUT_BYTES = 1024
_TABLE_ENTRIES = 512  # (key word, code word) pairs
_PROBE_LIMIT = 8
_CLEAR_REGION = 24  # entries invalidated per pass (rotating)


_SEEDS = {"ref": 12345, "train": 67891}


def source(variant: str = "ref") -> str:
    seed = _SEEDS[variant]
    return f"""
# compress analog: LZW dictionary compression over a skewed byte stream.
.data
input:  .space {_INPUT_BYTES}
table:  .space {_TABLE_ENTRIES * 8}   # key, code pairs
outcnt: .word 0
incnt:  .word 0
cksum:  .word 0
ratio:  .word 0
nextcode: .word 258
passno: .word 0

.text
main:
        jal init
        li $s7, 0x7FFFFFFF     # pass budget

pass_loop:
        la $s0, input          # input cursor
        li $s1, {_INPUT_BYTES}
        li $s2, 0              # prefix code (0 = empty)
        lw $s3, nextcode
        li $s6, 0              # emitted-code checksum

char_loop:
        lbu $t0, 0($s0)        # next input byte
        # ---- global statistics (compress's in_count/checksum/ratio):
        # fixed-address loads whose values keep changing -> the address-
        # reuse-without-result-reuse signature of Table 3 ----
        lw $t8, incnt
        addi $t8, $t8, 1
        sw $t8, incnt
        lw $t9, cksum
        add $t9, $t9, $t0
        sw $t9, cksum
        andi $t7, $t8, 63      # periodic ratio check (predictable)
        bnez $t7, no_ratio
        lw $t7, outcnt
        srl $t7, $t7, 2
        sw $t7, ratio
no_ratio:
        # hash = ((prefix << 5) ^ char) & (entries - 1)
        sll $t1, $s2, 5
        xor $t1, $t1, $t0
        andi $t1, $t1, {_TABLE_ENTRIES - 1}
        # key = ((prefix << 8) | char) with bit 30 set (never zero)
        sll $t2, $s2, 8
        or $t2, $t2, $t0
        lui $t3, 0x4000
        or $t2, $t2, $t3
        li $t9, {_PROBE_LIMIT}
probe:
        sll $t4, $t1, 3
        la $t5, table
        add $t4, $t4, $t5
        lw $t6, 0($t4)         # stored key
        beq $t6, $t2, hit
        beqz $t6, miss
        addi $t1, $t1, 1       # linear probe
        andi $t1, $t1, {_TABLE_ENTRIES - 1}
        addi $t9, $t9, -1
        bnez $t9, probe
        j emit                 # probe limit: emit without insert

hit:    lw $s2, 4($t4)         # prefix = stored code
        j advance

miss:   sw $t2, 0($t4)         # insert (key, next code)
        sw $s3, 4($t4)
        addi $s3, $s3, 1
        andi $s3, $s3, 0xFFFF  # codes stay 16-bit
emit:
        # emit current prefix
        add $s6, $s6, $s2
        lw $t7, outcnt
        addi $t7, $t7, 1
        sw $t7, outcnt
        lbu $s2, 0($s0)        # restart prefix at this char

advance:
        addi $s0, $s0, 1
        addi $s1, $s1, -1
        bnez $s1, char_loop

        # end of one pass: persist the code counter and clear a rotating
        # region (the dictionary mostly survives, like saturated compress)
        sw $s3, nextcode
        jal clear_region
        addi $s7, $s7, -1
        bnez $s7, pass_loop
        halt

# ---- init: fill the input with a skewed pseudo-random byte stream ----
init:
        la $t0, input
        li $t1, {_INPUT_BYTES}
        li $t2, {seed}          # LCG state
fill:
        # x = x * 1103515245 + 12345 (mod 2^32)
        li $t3, 1103515245
        mult $t2, $t3
        mflo $t2
        addi $t2, $t2, 12345
        # skew to a small alphabet: byte = 'a' + ((x >> 16) & 7)
        srl $t4, $t2, 16
        andi $t4, $t4, 7
        addi $t4, $t4, 97
        sb $t4, 0($t0)
        addi $t0, $t0, 1
        addi $t1, $t1, -1
        bnez $t1, fill
        jr $ra

# ---- clear_region: invalidate a rotating 64-entry dictionary window ----
clear_region:
        lw $t2, passno
        addi $t3, $t2, 1
        sw $t3, passno
        andi $t2, $t2, 15      # region 0..15
        sll $t2, $t2, 8        # * 32 entries * 8 bytes
        la $t0, table
        add $t0, $t0, $t2
        li $t1, {_CLEAR_REGION}
clr:
        sw $zero, 0($t0)
        sw $zero, 4($t0)
        addi $t0, $t0, 8
        addi $t1, $t1, -1
        bnez $t1, clr
        jr $ra
"""


register(WorkloadSpec(
    name="compress",
    description="LZW-style dictionary compression of a skewed byte stream",
    source_fn=source,
    skip_instructions=12_000,  # past the init fill loop
    paper=PaperReference(
        inst_count_millions=421.2, branch_pred_rate=89.3,
        return_pred_rate=100.0,
        ir_result_rate=16.5, ir_addr_rate=65.1,
        vp_magic_result_rate=20.5, vp_magic_addr_rate=43.4,
        vp_lvp_result_rate=17.3, redundancy_repeated=80.0),
))
