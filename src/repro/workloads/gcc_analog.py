"""gcc analog: IR-walking compiler passes over a static instruction list.

gcc spends its time in passes that repeatedly traverse compiler IR: every
pass walks mostly-unchanged data structures and redoes the same per-node
classification, giving 92% branch prediction (Table 2) and good
redundancy (18.6% IR / 36.5% VP_Magic).

The analog builds a 192-node linked list of IR "insns" (opcode, src1,
src2, flags) at init, then alternates two passes per outer iteration:

* constant folding: dispatch on the opcode through a jump table (the
  compiled-switch structure that makes gcc's indirect jumps matter) and
  fold nodes whose CONST flag is set;
* a use-count pass accumulating per-opcode-class statistics with
  data-dependent skips.
"""

from __future__ import annotations

from .spec import PaperReference, WorkloadSpec, register

_NODES = 192
_NODE_BYTES = 24  # opcode, src1, src2, flags, next, result


_SEEDS = {"ref": 271828182, "train": 141421356}


def source(variant: str = "ref") -> str:
    seed = _SEEDS[variant]
    return f"""
# gcc analog: constant-folding and use-count passes over linked IR.
.data
nodes:  .space {_NODES * _NODE_BYTES}
optab:  .word fold_add, fold_sub, fold_and, fold_or, fold_shift, fold_copy
folded: .word 0
usecnt: .space 32              # 8 class counters

.text
main:
        jal init
        li $s7, 0x7FFFFFFF

pass_pair:
        # ================= pass 1: constant folding =================
        la $s0, nodes          # current node
fold_loop:
        beqz $s0, fold_done
        lw $t0, 12($s0)        # flags
        andi $t1, $t0, 1       # CONST flag
        beqz $t1, fold_next    # non-const: skip (pattern from init)
        lw $t2, 0($s0)         # opcode class 0..5
        lw $a1, 4($s0)         # src1
        lw $a2, 8($s0)         # src2
        sll $t3, $t2, 2
        lw $t4, optab($t3)
        jr $t4                 # compiled switch
fold_add:
        add $a3, $a1, $a2
        j fold_store
fold_sub:
        sub $a3, $a1, $a2
        j fold_store
fold_and:
        and $a3, $a1, $a2
        j fold_store
fold_or:
        or $a3, $a1, $a2
        j fold_store
fold_shift:
        andi $t5, $a2, 7
        sllv $a3, $a1, $t5
        j fold_store
fold_copy:
        move $a3, $a1
fold_store:
        jal record_fold        # helper call with compiled stack traffic
fold_next:
        lw $s0, 16($s0)        # next
        j fold_loop
fold_done:

        # ================= pass 2: per-class use counts ==============
        la $s0, nodes
use_loop:
        beqz $s0, use_done
        lw $t0, 0($s0)         # opcode
        lw $t1, 12($s0)        # flags
        andi $t2, $t1, 2       # DEAD flag: skip dead nodes
        bnez $t2, use_next
        andi $t3, $t0, 7
        sll $t3, $t3, 2
        lw $t4, usecnt($t3)
        addi $t4, $t4, 1
        sw $t4, usecnt($t3)
        # nodes with large src1 magnitude get an extra classification
        lw $t5, 4($s0)
        srl $t6, $t5, 12
        beqz $t6, use_next
        lw $t4, usecnt+28
        addi $t4, $t4, 1
        sw $t4, usecnt+28
use_next:
        lw $s0, 16($s0)
        j use_loop
use_done:
        addi $s7, $s7, -1
        bnez $s7, pass_pair
        halt

# ---- record_fold($a3 = value, $s0 = node): store + bookkeeping ----
record_fold:
        addi $sp, $sp, -8      # compiled prologue
        sw $ra, 0($sp)
        sw $a3, 4($sp)
        sw $a3, 20($s0)        # folded value (sources stay stable)
        lw $t6, folded
        addi $t6, $t6, 1
        sw $t6, folded
        # small-domain classification on the folded value's low bits
        andi $t7, $a3, 3
        sll $t7, $t7, 2
        lw $t8, usecnt($t7)
        addi $t8, $t8, 1
        sw $t8, usecnt($t7)
        lw $a3, 4($sp)         # compiled epilogue
        lw $ra, 0($sp)
        addi $sp, $sp, 8
        jr $ra

# ---- init: build the linked node list with a skewed opcode mix ----
init:
        la $t0, nodes
        li $t1, 0
        li $t2, {seed}      # LCG
nfill:
        li $t3, 1103515245
        mult $t2, $t3
        mflo $t2
        addi $t2, $t2, 12345
        # opcode: skewed toward add/copy (gcc's common classes)
        srl $t4, $t2, 16
        andi $t4, $t4, 15
        slti $t5, $t4, 8
        beqz $t5, op_rare
        andi $t4, $t4, 1       # 0 or 1 (add/sub) for half the nodes
        j op_store
op_rare:
        andi $t4, $t4, 3
        addi $t4, $t4, 2       # 2..5
op_store:
        sw $t4, 0($t0)
        srl $t6, $t2, 8
        andi $t6, $t6, 0xFFF
        sw $t6, 4($t0)         # src1
        srl $t6, $t2, 4
        andi $t6, $t6, 0xFF
        sw $t6, 8($t0)         # src2
        # flags: 7 in 8 CONST, 1 in 16 DEAD (gcc-like regularity)
        srl $t7, $t2, 22
        andi $t7, $t7, 7
        slti $t8, $t7, 7
        move $t9, $t8          # CONST bit
        srl $t7, $t2, 26
        andi $t7, $t7, 15
        bnez $t7, flags_store
        ori $t9, $t9, 2        # DEAD
flags_store:
        sw $t9, 12($t0)
        # next pointer
        addi $t5, $t1, 1
        slti $t6, $t5, {_NODES}
        beqz $t6, last_node
        addi $t7, $t0, {_NODE_BYTES}
        sw $t7, 16($t0)
        j nlink_done
last_node:
        sw $zero, 16($t0)
nlink_done:
        sw $zero, 20($t0)      # result field
        addi $t0, $t0, {_NODE_BYTES}
        addi $t1, $t1, 1
        slti $t6, $t1, {_NODES}
        bnez $t6, nfill
        jr $ra
"""


register(WorkloadSpec(
    name="gcc",
    description="Compiler passes (constant folding via jump table, "
                "use counting) over a linked IR list",
    source_fn=source,
    skip_instructions=6_500,
    paper=PaperReference(
        inst_count_millions=420.8, branch_pred_rate=92.0,
        return_pred_rate=100.0,
        ir_result_rate=18.6, ir_addr_rate=19.4,
        vp_magic_result_rate=36.5, vp_magic_addr_rate=23.9,
        vp_lvp_result_rate=29.2, redundancy_repeated=85.0),
))
