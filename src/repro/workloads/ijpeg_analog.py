"""ijpeg analog: blocked integer image transform + quantisation.

ijpeg is loop-structured image compression: 8x8 blocks go through integer
DCT-style butterflies and table-driven quantisation.  Table 2/3 report an
88.8% branch prediction rate (mostly loop branches) and the *lowest*
result redundancy of the suite (11.2% IR reuse) — transform values vary —
while addresses still reuse (24%) because the block scan repeats and the
coefficient workspace is reused for every block.

The analog transforms a 32x32 image (bytes, generated from a repeated 8x8
tile plus sparse noise so some block computations recur) one 8x8 block at
a time.  The per-row butterflies are fully unrolled — exactly as the IJG
library's ``jpeg_fdct_islow`` is — so each static operation touches a
fixed workspace address block after block.  Quantisation divides by a
64-entry table through the 20-cycle divider inside a called helper with a
compiled-style prologue/epilogue.
"""

from __future__ import annotations

from .spec import PaperReference, WorkloadSpec, register

_DIM = 32
_PIXELS = _DIM * _DIM
_QUANT = [16, 11, 10, 16, 24, 40, 51, 61,
          12, 12, 14, 19, 26, 58, 60, 55,
          14, 13, 16, 24, 40, 57, 69, 56,
          14, 17, 22, 29, 51, 87, 80, 62,
          18, 22, 37, 56, 68, 109, 103, 77,
          24, 35, 55, 64, 81, 104, 113, 92,
          49, 64, 78, 87, 103, 121, 120, 101,
          72, 92, 95, 98, 112, 100, 103, 99]


def _row_transform(row: int) -> str:
    """One unrolled row of the blocked transform (fixed coeff addresses)."""
    pix = row * _DIM  # pixel-row offset from the block's top-left
    coeff = row * 32  # coefficient-row byte offset
    return f"""
        # ---- row {row} (unrolled, as in jpeg_fdct_islow) ----
        lbu $t4, {pix + 0}($s2)
        lbu $t5, {pix + 7}($s2)
        add $t6, $t4, $t5
        sub $t7, $t4, $t5
        lbu $t4, {pix + 1}($s2)
        lbu $t5, {pix + 6}($s2)
        add $t8, $t4, $t5
        sub $t9, $t4, $t5
        add $a0, $t6, $t8
        sub $a1, $t6, $t8
        sw $a0, {coeff + 0}($s5)
        sw $a1, {coeff + 8}($s5)
        li $a2, 181
        mult $t7, $a2
        mflo $a3
        sra $a3, $a3, 8
        sw $a3, {coeff + 16}($s5)
        mult $t9, $a2
        mflo $a3
        sra $a3, $a3, 8
        sw $a3, {coeff + 24}($s5)
        lbu $t4, {pix + 2}($s2)
        lbu $t5, {pix + 5}($s2)
        add $t6, $t4, $t5
        sub $t7, $t4, $t5
        lbu $t4, {pix + 3}($s2)
        lbu $t5, {pix + 4}($s2)
        add $t8, $t4, $t5
        sub $t9, $t4, $t5
        add $a0, $t6, $t8
        sub $a1, $t6, $t8
        sw $a0, {coeff + 4}($s5)
        sw $a1, {coeff + 12}($s5)
        sll $a3, $t7, 1
        sub $a3, $a3, $t9
        sw $a3, {coeff + 20}($s5)
        add $a3, $t7, $t9
        sw $a3, {coeff + 28}($s5)
"""


_SEEDS = {"ref": 555555555, "train": 777777777}


def source(variant: str = "ref") -> str:
    seed = _SEEDS[variant]
    quant_words = ", ".join(str(q) for q in _QUANT)
    rows = "".join(_row_transform(r) for r in range(8))
    return f"""
# ijpeg analog: 8x8 block transform + quantisation over a tiled image.
.data
image:  .space {_PIXELS}
coeff:  .space 256             # one block of 32-bit coefficients
quant:  .word {quant_words}
energy: .word 0
zeros:  .word 0

.text
main:
        jal init
        la $s5, coeff
        li $s7, 0x7FFFFFFF     # frame budget

frame:
        li $s0, 0              # block row
row_blocks:
        li $s1, 0              # block col
col_blocks:
        # $s2 = address of block top-left pixel
        sll $t0, $s0, 3        # block row * 8
        sll $t0, $t0, 5        # * DIM (32)
        sll $t1, $s1, 3
        add $t0, $t0, $t1
        la $s2, image
        add $s2, $s2, $t0
{rows}
        jal quantise

        addi $s1, $s1, 1
        slti $t0, $s1, 4       # 4 block cols
        bnez $t0, col_blocks
        addi $s0, $s0, 1
        slti $t0, $s0, 4       # 4 block rows
        bnez $t0, row_blocks

        addi $s7, $s7, -1
        bnez $s7, frame
        halt

# ---- quantise(): coeff[i] / quant[i], accumulating energy/zero stats ----
quantise:
        addi $sp, $sp, -12     # compiled prologue
        sw $ra, 0($sp)
        sw $s0, 4($sp)
        sw $s1, 8($sp)
        li $s3, 0
        la $t1, coeff
        la $t2, quant
        li $s4, 0              # block energy
quant_loop:
        lw $t3, 0($t1)
        lw $t4, 0($t2)
        div $t3, $t4
        mflo $t5
        beqz $t5, q_zero       # many coefficients quantise to zero
        add $s4, $s4, $t5
        j q_next
q_zero:
        lw $t6, zeros
        addi $t6, $t6, 1
        sw $t6, zeros
q_next:
        addi $t1, $t1, 4
        addi $t2, $t2, 4
        addi $s3, $s3, 1
        slti $t0, $s3, 64
        bnez $t0, quant_loop

        lw $t6, energy
        add $t6, $t6, $s4
        sw $t6, energy
        lw $s0, 4($sp)         # compiled epilogue
        lw $s1, 8($sp)
        lw $ra, 0($sp)
        addi $sp, $sp, 12
        jr $ra

# ---- init: tiled image (repeating 8x8 tile + sparse LCG noise) ----
init:
        la $t0, image
        li $t1, 0              # pixel index
        li $t2, {seed}      # LCG state
ifill:
        # tile value: ((x%8)*3 + (y%8)*5) & 0xFF
        andi $t3, $t1, 7       # x % 8
        srl $t4, $t1, 5        # y
        andi $t4, $t4, 7       # y % 8
        sll $t5, $t3, 1
        add $t5, $t5, $t3      # x*3
        sll $t6, $t4, 2
        add $t6, $t6, $t4      # y*5
        add $t5, $t5, $t6
        # sparse noise: 1 in 16 pixels gets an LCG perturbation
        li $t7, 1103515245
        mult $t2, $t7
        mflo $t2
        addi $t2, $t2, 12345
        srl $t8, $t2, 20
        andi $t8, $t8, 15
        bnez $t8, istore
        srl $t9, $t2, 8
        andi $t9, $t9, 63
        add $t5, $t5, $t9
istore:
        andi $t5, $t5, 255
        la $t9, image
        add $t9, $t9, $t1
        sb $t5, 0($t9)
        addi $t1, $t1, 1
        slti $t8, $t1, {_PIXELS}
        bnez $t8, ifill
        jr $ra
"""


register(WorkloadSpec(
    name="ijpeg",
    description="8x8 integer block transform and quantisation over a "
                "tiled image (unrolled fdct rows)",
    source_fn=source,
    skip_instructions=21_000,
    paper=PaperReference(
        inst_count_millions=439.8, branch_pred_rate=88.8,
        return_pred_rate=99.9,
        ir_result_rate=11.2, ir_addr_rate=24.0,
        vp_magic_result_rate=16.7, vp_magic_addr_rate=19.4,
        vp_lvp_result_rate=17.4, redundancy_repeated=80.0),
))
