"""go analog: board-scanning position evaluation with hard branches.

go is the least predictable SPECint95 program (75.8% branch prediction in
Table 2): its evaluation functions branch on quasi-random board contents.
Redundancy is still substantial (24.3% IR reuse) because the board barely
changes between successive evaluation sweeps, so the same loads and
comparisons repeat.

The analog sweeps a 19x19 board (bytes: 0 empty / 1 black / 2 white,
seeded pseudo-randomly at init), branching per cell on its colour,
counting neighbour liberties through a helper function, and accumulating
an influence score.  After each sweep one stone is placed at a
score-derived position, keeping the board nearly static across sweeps.
"""

from __future__ import annotations

from .spec import PaperReference, WorkloadSpec, register

_SIZE = 19
_CELLS = _SIZE * _SIZE


_SEEDS = {"ref": 987654321, "train": 192837465}


def source(variant: str = "ref") -> str:
    seed = _SEEDS[variant]
    return f"""
# go analog: position evaluation sweeps over a mostly-static board.
.data
board:  .space {_CELLS + 64}
score:  .word 0

.text
main:
        jal init
        li $s7, 0x7FFFFFFF     # sweep budget

sweep:
        la $s0, board
        li $s1, {_CELLS - _SIZE - 1}  # interior cells only
        addi $s0, $s0, {_SIZE + 1}
        li $s2, 0              # black influence
        li $s3, 0              # white influence

cell_loop:
        lbu $t0, 0($s0)        # cell colour: data-dependent branches
        beqz $t0, next_cell    # empty (~55%: hard to predict)
        li $t1, 1
        beq $t0, $t1, black_stone
        # white stone
        move $a0, $s0
        jal liberties
        add $s3, $s3, $v0
        lbu $t2, 1($s0)        # right neighbour same colour?
        li $t3, 2
        bne $t2, $t3, next_cell
        addi $s3, $s3, 3       # connection bonus
        j next_cell
black_stone:
        move $a0, $s0
        jal liberties
        add $s2, $s2, $v0
        lbu $t2, 1($s0)
        li $t3, 1
        bne $t2, $t3, next_cell
        addi $s2, $s2, 3
next_cell:
        addi $s0, $s0, 1
        addi $s1, $s1, -1
        bnez $s1, cell_loop

        # score = black - white; place one stone at a derived empty spot
        sub $t0, $s2, $s3
        lw $t1, score
        add $t1, $t1, $t0
        sw $t1, score
        andi $t2, $t1, 255
        li $t4, {_CELLS - 2}
        slt $t5, $t2, $t4
        bnez $t5, place_ok
        li $t2, 40
place_ok:
        la $t3, board
        add $t3, $t3, $t2
        lbu $t6, 0($t3)
        bnez $t6, skip_place   # only place on empty points
        andi $t7, $t1, 1
        addi $t7, $t7, 1       # colour 1 or 2
        sb $t7, 0($t3)
skip_place:
        addi $s7, $s7, -1
        bnez $s7, sweep
        halt

# ---- liberties($a0 = cell address): count empty 4-neighbours ----
liberties:
        addi $sp, $sp, -8      # compiled prologue (fixed stack addresses)
        sw $ra, 0($sp)
        li $v0, 0
        lbu $t8, 1($a0)        # east
        bnez $t8, lib_w
        addi $v0, $v0, 1
lib_w:  lbu $t8, -1($a0)       # west
        bnez $t8, lib_n
        addi $v0, $v0, 1
lib_n:  lbu $t8, -{_SIZE}($a0) # north
        bnez $t8, lib_s
        addi $v0, $v0, 1
lib_s:  lbu $t8, {_SIZE}($a0)  # south
        bnez $t8, lib_done
        addi $v0, $v0, 1
lib_done:
        lw $ra, 0($sp)         # compiled epilogue
        addi $sp, $sp, 8
        jr $ra

# ---- init: seed the board ~45% stones from an LCG ----
init:
        la $t0, board
        li $t1, {_CELLS}
        li $t2, {seed}
fill:
        li $t3, 1103515245
        mult $t2, $t3
        mflo $t2
        addi $t2, $t2, 12345
        srl $t4, $t2, 13
        andi $t4, $t4, 15      # 0..15
        slti $t5, $t4, 9
        bnez $t5, store_empty  # 9/16 empty
        andi $t4, $t4, 1
        addi $t4, $t4, 1       # 1 or 2
        sb $t4, 0($t0)
        j fill_next
store_empty:
        sb $zero, 0($t0)
fill_next:
        addi $t0, $t0, 1
        addi $t1, $t1, -1
        bnez $t1, fill
        jr $ra
"""


register(WorkloadSpec(
    name="go",
    description="Board-position evaluation sweeps with data-dependent "
                "branching (hardest branches in the suite)",
    source_fn=source,
    skip_instructions=4_500,
    paper=PaperReference(
        inst_count_millions=354.7, branch_pred_rate=75.8,
        return_pred_rate=99.9,
        ir_result_rate=24.3, ir_addr_rate=19.9,
        vp_magic_result_rate=38.4, vp_magic_addr_rate=26.8,
        vp_lvp_result_rate=30.4, redundancy_repeated=85.0),
))
