"""Random well-formed program generator for differential testing.

Generates structured assembly programs that terminate by construction
(counted loops with dedicated counter registers, bounded call depth) while
exercising every ISA feature the timing core models: dependent arithmetic
chains, multiplies/divides, loads/stores with aliasing, data-dependent
branches, calls/returns, and indirect jumps through tables.

Used by the property-based tests: for any generated program, the
out-of-order core — in *every* configuration (base, IR early/late, all VP
variants) — must commit exactly the architectural state the in-order
functional simulator produces.  This is the strongest correctness
statement in the repository: VP and IR are performance features and must
never change architectural results.
"""

from __future__ import annotations

import random
from typing import List, Optional

# Registers the generator may freely clobber with computed values.
_VALUE_REGS = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
               "$s0", "$s1", "$s2", "$s3"]
# Reserved: $s4/$s5 loop counters, $s6 memory base, $a0/$v0 call interface.
_LOOP_REGS = ["$s4", "$s5"]
_MEM_BASE = "$s6"
_BUFFER_WORDS = 64

_ALU_RRR = ["add", "sub", "and", "or", "xor", "nor", "slt", "sltu",
            "addu", "subu", "sllv", "srlv", "srav"]
_FP_REGS = [f"$f{i}" for i in range(1, 9)]
_FP_RRR = ["add.s", "sub.s", "mul.s"]
_FP_UNARY = ["abs.s", "neg.s", "mov.s", "sqrt.s"]
_ALU_RRI = ["addi", "andi", "ori", "xori", "slti", "sll", "srl", "sra"]
_BRANCHES = ["beq", "bne", "blt", "bge"]
_LOADS = ["lw", "lh", "lhu", "lb", "lbu"]
_STORES = ["sw", "sh", "sb"]


class RandomProgramBuilder:
    """Builds one random program; deterministic given the seed."""

    def __init__(self, seed: int, size: int = 60):
        self.rng = random.Random(seed)
        self.size = max(10, size)
        self.lines: List[str] = []
        self.label_count = 0
        self.loop_depth = 0
        self.functions: List[str] = []

    def _label(self, prefix: str = "L") -> str:
        self.label_count += 1
        return f"{prefix}{self.label_count}"

    def _reg(self) -> str:
        return self.rng.choice(_VALUE_REGS)

    def _emit(self, text: str) -> None:
        self.lines.append("        " + text)

    # -- statement generators ---------------------------------------------------

    def _gen_alu(self) -> None:
        if self.rng.random() < 0.5:
            op = self.rng.choice(_ALU_RRR)
            self._emit(f"{op} {self._reg()}, {self._reg()}, {self._reg()}")
        else:
            op = self.rng.choice(_ALU_RRI)
            if op in ("sll", "srl", "sra"):
                imm = self.rng.randrange(0, 32)
            else:
                imm = self.rng.randrange(-128, 128)
            self._emit(f"{op} {self._reg()}, {self._reg()}, {imm}")

    def _gen_mult_div(self) -> None:
        kind = self.rng.choice(["mul", "rem", "div"])
        self._emit(f"{kind} {self._reg()}, {self._reg()}, {self._reg()}")

    def _fp_reg(self) -> str:
        return self.rng.choice(_FP_REGS)

    def _gen_fp(self) -> None:
        """A small FP block: load/compute/store on the FP buffer."""
        choice = self.rng.random()
        if choice < 0.3:
            offset = 4 * self.rng.randrange(0, 8)
            if self.rng.random() < 0.6:
                self._emit(f"lwc1 {self._fp_reg()}, "
                           f"{offset}({_MEM_BASE})")
            else:
                self._emit(f"swc1 {self._fp_reg()}, "
                           f"{offset}({_MEM_BASE})")
        elif choice < 0.55:
            op = self.rng.choice(_FP_RRR)
            self._emit(f"{op} {self._fp_reg()}, {self._fp_reg()}, "
                       f"{self._fp_reg()}")
        elif choice < 0.75:
            op = self.rng.choice(_FP_UNARY)
            self._emit(f"{op} {self._fp_reg()}, {self._fp_reg()}")
        elif choice < 0.9:
            self._emit(f"mtc1 {self._fp_reg()}, {self._reg()}")
            self._emit(f"cvt.s.w {self._fp_reg()}, {self._fp_reg()}")
        else:
            label = self._label()
            compare = self.rng.choice(["c.eq.s", "c.lt.s", "c.le.s"])
            branch = self.rng.choice(["bc1t", "bc1f"])
            self._emit(f"{compare} {self._fp_reg()}, {self._fp_reg()}")
            self._emit(f"{branch} {label}")
            self._gen_alu()
            self.lines.append(f"{label}:")

    def _gen_mem(self) -> None:
        offset = 4 * self.rng.randrange(0, _BUFFER_WORDS)
        if self.rng.random() < 0.5:
            op = self.rng.choice(_LOADS)
            align = {"lw": 4, "lh": 2, "lhu": 2}.get(op, 1)
            offset -= offset % align
            self._emit(f"{op} {self._reg()}, {offset}({_MEM_BASE})")
        else:
            op = self.rng.choice(_STORES)
            align = {"sw": 4, "sh": 2}.get(op, 1)
            offset -= offset % align
            self._emit(f"{op} {self._reg()}, {offset}({_MEM_BASE})")

    def _gen_indexed_mem(self) -> None:
        """Load/store with a computed (data-dependent) address."""
        index = self._reg()
        addr = self._reg()
        self._emit(f"andi {addr}, {index}, {4 * (_BUFFER_WORDS - 1)}")
        self._emit(f"srl {addr}, {addr}, 2")
        self._emit(f"sll {addr}, {addr}, 2")
        self._emit(f"add {addr}, {addr}, {_MEM_BASE}")
        if self.rng.random() < 0.5:
            self._emit(f"lw {self._reg()}, 0({addr})")
        else:
            self._emit(f"sw {self._reg()}, 0({addr})")

    def _gen_branch_skip(self) -> None:
        """A data-dependent forward branch over a short block."""
        label = self._label()
        op = self.rng.choice(_BRANCHES)
        self._emit(f"{op} {self._reg()}, {self._reg()}, {label}")
        for _ in range(self.rng.randrange(1, 4)):
            self._gen_alu()
        self.lines.append(f"{label}:")

    def _gen_loop(self) -> None:
        if self.loop_depth >= len(_LOOP_REGS):
            self._gen_alu()
            return
        counter = _LOOP_REGS[self.loop_depth]
        self.loop_depth += 1
        label = self._label("loop")
        trips = self.rng.randrange(2, 6)
        self._emit(f"li {counter}, {trips}")
        self.lines.append(f"{label}:")
        for _ in range(self.rng.randrange(2, 6)):
            self._gen_statement(allow_control=self.loop_depth < 2)
        self._emit(f"addi {counter}, {counter}, -1")
        self._emit(f"bnez {counter}, {label}")
        self.loop_depth -= 1

    def _gen_call(self) -> None:
        if not self.functions:
            return
        name = self.rng.choice(self.functions)
        self._emit(f"move $a0, {self._reg()}")
        self._emit(f"jal {name}")
        self._emit(f"move {self._reg()}, $v0")

    def _gen_statement(self, allow_control: bool = True) -> None:
        choices = [(self._gen_alu, 8), (self._gen_mult_div, 1),
                   (self._gen_mem, 3), (self._gen_indexed_mem, 1),
                   (self._gen_fp, 2)]
        if allow_control:
            choices += [(self._gen_branch_skip, 2), (self._gen_loop, 1),
                        (self._gen_call, 1)]
        total = sum(weight for _, weight in choices)
        pick = self.rng.randrange(total)
        for generator, weight in choices:
            if pick < weight:
                generator()
                return
            pick -= weight

    def _gen_function(self, name: str) -> List[str]:
        body = [f"{name}:"]
        ops = []
        saved_lines = self.lines
        self.lines = ops
        for _ in range(self.rng.randrange(1, 5)):
            self._gen_alu()
        self.lines = saved_lines
        body += ops
        body.append("        add $v0, $a0, $t0")
        body.append("        jr $ra")
        return body

    # -- whole program ----------------------------------------------------------

    def build(self) -> str:
        data_words = ", ".join(
            str(self.rng.randrange(0, 2**16)) for _ in range(_BUFFER_WORDS))
        function_blocks: List[str] = []
        for _ in range(self.rng.randrange(0, 3)):
            name = self._label("fn")
            self.functions.append(name)
            function_blocks += self._gen_function(name)

        self.lines = []
        self._emit(f"la {_MEM_BASE}, buffer")
        for index, reg in enumerate(_VALUE_REGS):
            self._emit(f"li {reg}, {self.rng.randrange(0, 2**12)}")
        for reg in _FP_REGS:
            value = self.rng.randrange(1, 2**10) / 8.0
            self._emit(f"li.s {reg}, {value}")
        statements = 0
        while statements < self.size:
            before = len(self.lines)
            self._gen_statement()
            statements += len(self.lines) - before
        self._emit("halt")

        parts = [".data", f"buffer: .word {data_words}", ".text"]
        parts += function_blocks
        parts.append("main:")
        parts += self.lines
        return "\n".join(parts)


def random_program(seed: int, size: int = 60) -> str:
    """Generate a random, terminating assembly program from *seed*."""
    return RandomProgramBuilder(seed, size).build()
