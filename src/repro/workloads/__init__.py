"""SPECint95-analog workloads and the random program generator."""

from .random_program import RandomProgramBuilder, random_program
from .spec import (
    PaperReference,
    WorkloadSpec,
    all_workloads,
    get_workload,
    register,
    workload_names,
)

__all__ = [
    "RandomProgramBuilder",
    "random_program",
    "PaperReference",
    "WorkloadSpec",
    "all_workloads",
    "get_workload",
    "register",
    "workload_names",
]
