"""SPECint95-analog workloads and the program generators."""

from .generator import (
    GeneratedProgramBuilder,
    GeneratorKnobs,
    generated_program,
    generated_spec,
    knobs_from_name,
)
from .random_program import RandomProgramBuilder, random_program
from .spec import (
    PaperReference,
    WorkloadSpec,
    all_workloads,
    get_workload,
    register,
    workload_names,
)

__all__ = [
    "GeneratedProgramBuilder",
    "GeneratorKnobs",
    "generated_program",
    "generated_spec",
    "knobs_from_name",
    "RandomProgramBuilder",
    "random_program",
    "PaperReference",
    "WorkloadSpec",
    "all_workloads",
    "get_workload",
    "register",
    "workload_names",
]
