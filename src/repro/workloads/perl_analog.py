"""perl analog: tokeniser + hash-table driven interpreter workload.

perl spends its time scanning text, hashing identifiers and walking hash
chains.  Its branch prediction is high (95.6%: character-class loops are
regular) and redundancy substantial (19.8% IR / 35.4% VP_Magic): the same
small set of words is hashed and looked up over and over.

The analog tokenises a ~1KB text buffer built at init from a 12-word
dictionary (LCG-selected), computing a polynomial hash per word and
updating a 64-bucket chained hash table of word counters, with helper
calls for hashing and lookup (exercising the RAS like perl's call-heavy
runtime).
"""

from __future__ import annotations

from .spec import PaperReference, WorkloadSpec, register

_WORDS = ["print", "local", "shift", "each", "keys", "push",
          "scalar", "index", "split", "join", "value", "bless"]
_TEXT_BYTES = 1024
_BUCKETS = 64
_NODE_BYTES = 16  # hash, count, next, pad


_SEEDS = {"ref": 424242, "train": 767676}


def source(variant: str = "ref") -> str:
    seed = _SEEDS[variant]
    dictionary = []
    offset = 0
    offsets = []
    for word in _WORDS:
        offsets.append(offset)
        dictionary.append(word)
        offset += len(word) + 1
    words_data = "\n".join(
        f'w{i}: .asciiz "{w}"' for i, w in enumerate(_WORDS))
    offset_words = ", ".join(f"w{i}" for i in range(len(_WORDS)))
    return f"""
# perl analog: tokenise text, hash words, count them in a hash table.
.data
{words_data}
.align 2
wtab:   .word {offset_words}
text:   .space {_TEXT_BYTES + 4}
buckets: .space {_BUCKETS * 4}
nodes:  .space {_BUCKETS * 4 * _NODE_BYTES}
nfree:  .word 0
total:  .word 0

.text
main:
        jal init
        li $s7, 0x7FFFFFFF

scan_pass:
        la $s0, text
        li $s1, {_TEXT_BYTES}

scan:
        lbu $t0, 0($s0)
        li $t1, 97
        slt $t2, $t0, $t1      # below 'a' => separator
        bnez $t2, separator
        # ---- in a word: hash it with a helper call ----
        move $a0, $s0
        jal hash_word          # returns $v0 = hash, $v1 = length
        move $a0, $v0
        jal bump_count
        add $s0, $s0, $v1      # skip the word
        sub $s1, $s1, $v1
        blez $s1, pass_done
        j scan
separator:
        addi $s0, $s0, 1
        addi $s1, $s1, -1
        bnez $s1, scan
pass_done:
        addi $s7, $s7, -1
        bnez $s7, scan_pass
        halt

# ---- hash_word($a0 = char*): $v0 = hash, $v1 = length ----
hash_word:
        addi $sp, $sp, -8      # compiled prologue
        sw $ra, 0($sp)
        sw $a0, 4($sp)
        li $v0, 5381
        li $v1, 0
hw_loop:
        lbu $t3, 0($a0)
        li $t4, 97
        slt $t5, $t3, $t4
        bnez $t5, hw_done
        sll $t6, $v0, 5
        add $v0, $v0, $t6      # hash *= 33
        add $v0, $v0, $t3
        addi $a0, $a0, 1
        addi $v1, $v1, 1
        j hw_loop
hw_done:
        bnez $v1, hw_ok
        li $v1, 1              # never return zero length
hw_ok:  lw $a0, 4($sp)         # compiled epilogue
        lw $ra, 0($sp)
        addi $sp, $sp, 8
        jr $ra

# ---- bump_count($a0 = hash): find/create node, increment counter ----
bump_count:
        addi $sp, $sp, -8      # compiled prologue
        sw $ra, 0($sp)
        sw $a0, 4($sp)
        andi $t0, $a0, {_BUCKETS - 1}
        sll $t0, $t0, 2
        la $t1, buckets
        add $t1, $t1, $t0      # &buckets[h]
        lw $t2, 0($t1)         # head node
chain:
        beqz $t2, insert
        lw $t3, 0($t2)         # node hash
        beq $t3, $a0, found
        lw $t2, 8($t2)         # next
        j chain
found:
        lw $t4, 4($t2)
        addi $t4, $t4, 1
        sw $t4, 4($t2)
        lw $t5, total
        addi $t5, $t5, 1
        sw $t5, total
        j bc_ret
insert:
        lw $t6, nfree
        li $t7, {_NODE_BYTES}
        mult $t6, $t7
        mflo $t7
        la $t8, nodes
        add $t7, $t7, $t8      # new node
        sw $a0, 0($t7)
        li $t9, 1
        sw $t9, 4($t7)
        lw $t9, 0($t1)
        sw $t9, 8($t7)         # next = old head
        sw $t7, 0($t1)         # head = node
        addi $t6, $t6, 1
        andi $t6, $t6, {_BUCKETS * 4 - 1}
        sw $t6, nfree
bc_ret:
        lw $a0, 4($sp)         # compiled epilogue
        lw $ra, 0($sp)
        addi $sp, $sp, 8
        jr $ra

# ---- init: build the text from LCG-chosen dictionary words ----
init:
        la $s0, text
        li $s1, {_TEXT_BYTES}
        li $s2, {seed}
next_word:
        li $t0, 1103515245
        mult $s2, $t0
        mflo $s2
        addi $s2, $s2, 12345
        srl $t1, $s2, 16
        li $t9, 12
        div $t1, $t9
        mfhi $t1               # word index 0..11
        sll $t1, $t1, 2
        lw $t2, wtab($t1)      # word address
copy:
        lbu $t3, 0($t2)
        beqz $t3, word_done
        sb $t3, 0($s0)
        addi $s0, $s0, 1
        addi $t2, $t2, 1
        addi $s1, $s1, -1
        slti $t4, $s1, 8
        bnez $t4, init_done
        j copy
word_done:
        li $t5, 32
        sb $t5, 0($s0)         # separator
        addi $s0, $s0, 1
        addi $s1, $s1, -1
        slti $t4, $s1, 8
        beqz $t4, next_word
init_done:
        # pad the tail with separators
        li $t5, 32
pad:    sb $t5, 0($s0)
        addi $s0, $s0, 1
        addi $s1, $s1, -1
        bgtz $s1, pad
        jr $ra
"""


register(WorkloadSpec(
    name="perl",
    description="Text tokeniser with hashed symbol-table counting "
                "(interpreter-style call structure)",
    source_fn=source,
    skip_instructions=13_000,
    paper=PaperReference(
        inst_count_millions=479.1, branch_pred_rate=95.6,
        return_pred_rate=100.0,
        ir_result_rate=19.8, ir_addr_rate=28.1,
        vp_magic_result_rate=35.4, vp_magic_addr_rate=35.6,
        vp_lvp_result_rate=26.8, redundancy_repeated=85.0),
))
