"""vortex analog: object-database lookups with validation calls.

vortex95 is an OO database: hashed record lookups, field validation and
occasional updates, with very regular control flow (97.8% branch
prediction — the best in Table 2) and solid redundancy (20.9% IR reuse):
the same keys are fetched repeatedly and validations usually succeed.

The analog maintains 128 fixed records (id, type, value, checksum).  Each
transaction hashes a key drawn from a cycling 32-key working set, probes
the record array, validates the record through a called type-check
(heavily skewed switch), updates its value, and occasionally (1 in 16)
rewrites the checksum field.
"""

from __future__ import annotations

from .spec import PaperReference, WorkloadSpec, register

_RECORDS = 128
_RECORD_BYTES = 16
_KEYSET = 32


_SEEDS = {"ref": 31415926, "train": 27182818}


def source(variant: str = "ref") -> str:
    seed = _SEEDS[variant]
    return f"""
# vortex analog: hashed record lookup / validate / update transactions.
.data
records: .space {_RECORDS * _RECORD_BYTES}   # id, type, value, checksum
keys:    .space {_KEYSET * 4}
applied: .word 0

.text
main:
        jal init
        li $s7, 0x7FFFFFFF
        la $s5, keys           # wrapping key pointer (period {_KEYSET})
        la $s4, keys
        addi $s4, $s4, {_KEYSET * 4}   # one past the end

txn:
        # ---- fetch next key from the cycling working set ----
        lw $a0, 0($s5)
        addi $s5, $s5, 4
        bne $s5, $s4, key_ok
        la $s5, keys           # wrap: pointer values repeat every pass
key_ok:

        # ---- probe: slot = key & (records-1); ids placed so most probes
        #      hit on the first compare (vortex-style regularity) ----
        andi $t1, $a0, {_RECORDS - 1}
probe:
        sll $t2, $t1, 4
        la $t3, records
        add $s0, $t3, $t2      # record address
        lw $t4, 0($s0)         # id
        beq $t4, $a0, hit
        addi $t1, $t1, 1       # rare collision: linear reprobe
        andi $t1, $t1, {_RECORDS - 1}
        j probe

hit:
        lw $a1, 4($s0)         # type
        jal validate           # returns weight in $v0
        beqz $v0, txn_next     # invalid type (rare)
        # ---- update value ----
        lw $t5, 8($s0)
        add $t5, $t5, $v0
        sw $t5, 8($s0)
        lw $t6, applied
        addi $t6, $t6, 1
        sw $t6, applied
        # ---- occasional checksum rewrite (every 16th key slot) ----
        andi $t7, $s5, 63
        bnez $t7, txn_next
        lw $t8, 0($s0)
        xor $t8, $t8, $t5
        sw $t8, 12($s0)
txn_next:
        addi $s7, $s7, -1
        bnez $s7, txn
        halt

# ---- validate($a1 = type): skewed type check, returns weight ----
validate:
        addi $sp, $sp, -12     # compiled prologue: spill/reload traffic
        sw $ra, 0($sp)
        sw $a1, 4($sp)
        li $v0, 0
        slti $t9, $a1, 4
        beqz $t9, val_rare
        # common types 0..3, heavily skewed toward 0 (vortex regularity)
        beqz $a1, val_t0
        li $t9, 1
        beq $a1, $t9, val_t1
        li $t9, 2
        beq $a1, $t9, val_t2
        li $v0, 7              # type 3
        j val_ret
val_t0: li $v0, 1
        j val_ret
val_t1: li $v0, 3
        j val_ret
val_t2: li $v0, 5
        j val_ret
val_rare:
        li $t9, 9
        slt $t8, $a1, $t9
        beqz $t8, val_bad
        li $v0, 11
        j val_ret
val_bad:
        li $v0, 0
val_ret:
        lw $a1, 4($sp)         # compiled epilogue
        lw $ra, 0($sp)
        addi $sp, $sp, 12
        jr $ra

# ---- init: records with id == slot index; keys from a skewed LCG ----
init:
        la $t0, records
        li $t1, 0
rfill:
        sw $t1, 0($t0)         # id = slot
        # type: heavily skewed -- 15/16 are type 0, the rest 1..4
        andi $t2, $t1, 15
        slti $t3, $t2, 15
        beqz $t3, rtype_rare
        li $t2, 0
        j rtype_store
rtype_rare:
        andi $t2, $t1, 3
        addi $t2, $t2, 1       # 1..4
rtype_store:
        sw $t2, 4($t0)
        sll $t4, $t1, 3
        sw $t4, 8($t0)         # value
        sw $zero, 12($t0)      # checksum
        addi $t0, $t0, {_RECORD_BYTES}
        addi $t1, $t1, 1
        slti $t5, $t1, {_RECORDS}
        bnez $t5, rfill

        la $t0, keys
        li $t1, {_KEYSET}
        li $t2, {seed}
kfill:
        li $t3, 1103515245
        mult $t2, $t3
        mflo $t2
        addi $t2, $t2, 12345
        srl $t4, $t2, 16
        andi $t4, $t4, {_RECORDS - 1}
        sw $t4, 0($t0)
        addi $t0, $t0, 4
        addi $t1, $t1, -1
        bnez $t1, kfill
        jr $ra
"""


register(WorkloadSpec(
    name="vortex",
    description="Object-database transactions: hashed lookup, type "
                "validation call, field update",
    source_fn=source,
    skip_instructions=2_500,
    paper=PaperReference(
        inst_count_millions=507.6, branch_pred_rate=97.8,
        return_pred_rate=99.9,
        ir_result_rate=20.9, ir_addr_rate=16.2,
        vp_magic_result_rate=36.7, vp_magic_addr_rate=26.9,
        vp_lvp_result_rate=33.8, redundancy_repeated=85.0),
))
