"""Seeded workload generator with redundancy and branch-entropy knobs.

Where :mod:`repro.workloads.random_program` maximises ISA coverage for
differential testing, this generator manufactures *characterised*
workloads: programs whose result redundancy (the paper's Figure 8
classification) and branch predictability are dialled in by two knobs,
so experiments can ask "how does each predictor's coverage track the
redundancy of the value stream?" with the workload as the independent
variable instead of whatever the seven analogs happen to provide.

Construction
============

A generated program is one counted outer loop (``trips`` iterations —
terminating by construction, like every workload in this repository)
whose body is ``size`` generated statements:

* **redundant producers** (probability ``result_redundancy``): ALU ops
  over a pool of constant registers, or loads from fixed read-only
  buffer slots.  Every dynamic instance after the first produces a value
  already seen → the classifier counts it *repeated*.
* **fresh producers** (otherwise): each advances a register-resident
  LCG (multiply + odd increment, full period 2^32) and folds the state
  into a destination, or stores the state and reloads it.  Values never
  revisit and never fall on a stride → *unique*.
* **branch sites** (one per ~8 statements): *noisy* with probability
  ``branch_entropy`` — the direction is a mid bit of a fresh LCG draw,
  effectively random to the gshare predictor — otherwise *biased*, a
  compare of two constant registers whose direction never changes.

Determinism contract: the same knobs always produce byte-identical
assembly (the only randomness is ``random.Random(seed)``), and the knob
floats are quantised to permille so a knob set survives the round-trip
through its workload name.

Naming
======

Every knob set has a canonical, self-describing workload name::

    gen-s<seed>-n<size>-t<trips>-r<permille>-b<permille>

``repro.workloads.get_workload`` materialises any such name on demand
(without touching the registry of the seven paper analogs), which makes
generated workloads first-class citizens of the experiment runner: the
cache key machinery, checkpoint store and multiprocessing workers —
which rebuild workloads by name — all work unchanged.

``repro-gen`` is the command-line face of this module.
"""

from __future__ import annotations

import argparse
import random
import re
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from .spec import PaperReference, WorkloadSpec

# Register plan (disjoint roles, so statement kinds never interfere):
#   $s0-$s3, $s7  constant pool (redundant-producer operands)
#   $t0-$t6       scratch destinations (write-mostly)
#   $t7           LCG state, $t8 LCG multiplier
#   $t9           branch-condition scratch
#   $s4, $s5      inner/outer loop counters
#   $s6           memory base
_CONST_REGS = ["$s0", "$s1", "$s2", "$s3", "$s7"]
_DEST_REGS = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6"]
_LCG_STATE = "$t7"
_LCG_MULT = "$t8"
_COND_REG = "$t9"
_INNER_COUNTER = "$s4"
_OUTER_COUNTER = "$s5"
_MEM_BASE = "$s6"

_BUFFER_WORDS = 64
#: Buffer split: slots [0, _RO_WORDS) are read-only (redundant loads),
#: the rest are scratch (fresh store/load round-trips).
_RO_WORDS = _BUFFER_WORDS // 2

#: ALU ops whose result over constant operands is constant.
_REDUNDANT_OPS = ["add", "addu", "sub", "subu", "and", "or", "xor",
                  "nor", "slt", "sltu"]
#: ALU ops that keep the LCG's full entropy in the destination.
_FRESH_OPS = ["add", "addu", "xor", "sub"]

_NAME_RE = re.compile(
    r"gen-s(?P<seed>\d+)-n(?P<size>\d+)-t(?P<trips>\d+)"
    r"-r(?P<r>\d{1,4})-b(?P<b>\d{1,4})$")


def _quantize(value: float) -> float:
    """Clamp to [0, 1] and quantise to permille (the name resolution)."""
    return round(min(1.0, max(0.0, value)) * 1000) / 1000


@dataclass(frozen=True)
class GeneratorKnobs:
    """The tunable characteristics of one generated workload."""

    seed: int = 0
    size: int = 48  # generated body statements per outer iteration
    trips: int = 50  # outer-loop trip count (termination bound)
    result_redundancy: float = 0.5  # fraction of redundant producers
    branch_entropy: float = 0.5  # fraction of noisy branch sites

    def __post_init__(self):
        object.__setattr__(self, "result_redundancy",
                           _quantize(self.result_redundancy))
        object.__setattr__(self, "branch_entropy",
                           _quantize(self.branch_entropy))
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.size < 8:
            raise ValueError("size must be at least 8 statements")
        if self.trips < 1:
            raise ValueError("trips must be positive")

    @property
    def name(self) -> str:
        """Canonical self-describing workload name (permille knobs)."""
        return (f"gen-s{self.seed}-n{self.size}-t{self.trips}"
                f"-r{round(self.result_redundancy * 1000)}"
                f"-b{round(self.branch_entropy * 1000)}")


def knobs_from_name(name: str) -> GeneratorKnobs:
    """Invert :attr:`GeneratorKnobs.name`; raises ``ValueError``."""
    match = _NAME_RE.fullmatch(name)
    if match is None:
        raise ValueError(
            f"{name!r} is not a generated-workload name "
            "(expected gen-s<seed>-n<size>-t<trips>-r<permille>-b<permille>)")
    return GeneratorKnobs(
        seed=int(match.group("seed")),
        size=int(match.group("size")),
        trips=int(match.group("trips")),
        result_redundancy=int(match.group("r")) / 1000,
        branch_entropy=int(match.group("b")) / 1000)


class GeneratedProgramBuilder:
    """Builds one characterised program; deterministic given the knobs."""

    def __init__(self, knobs: GeneratorKnobs):
        self.knobs = knobs
        self.rng = random.Random(knobs.seed)
        self.lines: List[str] = []
        self.label_count = 0
        # Error-diffusion accumulator for noisy-branch placement: with
        # only ~size/8 sites, per-site coin flips would let the realised
        # noisy fraction drift far from the knob on unlucky seeds; the
        # accumulator pins it to ``branch_entropy`` exactly.
        self._entropy_acc = 0.0

    def _label(self) -> str:
        self.label_count += 1
        return f"G{self.label_count}"

    def _emit(self, text: str) -> None:
        self.lines.append("        " + text)

    def _dest(self) -> str:
        return self.rng.choice(_DEST_REGS)

    def _const(self) -> str:
        return self.rng.choice(_CONST_REGS)

    # -- producer statements -----------------------------------------------------

    def _advance_lcg(self) -> None:
        """One LCG step: state = state * mult + odd increment (mod 2^32)."""
        increment = self.rng.randrange(0, 2**15) * 2 + 1
        self._emit(f"mul {_LCG_STATE}, {_LCG_STATE}, {_LCG_MULT}")
        self._emit(f"addi {_LCG_STATE}, {_LCG_STATE}, {increment}")

    def _gen_redundant_alu(self) -> None:
        op = self.rng.choice(_REDUNDANT_OPS)
        self._emit(f"{op} {self._dest()}, {self._const()}, {self._const()}")

    def _gen_redundant_load(self) -> None:
        offset = 4 * self.rng.randrange(0, _RO_WORDS)
        self._emit(f"lw {self._dest()}, {offset}({_MEM_BASE})")

    def _gen_fresh_alu(self) -> None:
        self._advance_lcg()
        op = self.rng.choice(_FRESH_OPS)
        self._emit(f"{op} {self._dest()}, {_LCG_STATE}, {self._const()}")

    def _gen_fresh_load(self) -> None:
        """Store a fresh LCG draw, immediately load it back: the load's
        result stream is unique even though its address is constant."""
        self._advance_lcg()
        offset = 4 * self.rng.randrange(_RO_WORDS, _BUFFER_WORDS)
        self._emit(f"sw {_LCG_STATE}, {offset}({_MEM_BASE})")
        self._emit(f"lw {self._dest()}, {offset}({_MEM_BASE})")

    def _gen_producer(self) -> None:
        if self.rng.random() < self.knobs.result_redundancy:
            if self.rng.random() < 0.3:
                self._gen_redundant_load()
            else:
                self._gen_redundant_alu()
        else:
            if self.rng.random() < 0.3:
                self._gen_fresh_load()
            else:
                self._gen_fresh_alu()

    # -- branch sites -------------------------------------------------------------

    def _gen_branch_site(self) -> None:
        label = self._label()
        self._entropy_acc += self.knobs.branch_entropy
        noisy = self._entropy_acc >= 1.0 - 1e-9
        if noisy:
            self._entropy_acc -= 1.0
        if noisy:
            # Noisy: direction follows a high bit of a fresh LCG draw —
            # bit k of an LCG mod 2^32 has period 2^(k+1), so the high
            # bits are aperiodic over any realistic run and the gshare
            # tables cannot learn them.
            self._advance_lcg()
            shift = self.rng.randrange(16, 28)
            self._emit(f"srl {_COND_REG}, {_LCG_STATE}, {shift}")
            self._emit(f"andi {_COND_REG}, {_COND_REG}, 1")
            self._emit(f"beqz {_COND_REG}, {label}")
        else:
            # Biased: the comparison is over constants, so the direction
            # never changes and the predictor converges immediately.
            first, second = self._const(), self._const()
            self._emit(f"slt {_COND_REG}, {first}, {second}")
            branch = self.rng.choice(["beqz", "bnez"])
            self._emit(f"{branch} {_COND_REG}, {label}")
        for _ in range(self.rng.randrange(1, 3)):
            self._gen_redundant_alu()
        self.lines.append(f"{label}:")

    # -- loop structure -----------------------------------------------------------

    def _gen_inner_loop(self, statements: int) -> None:
        label = self._label()
        trips = self.rng.randrange(2, 5)
        self._emit(f"li {_INNER_COUNTER}, {trips}")
        self.lines.append(f"{label}:")
        for _ in range(statements):
            self._gen_producer()
        self._emit(f"addi {_INNER_COUNTER}, {_INNER_COUNTER}, -1")
        self._emit(f"bnez {_INNER_COUNTER}, {label}")

    # -- whole program ------------------------------------------------------------

    def build(self) -> str:
        knobs = self.knobs
        data_words = ", ".join(
            str(self.rng.randrange(0, 2**16)) for _ in range(_BUFFER_WORDS))

        self.lines = []
        self._emit(f"la {_MEM_BASE}, buffer")
        for reg in _CONST_REGS:
            self._emit(f"li {reg}, {self.rng.randrange(0, 2**12)}")
        # Full-period LCG mod 2^32: multiplier ≡ 1 (mod 4), odd state.
        self._emit(f"li {_LCG_STATE}, "
                   f"{self.rng.randrange(0, 2**16) * 2 + 1}")
        self._emit(f"li {_LCG_MULT}, "
                   f"{self.rng.randrange(1, 2**13) * 4 + 1}")
        self._emit(f"li {_OUTER_COUNTER}, {knobs.trips}")
        self.lines.append("outer:")

        # One branch site per ~8 statements, placed against a running
        # threshold (inner loops advance the statement count in jumps,
        # so an exact-multiple check would silently drop sites).
        branch_every = max(4, knobs.size // max(2, knobs.size // 8))
        next_site = branch_every
        statements = 0
        while statements < knobs.size:
            if statements >= next_site:
                self._gen_branch_site()
                next_site += branch_every
            remaining = knobs.size - statements
            if remaining >= 6 and self.rng.random() < 0.15:
                inner = self.rng.randrange(2, min(5, remaining))
                self._gen_inner_loop(inner)
                statements += inner
            else:
                self._gen_producer()
                statements += 1

        self._emit(f"addi {_OUTER_COUNTER}, {_OUTER_COUNTER}, -1")
        self._emit(f"bnez {_OUTER_COUNTER}, outer")
        self._emit("halt")

        parts = [".data", f"buffer: .word {data_words}", ".text", "main:"]
        parts += self.lines
        return "\n".join(parts)


def generated_program(knobs: GeneratorKnobs) -> str:
    """The assembly source for *knobs* (byte-identical per knob set)."""
    return GeneratedProgramBuilder(knobs).build()


#: Placeholder reference block: generated workloads have no paper
#: numbers, but WorkloadSpec carries one for report uniformity.
_SYNTHETIC_REFERENCE = PaperReference(
    inst_count_millions=0.0, branch_pred_rate=0.0, return_pred_rate=0.0,
    ir_result_rate=0.0, ir_addr_rate=0.0, vp_magic_result_rate=0.0,
    vp_magic_addr_rate=0.0, vp_lvp_result_rate=0.0,
    redundancy_repeated=0.0)

_SPEC_MEMO: Dict[str, WorkloadSpec] = {}


def generated_spec(knobs: GeneratorKnobs) -> WorkloadSpec:
    """A :class:`WorkloadSpec` for *knobs* (memoized; not registered —
    ``all_workloads`` stays the seven paper analogs)."""
    name = knobs.name
    spec = _SPEC_MEMO.get(name)
    if spec is None:
        def source_fn(variant: str = "ref") -> str:
            return generated_program(knobs)

        spec = WorkloadSpec(
            name=name,
            description=(f"generated: redundancy "
                         f"{knobs.result_redundancy:.0%}, branch entropy "
                         f"{knobs.branch_entropy:.0%}, seed {knobs.seed}"),
            source_fn=source_fn,
            skip_instructions=0,
            paper=_SYNTHETIC_REFERENCE,
            variants=("ref",))
        _SPEC_MEMO[name] = spec
    return spec


def spec_from_name(name: str) -> WorkloadSpec:
    """Materialise the generated workload named *name* on demand."""
    return generated_spec(knobs_from_name(name))


# -- command line (repro-gen) ------------------------------------------------------


def measure(knobs: GeneratorKnobs,
            max_instructions: int = 50_000) -> Dict[str, float]:
    """Functional-simulation measurement of the generated program:
    Figure 8 classification percentages plus instruction counts."""
    from ..functional.simulator import FunctionalSimulator
    from ..isa import assemble
    from ..redundancy.classifier import RedundancyClassifier

    sim = FunctionalSimulator(assemble(generated_program(knobs)))
    classifier = RedundancyClassifier()
    for outcome in sim.stream(max_instructions):
        classifier.observe(outcome)
    counts = classifier.counts
    result = {key: round(value, 2)
              for key, value in counts.as_percentages().items()}
    result["redundant"] = round(
        100.0 * counts.fraction(counts.redundant), 2)
    result["dynamic_instructions"] = counts.total
    result["static_instructions"] = classifier.static_instructions
    result["halted"] = sim.halted
    return result


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gen",
        description="Generate a characterised, seed-deterministic "
                    "assembly workload (see docs/internals.md)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0)")
    parser.add_argument("--size", type=int, default=48,
                        help="body statements per outer iteration")
    parser.add_argument("--trips", type=int, default=50,
                        help="outer-loop trip count")
    parser.add_argument("--redundancy", type=float, default=0.5,
                        metavar="FRACTION",
                        help="target fraction of redundant producers "
                             "(0..1, quantised to permille)")
    parser.add_argument("--branch-entropy", type=float, default=0.5,
                        metavar="FRACTION",
                        help="fraction of noisy branch sites (0..1)")
    parser.add_argument("--name", type=str, default=None,
                        help="build from a canonical gen-… name instead "
                             "of the individual knob flags")
    parser.add_argument("-o", "--output", type=str, default=None,
                        help="write the assembly here instead of stdout")
    parser.add_argument("--stats", action="store_true",
                        help="run the functional simulator and print the "
                             "measured Figure 8 classification instead "
                             "of the assembly")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.name is not None:
        knobs = knobs_from_name(args.name)
    else:
        knobs = GeneratorKnobs(
            seed=args.seed, size=args.size, trips=args.trips,
            result_redundancy=args.redundancy,
            branch_entropy=args.branch_entropy)
    source = generated_program(knobs)
    if args.output:
        from ..util.locking import atomic_write_text
        from pathlib import Path
        atomic_write_text(Path(args.output), source + "\n")
        print(f"{knobs.name}: wrote {args.output}", file=sys.stderr)
    if args.stats:
        print(f"workload: {knobs.name}")
        for key, value in measure(knobs).items():
            print(f"  {key}: {value}")
    elif not args.output:
        print(source)
    return 0


if __name__ == "__main__":
    sys.exit(main())
