"""m88ksim analog: a CPU-simulator (interpreter) workload.

The real m88ksim interprets Motorola 88K binaries: a fetch/decode/dispatch/
execute loop over a guest program.  Because the guest program loops, the
interpreter re-decodes the same instruction words with the same guest PCs
over and over — which is why m88ksim shows the highest redundancy of the
SPECint95 suite (48.5% IR result reuse, 54.8% VP_Magic in Table 3) and a
high branch prediction rate (94.6%): the dispatch compare-tree outcomes
follow the guest program's fixed opcode sequence, which gshare's global
history learns.

The analog interprets a guest program whose hot loop is four instructions
(a polling/checksum loop, the common steady state of a simulated CPU) with
a cold eight-slot excursion every 16th guest iteration.  The four hot
guest PCs keep each interpreter instruction's operand values within the
four instances the RB/VPT hold per static instruction, the way m88ksim's
large interpreter body spreads guest variety across many static
instructions.  The ALU handler group runs through a called helper with a
standard stack prologue/epilogue — the spill/reload traffic of compiled
code, which contributes heavily to SPEC's address redundancy.
"""

from __future__ import annotations

from .spec import PaperReference, WorkloadSpec, register


def _encode(op: int, rd: int = 0, rs: int = 0, rt: int = 0,
            imm: int = 0) -> int:
    """Guest instruction word: op[14:12] rd[11:9] rs[8:6] rt[5:3] imm[2:0]."""
    return (op << 12) | (rd << 9) | (rs << 6) | (rt << 3) | imm


_OP_ADD, _OP_SUB, _OP_AND, _OP_OR = 0, 1, 2, 3
_OP_SHL, _OP_ADDI, _OP_LOAD, _OP_BNZ = 4, 5, 6, 7

# Guest program.  Hot loop: slots 0-3 (r1 walks a 4-entry ring buffer,
# r3 accumulates, slot 3 loops back while r4 != 0).  Every 16th pass the
# counter r4 reaches 0 and control falls into the cold block (slots 4-11)
# which re-arms r4 and perturbs the accumulator.
_GUEST_PROGRAM = [
    _encode(_OP_ADDI, rd=2, rs=2, imm=1),    # 0: r2++            (r2 in 0..4)
    _encode(_OP_AND, rd=2, rs=2, rt=6),      # 1: r2 &= r6 (r6=3: ring ptr)
    _encode(_OP_LOAD, rd=3, rs=2),           # 2: r3 = mem[r2]
    _encode(_OP_BNZ, rs=4, imm=0),           # 3: while (--r4) goto 0...
    # cold block (every 16th guest iteration)
    _encode(_OP_ADDI, rd=4, rs=0, imm=7),    # 4: r4 = 7 (half re-arm)
    _encode(_OP_ADD, rd=5, rs=5, rt=3),      # 5: r5 += r3
    _encode(_OP_SHL, rd=7, rs=6, imm=1),     # 6: r7 = r6 << 1
    _encode(_OP_OR, rd=5, rs=5, rt=7),       # 7: r5 |= r7
    _encode(_OP_SUB, rd=5, rs=5, rt=6),      # 8: r5 -= r6
    _encode(_OP_ADDI, rd=4, rs=4, imm=7),    # 9: r4 = 14 -> 16-pass period
    _encode(_OP_ADDI, rd=4, rs=4, imm=2),    # 10: r4 = 16
    _encode(_OP_BNZ, rs=6, imm=0),           # 11: goto 0 (r6 == 3)
    _encode(_OP_ADDI, rd=0, rs=0, imm=0),    # 12-15: unreachable padding
    _encode(_OP_ADDI, rd=0, rs=0, imm=0),
    _encode(_OP_ADDI, rd=0, rs=0, imm=0),
    _encode(_OP_BNZ, rs=6, imm=0),
]

# NOTE: guest bnz decrements its source register (a count-down loop like
# the 88K's bcnd idiom); see handler h_bnz below.

_GUEST_MEMORY = {
    "ref": [(i * 2654435761) & 0xFFFF for i in range(16)],
    "train": [(i * 40503 + 7919) & 0xFFFF for i in range(16)],
}


def source(variant: str = "ref") -> str:
    program_words = ", ".join(str(w) for w in _GUEST_PROGRAM)
    memory_words = ", ".join(str(w) for w in _GUEST_MEMORY[variant])
    return f"""
# m88ksim analog: guest-ISA interpreter loop.
.data
gprog:  .word {program_words}
gregs:  .word 0, 0, 0, 0, 16, 0, 3, 0
gmem:   .word {memory_words}
icount: .word 0

.text
main:
        la $s1, gprog          # guest program base
        la $s2, gregs          # guest register file base
        la $s3, gmem           # guest data memory base
        li $s0, 0              # guest pc
        li $s7, 0x7FFFFFFF     # simulated-instruction budget

sim_loop:
        # ---- fetch ----
        sll $t0, $s0, 2
        add $t0, $t0, $s1
        lw $t1, 0($t0)         # guest instruction word
        # ---- decode ----
        srl $t2, $t1, 12
        andi $t2, $t2, 7       # opcode
        srl $t3, $t1, 9
        andi $t3, $t3, 7       # rd
        srl $t4, $t1, 6
        andi $t4, $t4, 7       # rs
        srl $t5, $t1, 3
        andi $t5, $t5, 7       # rt
        andi $t6, $t1, 7       # imm
        # ---- guest register read ----
        sll $t7, $t4, 2
        add $t7, $t7, $s2
        lw $a1, 0($t7)         # guest rs value
        sll $t8, $t5, 2
        add $t8, $t8, $s2
        lw $a2, 0($t8)         # guest rt value
        # ---- bookkeeping: simulated instruction count (global) ----
        lw $t9, icount
        addi $t9, $t9, 1
        sw $t9, icount
        # ---- dispatch (compare tree, like a compiled switch) ----
        slti $t9, $t2, 6
        beqz $t9, dis_67
        slti $t9, $t2, 4
        beqz $t9, dis_45
        # ALU group 0..3 goes through the helper (stack traffic like
        # compiled code)
        move $a0, $t2
        jal exec_alu
        move $a3, $v0
        j writeback
dis_45: slti $t9, $t2, 5
        bnez $t9, h_shl
        j h_addi
dis_67: slti $t9, $t2, 7
        bnez $t9, h_load
        j h_bnz

h_shl:  sllv $a3, $a1, $t6
        j writeback
h_addi: add $a3, $a1, $t6
        j writeback
h_load: andi $t7, $a1, 15
        sll $t7, $t7, 2
        add $t7, $t7, $s3
        lw $a3, 0($t7)
        j writeback
h_bnz:  # count-down branch: rs -= 1; if (rs) pc = imm else pc += 1
        addi $a1, $a1, -1
        sll $t7, $t4, 2
        add $t7, $t7, $s2
        sw $a1, 0($t7)
        beqz $a1, bnz_nt
        move $s0, $t6
        j sim_next
bnz_nt: addi $s0, $s0, 1
        j sim_next

writeback:
        sll $t7, $t3, 2
        add $t7, $t7, $s2
        sw $a3, 0($t7)
        addi $s0, $s0, 1

sim_next:
        andi $s0, $s0, 15      # guest pc stays in the 16-slot program
        addi $s7, $s7, -1
        bnez $s7, sim_loop
        halt

# ---- exec_alu($a0 = op, $a1/$a2 = operands): compiled-style helper ----
exec_alu:
        addi $sp, $sp, -16
        sw $ra, 0($sp)
        sw $a1, 4($sp)
        sw $a2, 8($sp)
        slti $t9, $a0, 2
        beqz $t9, alu_23
        beqz $a0, alu_add
        sub $v0, $a1, $a2
        j alu_done
alu_add:
        add $v0, $a1, $a2
        j alu_done
alu_23: slti $t9, $a0, 3
        bnez $t9, alu_and
        or $v0, $a1, $a2
        j alu_done
alu_and:
        and $v0, $a1, $a2
alu_done:
        lw $a1, 4($sp)         # compiled reload traffic
        lw $a2, 8($sp)
        lw $ra, 0($sp)
        addi $sp, $sp, 16
        jr $ra
"""


register(WorkloadSpec(
    name="m88ksim",
    description="CPU-simulator interpreter loop (guest ISA fetch/decode/"
                "dispatch/execute)",
    source_fn=source,
    skip_instructions=2_000,
    paper=PaperReference(
        inst_count_millions=491.4, branch_pred_rate=94.6,
        return_pred_rate=100.0,
        ir_result_rate=48.5, ir_addr_rate=33.9,
        vp_magic_result_rate=54.8, vp_magic_addr_rate=42.0,
        vp_lvp_result_rate=42.0, redundancy_repeated=90.0),
))
