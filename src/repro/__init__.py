"""repro — reproduction of Sodani & Sohi, "Understanding the Differences
Between Value Prediction and Instruction Reuse" (MICRO 1998).

Public API quick tour::

    from repro import assemble, OutOfOrderCore, base_config, ir_config

    program = assemble('''
    main: li $t0, 10
    loop: addi $t0, $t0, -1
          bnez $t0, loop
          halt
    ''')
    stats = OutOfOrderCore(ir_config(), program).run()
    print(stats.ipc, stats.ir_result_rate)

Packages:

* :mod:`repro.isa` — the MIPS-like ISA and assembler,
* :mod:`repro.functional` — in-order functional simulation,
* :mod:`repro.uarch` — the out-of-order timing core (Table 1 machine),
* :mod:`repro.vp` — VP_Magic / VP_LVP value predictors,
* :mod:`repro.reuse` — the reuse buffer and scheme S_{n+d},
* :mod:`repro.redundancy` — the Figure 8-10 limit studies,
* :mod:`repro.workloads` — seven SPECint95-analog programs,
* :mod:`repro.experiments` — one module per table/figure of the paper.
"""

from .functional import FunctionalSimulator
from .isa import Program, assemble
from .metrics import SimStats, harmonic_mean, speedup
from .uarch.config import (
    BranchPolicy,
    IRValidation,
    MachineConfig,
    PredictorKind,
    ReexecPolicy,
    base_config,
    ir_config,
    vp_config,
)
from .uarch.core import OutOfOrderCore

__version__ = "1.0.0"

__all__ = [
    "FunctionalSimulator",
    "Program",
    "assemble",
    "SimStats",
    "harmonic_mean",
    "speedup",
    "BranchPolicy",
    "IRValidation",
    "MachineConfig",
    "PredictorKind",
    "ReexecPolicy",
    "base_config",
    "ir_config",
    "vp_config",
    "OutOfOrderCore",
    "__version__",
]
