"""ASCII bar charts: render the paper's figures as terminal graphics.

The evaluation figures of the paper are grouped bar charts (speedups per
benchmark per configuration).  :func:`bar_chart` renders the same data
textually so ``repro-experiment <figure> --charts`` can show the shape
at a glance without any plotting dependency.

Example output::

    Figure 6(a): speedups over base
    go        ME-SB   |=============================           | 1.29
              NME-SB  |=============================           | 1.29
              ...
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .report import Report

DEFAULT_WIDTH = 44


def bar(value: float, maximum: float, width: int = DEFAULT_WIDTH) -> str:
    """One left-aligned bar scaled so *maximum* fills *width* cells."""
    if maximum <= 0:
        return " " * width
    filled = max(0, min(width, round(width * value / maximum)))
    return "=" * filled + " " * (width - filled)


def bar_chart(title: str,
              groups: Dict[str, Dict[str, float]],
              reference: Optional[float] = None,
              width: int = DEFAULT_WIDTH) -> str:
    """Grouped horizontal bar chart.

    *groups* maps group label (benchmark) to {series label: value}.
    A *reference* value (e.g. 1.0 for speedups) draws a ``|`` marker in
    every bar at its position.
    """
    lines = [title, "=" * len(title)]
    all_values = [value for series in groups.values()
                  for value in series.values()]
    if not all_values:
        return "\n".join(lines + ["(no data)"])
    maximum = max(all_values + ([reference] if reference else []))
    group_width = max(len(name) for name in groups)
    series_width = max(len(label) for series in groups.values()
                       for label in series)
    marker = (round(width * reference / maximum)
              if reference and maximum > 0 else None)
    for group, series in groups.items():
        first = True
        for label, value in series.items():
            cells = list(bar(value, maximum, width))
            if marker is not None and 0 <= marker < width \
                    and cells[marker] == " ":
                cells[marker] = "|"
            prefix = group.ljust(group_width) if first \
                else " " * group_width
            lines.append(f"{prefix}  {label.ljust(series_width)} "
                         f"|{''.join(cells)}| {value:.2f}")
            first = False
        lines.append("")
    return "\n".join(lines[:-1] if lines[-1] == "" else lines)


def report_to_chart(report: Report, reference: Optional[float] = None,
                    width: int = DEFAULT_WIDTH) -> str:
    """Render a numeric :class:`Report` (bench rows x config columns).

    Non-numeric cells are skipped; the first column is the group label.
    """
    groups: Dict[str, Dict[str, float]] = {}
    for row in report.rows:
        label = str(row[0])
        series = {}
        for header, cell in zip(report.headers[1:], row[1:]):
            if isinstance(cell, (int, float)) and cell is not None:
                series[str(header)] = float(cell)
        if series:
            groups[label] = series
    return bar_chart(report.title, groups, reference=reference, width=width)
