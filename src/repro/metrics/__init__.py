"""Simulation statistics and reporting helpers."""

from .charts import bar_chart, report_to_chart
from .report import Report
from .stats import SimStats, harmonic_mean, speedup

__all__ = ["SimStats", "harmonic_mean", "speedup", "Report",
           "bar_chart", "report_to_chart"]
