"""``repro-bench-report``: the perf trajectory as a first-class artifact.

The two perf gates (``benchmarks/test_core_throughput.py`` and
``benchmarks/test_sweep_throughput.py``) append one history entry per
committed measurement to ``BENCH_core.json`` / ``BENCH_sweep.json``.
Until now that history was raw JSON nobody read; this module parses
both files into normalized trend tables with regression flagging —
each entry compared against the rolling median of the entries before
it — and renders them as text or HTML, so CI can publish the perf
trajectory alongside the sweep dashboard.

It also owns the *shared* history hygiene both gates use:

* :func:`bounded_history` — the single append-and-truncate helper, so
  the two BENCH files cannot drift on history length;
* :func:`normalize_core_entry` — one entry schema (older entries carry
  only ``current_ips``; ``speedup_vs_seed`` is backfilled from
  ``seed_ips``, which never changes for a given kernel).

Flag semantics: ``regress``/``improve`` when the value moves more than
*tolerance* (default 5%, matching the gate's REGRESSION_TOLERANCE)
against the rolling median of the preceding *window* entries, ``ok``
inside the band, ``-`` when there is no history yet to compare with.
The committed core history deliberately contains cross-machine level
shifts, so the default exit code is 0; ``--strict`` turns any
``regress`` flag on the newest entry into a nonzero exit for CI use.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .report import Report, render_dashboard_html

#: One bound for both BENCH files (satellite: previously each benchmark
#: hard-coded its own ``[-20:]`` slice).
HISTORY_LIMIT = 20

#: Rolling-median window and drift band for flagging.
DEFAULT_WINDOW = 5
DEFAULT_TOLERANCE = 0.05


def bounded_history(history: Optional[List[Dict]], entry: Dict,
                    limit: int = HISTORY_LIMIT) -> List[Dict]:
    """Append *entry* to *history*, keeping only the newest *limit*."""
    return (list(history or []) + [entry])[-limit:]


def normalize_core_entry(entry: Dict, seed_ips: float) -> Dict:
    """One schema for a ``BENCH_core.json`` history entry.

    Backfills ``speedup_vs_seed`` from ``seed_ips`` (older entries
    predate the field) and rounds it the way the gate does.
    """
    entry = dict(entry)
    ips = entry.get("current_ips")
    if isinstance(ips, (int, float)) and seed_ips:
        entry["speedup_vs_seed"] = round(ips / seed_ips, 2)
    return entry


def normalize_core_history(record: Dict) -> Dict:
    """Normalize every history leg of a ``BENCH_core.json`` record."""
    record = dict(record)
    seed = record.get("seed_ips") or 0.0
    for leg in ("history", "history_compiled"):
        if record.get(leg):
            record[leg] = [normalize_core_entry(entry, seed)
                           for entry in record[leg]]
    return record


def trend_flag(value: Optional[float], previous: Sequence[float],
               higher_is_better: bool = True,
               window: int = DEFAULT_WINDOW,
               tolerance: float = DEFAULT_TOLERANCE
               ) -> Tuple[Optional[float], str]:
    """(rolling median of the window before *value*, flag) for one
    point of a metric series."""
    if value is None:
        return None, "-"
    tail = [v for v in previous if v is not None][-window:]
    if not tail:
        return None, "-"
    median = statistics.median(tail)
    if median == 0:
        return median, "-"
    ratio = value / median
    if not higher_is_better:
        ratio = 1.0 / ratio
    if ratio < 1.0 - tolerance:
        return median, "regress"
    if ratio > 1.0 + tolerance:
        return median, "improve"
    return median, "ok"


def _metric_rows(history: List[Dict], metric: str,
                 higher_is_better: bool, window: int,
                 tolerance: float) -> List[Tuple]:
    """(index, value, rolling median, delta vs median, flag) rows."""
    values = [entry.get(metric) for entry in history]
    rows = []
    for i, value in enumerate(values):
        median, flag = trend_flag(value, values[:i],
                                  higher_is_better=higher_is_better,
                                  window=window, tolerance=tolerance)
        delta = (None if median in (None, 0) or value is None
                 else round((value / median - 1.0) * 100, 1))
        rows.append((i, value, median, delta, flag))
    return rows


def latest_flags(report: Report) -> List[str]:
    """The flag cells of a trend table's newest row (for --strict)."""
    if not report.rows:
        return []
    return [str(report.rows[-1][-1])]


def core_trend(record: Dict, window: int = DEFAULT_WINDOW,
               tolerance: float = DEFAULT_TOLERANCE) -> List[Report]:
    """Trend tables for a ``BENCH_core.json`` record."""
    record = normalize_core_history(record)
    seed = record.get("seed_ips")
    reports = []

    table = Report(
        title="Core throughput history (interpreted)",
        headers=("entry", "ips", "vs seed", "rolling median",
                 "delta %", "flag"))
    history = record.get("history") or []
    for i, value, median, delta, flag in _metric_rows(
            history, "current_ips", True, window, tolerance):
        table.add_row(i, value,
                      history[i].get("speedup_vs_seed"),
                      median, delta, flag)
    if seed:
        table.add_note(f"seed_ips {seed} (the fixed denominator of "
                       f"'vs seed')")
    overhead = record.get("telemetry_overhead")
    if overhead is not None:
        table.add_note(f"telemetry_overhead {overhead}x (budget 1.5x)")
    tracing = record.get("tracing_overhead")
    if tracing is not None:
        table.add_note(f"tracing_overhead {tracing}x (budget 1.5x)")
    table.add_note(f"flags: rolling median of previous {window}, "
                   f"band +-{tolerance:.0%}; history entries may span "
                   f"different machines")
    reports.append(table)

    compiled = record.get("history_compiled") or []
    if compiled:
        ctable = Report(
            title="Core throughput history (compiled)",
            headers=("entry", "ips", "vs seed", "x interpreted",
                     "rolling median", "delta %", "flag"))
        interp = record.get("current_ips")
        for i, value, median, delta, flag in _metric_rows(
                compiled, "current_ips", True, window, tolerance):
            multiplier = compiled[i].get("compiled_speedup")
            if multiplier is None and value is not None and interp:
                multiplier = round(value / interp, 2)
            ctable.add_row(i, value,
                           compiled[i].get("speedup_vs_seed"),
                           multiplier, median, delta, flag)
        reports.append(ctable)
    elif record.get("current_ips_compiled") is not None:
        table.add_note(
            f"compiled backend: {record['current_ips_compiled']} ips "
            f"({record.get('compiled_speedup', '-')}x interpreted)")
    return reports


#: (metric, header label, higher-is-better) legs of BENCH_sweep.json.
_SWEEP_METRICS = (
    ("cold_seconds", "cold s", False),
    ("warm_seconds", "warm s", False),
    ("speedup_vs_baseline", "cold speedup", True),
    ("warm_speedup_vs_baseline", "warm speedup", True),
)


def sweep_trend(record: Dict, window: int = DEFAULT_WINDOW,
                tolerance: float = DEFAULT_TOLERANCE) -> List[Report]:
    """Trend table for a ``BENCH_sweep.json`` record.

    Seconds-valued legs flag *increases* as regressions; speedup legs
    flag decreases, like the core table.
    """
    history = record.get("history") or []
    table = Report(
        title="Sweep throughput history",
        headers=("entry",) + tuple(label for _, label, _ in
                                   _SWEEP_METRICS) + ("flag",))
    for i, entry in enumerate(history):
        flags = []
        cells: List = [i]
        for metric, _, higher in _SWEEP_METRICS:
            cells.append(entry.get(metric))
            _, flag = trend_flag(entry.get(metric),
                                 [e.get(metric) for e in history[:i]],
                                 higher_is_better=higher,
                                 window=window, tolerance=tolerance)
            flags.append(flag)
        if "regress" in flags:
            verdict = "regress"
        elif "improve" in flags and "ok" not in flags:
            verdict = "improve"
        elif all(flag == "-" for flag in flags):
            verdict = "-"
        else:
            verdict = "ok"
        cells.append(verdict)
        table.add_row(*cells)
    baseline = record.get("baseline_seconds")
    if baseline is not None:
        table.add_note(f"baseline {baseline}s (uncheckpointed sweep "
                       f"the speedups divide into)")
    table.add_note(f"flags: rolling median of previous {window}, "
                   f"band +-{tolerance:.0%}; seconds legs flag "
                   f"increases, speedup legs flag decreases")
    return [table]


def classify(record: Dict) -> str:
    """Which BENCH schema a parsed record follows."""
    if "seed_ips" in record:
        return "core"
    if "baseline_seconds" in record:
        return "sweep"
    raise ValueError("not a BENCH_core/BENCH_sweep record "
                     "(no seed_ips or baseline_seconds)")


def bench_reports(paths: Sequence[Path],
                  window: int = DEFAULT_WINDOW,
                  tolerance: float = DEFAULT_TOLERANCE
                  ) -> List[Report]:
    reports: List[Report] = []
    for path in paths:
        try:
            record = json.loads(Path(path).read_text())
        except OSError:
            continue
        kind = classify(record)
        if kind == "core":
            tables = core_trend(record, window=window,
                                tolerance=tolerance)
        else:
            tables = sweep_trend(record, window=window,
                                 tolerance=tolerance)
        for table in tables:
            table.title = f"{table.title} [{Path(path).name}]"
        reports.extend(tables)
    return reports


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench-report",
        description="Render BENCH_core.json / BENCH_sweep.json history "
                    "as trend tables with regression flags")
    parser.add_argument("bench", nargs="*", type=Path,
                        default=[Path("BENCH_core.json"),
                                 Path("BENCH_sweep.json")],
                        help="BENCH json files (classified by content; "
                             "default: BENCH_core.json "
                             "BENCH_sweep.json)")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help="rolling-median window "
                             f"(default {DEFAULT_WINDOW})")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="drift band before flagging "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--html", type=Path, default=None, metavar="OUT",
                        help="also write the trend tables as a static "
                             "HTML page")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero if the newest entry of any "
                             "table is flagged 'regress'")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    reports = bench_reports(args.bench, window=args.window,
                            tolerance=args.tolerance)
    if not reports:
        print(f"no BENCH records found in: "
              f"{', '.join(map(str, args.bench))}")
        return 1
    print("\n\n".join(report.render() for report in reports))
    if args.html is not None:
        from ..util.locking import atomic_write_text
        atomic_write_text(
            args.html,
            render_dashboard_html(reports, title="repro bench trends"))
        print(f"\nwrote {args.html}")
    if args.strict and any("regress" in latest_flags(report)
                           for report in reports):
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
