"""Simulation statistics: every counter the paper's tables/figures need."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..util.serial import canonical_dumps


@dataclass
class SimStats:
    """Counters collected by one timing-simulation run."""

    config_name: str = ""
    workload_name: str = ""

    cycles: int = 0
    committed: int = 0  # committed (retired) instructions
    fetched: int = 0
    dispatched: int = 0

    # Execution accounting (Table 5 / Table 6).
    executed_instructions: int = 0  # distinct dynamic insts that executed
    execution_attempts: int = 0  # total executions incl. re-executions
    exec_count_histogram: Dict[int, int] = field(default_factory=dict)
    squashed_instructions: int = 0  # dispatched insts squashed
    squashed_executed: int = 0  # squashed insts that had executed
    squashed_recovered: int = 0  # squashed executed insts later reused

    # Branch behaviour (Tables 2 and 4, Figure 4).
    cond_branches: int = 0  # committed conditional branches
    cond_branch_correct: int = 0
    returns: int = 0  # committed returns (jr $ra)
    returns_correct: int = 0
    branch_squashes: int = 0  # squash events from control resolution
    spurious_squashes: int = 0  # squashes on value-speculative operands
    branch_resolution_cycles: int = 0  # sum over committed cond branches
    branch_resolution_count: int = 0
    reused_branches: int = 0  # branches resolved at dispatch via reuse

    # Resource contention (Figure 5).
    resource_requests: int = 0
    resource_denials: int = 0

    # Value prediction (Table 3).
    vp_result_lookups: int = 0
    vp_result_predicted: int = 0  # committed insts that used a prediction
    vp_result_correct: int = 0
    vp_addr_lookups: int = 0
    vp_addr_predicted: int = 0
    vp_addr_correct: int = 0
    memory_ops: int = 0  # committed loads + stores

    # Instruction reuse (Table 3, Figure 3).
    ir_tests: int = 0
    ir_result_reused: int = 0  # committed insts whose result was reused
    ir_addr_reused: int = 0  # committed memory ops with address reuse
    ir_insertions: int = 0

    # Caches.
    icache_misses: int = 0
    dcache_misses: int = 0
    dcache_accesses: int = 0

    halted: bool = False

    # -- derived quantities -------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_prediction_rate(self) -> float:
        if not self.cond_branches:
            return 1.0
        return self.cond_branch_correct / self.cond_branches

    @property
    def return_prediction_rate(self) -> float:
        if not self.returns:
            return 1.0
        return self.returns_correct / self.returns

    @property
    def mean_branch_resolution_latency(self) -> float:
        if not self.branch_resolution_count:
            return 0.0
        return self.branch_resolution_cycles / self.branch_resolution_count

    @property
    def resource_contention(self) -> float:
        if not self.resource_requests:
            return 0.0
        return self.resource_denials / self.resource_requests

    @property
    def vp_result_rate(self) -> float:
        """Correct result predictions as a fraction of committed insts."""
        return self.vp_result_correct / self.committed if self.committed else 0.0

    @property
    def vp_result_misp_rate(self) -> float:
        if not self.committed:
            return 0.0
        return (self.vp_result_predicted - self.vp_result_correct) / self.committed

    @property
    def vp_addr_rate(self) -> float:
        return self.vp_addr_correct / self.memory_ops if self.memory_ops else 0.0

    @property
    def vp_addr_misp_rate(self) -> float:
        if not self.memory_ops:
            return 0.0
        return (self.vp_addr_predicted - self.vp_addr_correct) / self.memory_ops

    @property
    def ir_result_rate(self) -> float:
        return self.ir_result_reused / self.committed if self.committed else 0.0

    @property
    def ir_addr_rate(self) -> float:
        return self.ir_addr_reused / self.memory_ops if self.memory_ops else 0.0

    @property
    def squashed_executed_fraction(self) -> float:
        if not self.executed_instructions:
            return 0.0
        return self.squashed_executed / self.executed_instructions

    @property
    def recovered_fraction(self) -> float:
        if not self.squashed_executed:
            return 0.0
        return self.squashed_recovered / self.squashed_executed

    def record_exec_histogram(self, exec_count: int) -> None:
        self.exec_count_histogram[exec_count] = (
            self.exec_count_histogram.get(exec_count, 0) + 1)

    def exec_count_fraction(self, times: int) -> float:
        total = sum(self.exec_count_histogram.values())
        if not total:
            return 0.0
        return self.exec_count_histogram.get(times, 0) / total

    def as_dict(self) -> Dict[str, float]:
        """Flatten to plain numbers (for JSON result caching)."""
        simple = {}
        for name, value in self.__dict__.items():
            if isinstance(value, (int, float, bool, str)):
                simple[name] = value
        simple["exec_count_histogram"] = dict(self.exec_count_histogram)
        return simple

    def canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, fixed layout.

        This is the byte format of the on-disk result cache, and the
        foundation of the determinism contract: two runs of the same
        (workload, config) pair — serial or parallel, in any process —
        must produce byte-identical output.  ``canonical_dumps`` both
        sorts keys (removing the last source of byte-level variation,
        dict insertion order) and *asserts* the payload is sortable —
        e.g. ``exec_count_histogram`` must keep homogeneous int keys,
        because int keys sort numerically while str keys would sort
        lexically ("10" < "2") and silently reorder the cache bytes.
        """
        return canonical_dumps(self.as_dict())

    def diff(self, other: "SimStats") -> Dict[str, Tuple]:
        """Field-by-field comparison: ``{field: (self, other)}`` for every
        counter that differs.  Empty dict means the runs were identical —
        the assertion helper for determinism and differential tests."""
        mine, theirs = self.as_dict(), other.as_dict()
        return {name: (mine.get(name), theirs.get(name))
                for name in sorted(set(mine) | set(theirs))
                if mine.get(name) != theirs.get(name)}

    def same_counters(self, other: "SimStats") -> bool:
        """True when every serialized counter matches (dataclass ``==``
        also works, but this mirrors exactly what the cache persists)."""
        return not self.diff(other)

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        """Rebuild from a cached ``as_dict`` payload, tolerantly.

        Only declared dataclass fields are restored; anything else —
        fields added by a newer writer, derived quantities such as
        ``ipc`` that a tool may have flattened in — is ignored, so old
        readers can always load newer caches.  (``hasattr`` is the
        wrong membership test here: read-only properties pass it and
        then explode in ``setattr``.)
        """
        fields = cls.__dataclass_fields__
        stats = cls()
        for name, value in data.items():
            if name == "exec_count_histogram":
                stats.exec_count_histogram = {
                    int(k): v for k, v in value.items()}
            elif name in fields:
                setattr(stats, name, value)
        return stats


def speedup(stats: SimStats, base: SimStats) -> float:
    """IPC speedup over the base machine (the paper's Figures 6/7 metric)."""
    if base.ipc == 0:
        return 0.0
    return stats.ipc / base.ipc


def harmonic_mean(values: List[float]) -> float:
    """Harmonic mean, the paper's cross-benchmark summary (HM bars)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)
